//! Robustness gate (ISSUE 6 acceptance): the supervised service under
//! injected faults, crash-safe snapshots under corruption, and restart
//! recovery — the service-layer mirror of `tests/degradation.rs`.
//!
//! The bar everywhere: a completed response is **bit-identical** to the
//! one-shot pipeline (`reference_response`) or an explicit typed error —
//! never a wrong answer, never a dead process. A snapshot restore either
//! reproduces cached responses bit for bit or degrades to a clean cold
//! start with the reasons on the health record.

use hslb_cesm::{layout::ComponentTimes, Allocation};
use hslb_service::loadmix::{self, force_deadlines, MixSpec};
use hslb_service::request::TunePayload;
use hslb_service::snapshot::{load_snapshot, save_snapshot};
use hslb_service::{
    reference_response, CacheTier, ServiceFaultSpec, ServiceOptions, SnapshotPolicy, TuneRequest,
    TuningService,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Any `f64` bit pattern — negative, subnormal, huge, NaN, ±inf. The
/// snapshot codec stores floats as hex bits, so even non-finite values
/// must survive bit-exactly.
fn any_f64_bits() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX).prop_map(f64::from_bits)
}

fn any_opt_f64() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![Just(None), any_f64_bits().prop_map(Some)]
}

fn any_bool() -> impl Strategy<Value = bool> {
    prop_oneof![Just(false), Just(true)]
}

fn any_opt_bool() -> impl Strategy<Value = Option<bool>> {
    prop_oneof![Just(None), Just(Some(false)), Just(Some(true))]
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hslb-robustness-{tag}-{}.snapshot.json",
        std::process::id()
    ))
}

/// Serial references computed once per distinct exact key.
fn references(requests: &[TuneRequest]) -> BTreeMap<String, String> {
    let mut refs = BTreeMap::new();
    for req in requests {
        refs.entry(req.exact_key()).or_insert_with(|| {
            reference_response(req)
                .unwrap_or_else(|e| panic!("reference for {}: {e}", req.exact_key()))
                .fingerprint()
        });
    }
    refs
}

/// ISSUE 6 acceptance gate: under ~30% injected service faults (worker
/// panics, hangs, slow shards, poisoned cache entries), every request
/// terminates, every completed response is bit-identical to the one-shot
/// pipeline, and the process survives to serve the next request.
#[test]
fn thirty_percent_service_faults_never_produce_a_wrong_answer() {
    let mut mix = loadmix::generate(&MixSpec::chaos());
    // Short uniform deadlines keep the hung-worker watchdog tight, so
    // injected hangs resolve in about a second instead of minutes.
    force_deadlines(&mut mix, 900);
    let refs = references(&mix);

    let opts = ServiceOptions {
        workers: 4,
        queue_capacity: 64, // admit the whole storm: faults, not backpressure
        faults: ServiceFaultSpec::chaos(5, 0.3),
        ..ServiceOptions::default()
    };
    let service = TuningService::start(opts);

    let tickets: Vec<_> = mix
        .iter()
        .map(|req| {
            (
                req.exact_key(),
                service.submit(req.clone()).expect("mix fits the queue"),
            )
        })
        .collect();
    let mut completed = 0usize;
    let mut typed_errors = 0usize;
    for (key, ticket) in tickets {
        match ticket.wait() {
            Ok(resp) => {
                completed += 1;
                assert_eq!(
                    resp.payload.fingerprint(),
                    refs[&key],
                    "response for {key} diverged from the one-shot pipeline under faults"
                );
            }
            Err(e) => {
                // Typed, displayable error — acceptable terminal outcome.
                typed_errors += 1;
                assert!(!e.to_string().is_empty());
            }
        }
    }
    assert_eq!(
        completed + typed_errors,
        mix.len(),
        "every request terminates"
    );
    assert!(
        completed > 0,
        "the supervision ladder must rescue at least some requests"
    );

    // The storm must actually have stressed the supervisor...
    let health = service.health();
    assert!(
        health.panics + health.hangs + health.poison_detected > 0,
        "chaos spec injected nothing: {health:?}"
    );
    // ...and the service must still be alive afterwards. The bypass rung
    // runs fault-free, so a fresh request always completes.
    let mut probe = TuneRequest::new(9_999, hslb_cesm::Resolution::OneDegree, 96);
    probe.deadline_ms = Some(900);
    let resp = service
        .submit(probe.clone())
        .expect("service accepts after the storm")
        .wait()
        .expect("service serves after the storm");
    assert_eq!(
        resp.payload.fingerprint(),
        reference_response(&probe).expect("reference").fingerprint()
    );
    service.shutdown();
}

/// Every attempt hangs: the watchdog must reap each one at its deadline,
/// burn the requeue budget, and land on the fault-free bypass rung with
/// a bit-identical answer — in round-trip time, not minutes.
#[test]
fn hung_workers_are_reaped_and_the_bypass_rung_answers() {
    let opts = ServiceOptions {
        workers: 2,
        faults: ServiceFaultSpec {
            seed: 1,
            hang_rate: 1.0,
            ..ServiceFaultSpec::none()
        },
        ..ServiceOptions::default()
    };
    let service = TuningService::start(opts);
    let mut req = TuneRequest::new(1, hslb_cesm::Resolution::OneDegree, 96);
    req.deadline_ms = Some(300); // keys the watchdog
    let resp = service
        .submit(req.clone())
        .expect("submit")
        .wait()
        .expect("bypass rung rescues a fully hung pipeline");
    assert_eq!(
        resp.payload.fingerprint(),
        reference_response(&req).expect("reference").fingerprint()
    );
    let health = service.health();
    assert!(health.hangs >= 1, "watchdog never fired: {health:?}");
    assert!(health.bypasses >= 1, "bypass rung never ran: {health:?}");
    service.shutdown();
}

/// Kill-and-restart bit-identity: a service restarted from a valid
/// snapshot serves the snapshotted scenarios from the exact tier, bit
/// for bit, without rerunning the pipeline.
#[test]
fn snapshot_restart_serves_bit_identical_cached_responses() {
    let path = temp_path("restart");
    let _ = std::fs::remove_file(&path);
    let requests: Vec<TuneRequest> = [64i64, 96, 128]
        .iter()
        .enumerate()
        .map(|(i, &nodes)| TuneRequest::new(i as u64 + 1, hslb_cesm::Resolution::OneDegree, nodes))
        .collect();

    let opts = ServiceOptions {
        snapshot: Some(SnapshotPolicy::new(&path)),
        ..ServiceOptions::default()
    };
    let first = TuningService::start(opts.clone());
    let mut fingerprints = Vec::new();
    for req in &requests {
        let resp = first
            .submit(req.clone())
            .expect("submit")
            .wait()
            .expect("pipeline run");
        fingerprints.push(resp.payload.fingerprint());
    }
    // Graceful drain flushes the snapshot (satellite 2); the file on
    // disk is what a kill -9 + restart would find.
    first.shutdown();
    assert!(path.is_file(), "drain must flush the snapshot");

    let second = TuningService::start(opts);
    let record = second.health().recovery;
    assert!(record.attempted);
    assert!(
        !record.cold_start,
        "valid snapshot must restore: {record:?}"
    );
    assert_eq!(record.restored_exact, fingerprints.len());
    for (req, expected) in requests.iter().zip(&fingerprints) {
        let mut replay = req.clone();
        replay.id += 100;
        let resp = second
            .submit(replay)
            .expect("submit")
            .wait()
            .expect("restored service serves");
        assert_eq!(
            resp.tier,
            CacheTier::Exact,
            "restored scenario must hit the exact tier"
        );
        assert_eq!(
            &resp.payload.fingerprint(),
            expected,
            "restored response must be bit-identical to the pre-restart one"
        );
    }
    second.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// A corrupted or truncated snapshot must degrade to a clean cold start
/// with the reason on the recovery record — never a crash, never a
/// half-restored cache.
#[test]
fn corrupted_and_truncated_snapshots_cold_start_with_a_record() {
    let path = temp_path("corrupt");

    // Corrupted: plausible-looking JSON that fails the checksum footer.
    std::fs::write(&path, b"{\"schema\":\"hslb-cache-snapshot/v1\"}\n").expect("write garbage");
    let opts = ServiceOptions {
        snapshot: Some(SnapshotPolicy::new(&path)),
        ..ServiceOptions::default()
    };
    let service = TuningService::start(opts.clone());
    let record = service.health().recovery;
    assert!(record.attempted);
    assert!(record.cold_start, "corruption must cold-start: {record:?}");
    assert_eq!(record.restored_exact + record.restored_fits, 0);
    assert!(
        !record.fallbacks.is_empty(),
        "the reason must be on the record"
    );
    // The cold service still serves correctly.
    let req = TuneRequest::new(1, hslb_cesm::Resolution::OneDegree, 96);
    let resp = service
        .submit(req.clone())
        .expect("submit")
        .wait()
        .expect("cold start serves");
    assert_eq!(
        resp.payload.fingerprint(),
        reference_response(&req).expect("reference").fingerprint()
    );
    service.shutdown(); // overwrites the garbage with a valid snapshot

    // Truncated: chop the now-valid snapshot mid-body. The length/
    // checksum footer no longer matches, so restore must refuse it.
    let full = std::fs::read(&path).expect("valid snapshot exists");
    assert!(full.len() > 64);
    std::fs::write(&path, &full[..full.len() / 2]).expect("truncate");
    let service = TuningService::start(opts);
    let record = service.health().recovery;
    assert!(record.attempted);
    assert!(record.cold_start, "truncation must cold-start: {record:?}");
    assert!(!record.fallbacks.is_empty());
    service.shutdown();
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite 3: snapshot round-trip property. For ANY payload float
    /// bits — negative, subnormal, huge, non-finite — and any cache-key
    /// string, save → load reproduces the payload bit for bit (equal
    /// fingerprints) and reports a non-cold restore.
    #[test]
    fn snapshot_round_trip_is_bit_exact(
        lnd in 1i64..512, ice in 1i64..512, atm in 1i64..4096, ocn in 1i64..4096,
        t_lnd in any_f64_bits(), t_ice in any_f64_bits(),
        t_atm in any_f64_bits(), t_ocn in any_f64_bits(),
        total in any_f64_bits(),
        predicted in any_opt_f64(),
        r2 in any_opt_f64(),
        degraded in any_bool(),
        certified in any_bool(),
        audit in any_opt_bool(),
        rung in "[a-zA-Z0-9 /|-]{1,24}",
        key_salt in 0u64..1_000_000,
    ) {
        let payload = TunePayload {
            allocation: Allocation { lnd, ice, atm, ocn },
            predicted: Some(ComponentTimes {
                lnd: t_lnd, ice: t_ice, atm: t_atm, ocn: t_ocn,
            }),
            predicted_total: predicted,
            actual: ComponentTimes {
                lnd: t_atm, ice: t_ocn, atm: t_lnd, ocn: t_ice,
            },
            actual_total: total,
            min_r_squared: r2,
            rung,
            degraded,
            certified,
            audit_passed: audit,
        };
        let key = format!("1deg|hybrid|min-max|n{atm}|salt{key_salt}");
        let path = temp_path("roundtrip");
        let stats = save_snapshot(&path, &[(key.clone(), payload.clone())], &[])
            .expect("save succeeds");
        prop_assert_eq!(stats.exact_entries, 1);
        let restored = load_snapshot(&path);
        let _ = std::fs::remove_file(&path);
        prop_assert!(restored.record.attempted);
        prop_assert!(!restored.record.cold_start,
            "round trip must not cold-start: {:?}", restored.record);
        prop_assert_eq!(restored.record.restored_exact, 1);
        let (got_key, got) = &restored.exact[0];
        prop_assert_eq!(got_key, &key);
        prop_assert_eq!(got.fingerprint(), payload.fingerprint(),
            "restored payload must be bit-identical");
    }
}
