//! The service determinism gate (ISSUE 5 acceptance) plus the queue /
//! coalescer / shutdown behavior tests.
//!
//! The bar: for any request mix, at any worker count, with caches and
//! coalescing on or off, every response payload is **bit-identical** to
//! running the one-shot pipeline for that request alone
//! (`reference_response`). Payloads compare via
//! `TunePayload::fingerprint`, which renders every float with
//! `f64::to_bits` — equal fingerprints iff bit-identical.

use hslb_service::loadmix::{self, MixSpec};
use hslb_service::{
    reference_response, CachePolicy, CacheTier, ServiceOptions, SubmitError, TuneRequest,
    TuningService,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn quiet_options() -> ServiceOptions {
    ServiceOptions::default()
}

/// Serial references computed once per distinct exact key.
fn references(requests: &[TuneRequest]) -> BTreeMap<String, String> {
    let mut refs = BTreeMap::new();
    for req in requests {
        refs.entry(req.exact_key()).or_insert_with(|| {
            reference_response(req)
                .unwrap_or_else(|e| panic!("reference for {}: {e}", req.exact_key()))
                .fingerprint()
        });
    }
    refs
}

/// Submit the whole mix, wait every ticket, and assert each payload is
/// bit-identical to its serial reference.
fn assert_mix_matches_references(
    opts: ServiceOptions,
    requests: &[TuneRequest],
    refs: &BTreeMap<String, String>,
) {
    let service = TuningService::start(opts);
    let tickets: Vec<_> = requests
        .iter()
        .map(|req| {
            (
                req.exact_key(),
                service.submit(req.clone()).expect("mix fits the queue"),
            )
        })
        .collect();
    for (key, ticket) in tickets {
        let resp = ticket.wait().expect("pipeline succeeds");
        assert_eq!(
            resp.payload.fingerprint(),
            refs[&key],
            "payload for {key} differs from the one-shot pipeline"
        );
    }
    service.shutdown();
}

/// ISSUE 5 acceptance gate: a 50-request deterministic mix, served by
/// ≥ 4 worker threads, is bit-identical to serial one-shot runs — with
/// caching + coalescing on, and with everything off.
#[test]
fn fifty_request_mix_is_bit_identical_with_caches_on_and_off() {
    let mix = loadmix::generate(&MixSpec {
        requests: 50,
        seed: 11,
        include_eighth: false,
    });
    assert_eq!(mix.len(), 50);
    let refs = references(&mix);

    let mut on = quiet_options();
    on.workers = 4;
    on.coalesce = true;
    on.cache = CachePolicy::default();
    assert_mix_matches_references(on, &mix, &refs);

    let mut off = quiet_options();
    off.workers = 4;
    off.coalesce = false;
    off.cache = CachePolicy::disabled();
    // 50 distinct enqueues with nothing coalesced: keep headroom.
    off.queue_capacity = 64;
    assert_mix_matches_references(off, &mix, &refs);
}

/// Once a key has resolved, a duplicate must *report* the shortcut it
/// took: exact-tier hit or coalesce. (Guaranteed deterministically by
/// the front desk: cache lookup and leader/follower registration happen
/// in one critical section, so "done or in flight" is atomic.)
#[test]
fn duplicates_after_completion_report_a_cache_hit() {
    let service = TuningService::start(quiet_options());
    let first = TuneRequest::new(1, hslb_cesm::Resolution::OneDegree, 96);
    let baseline = service
        .submit(first.clone())
        .expect("submit")
        .wait()
        .expect("pipeline succeeds");

    for id in 2..6 {
        let mut dup = first.clone();
        dup.id = id;
        let resp = service.submit(dup).expect("submit").wait().expect("wait");
        assert!(
            resp.coalesced || resp.tier == CacheTier::Exact,
            "duplicate {id} recomputed: tier {:?}, coalesced {}",
            resp.tier,
            resp.coalesced
        );
        // The reply must echo the duplicate's own correlation id, not
        // the id of the request that populated the cache.
        assert_eq!(resp.id, id);
        assert_eq!(resp.payload.fingerprint(), baseline.payload.fingerprint());
    }
    service.shutdown();
}

/// In-flight followers (not just after-completion cache hits) must also
/// get replies carrying their own ids. Submitting the duplicates before
/// waiting on the leader coalesces them onto the in-flight computation.
#[test]
fn coalesced_followers_echo_their_own_ids() {
    let service = TuningService::start(quiet_options());
    let first = TuneRequest::new(10, hslb_cesm::Resolution::OneDegree, 96);
    let mut tickets = vec![(10u64, service.submit(first.clone()).expect("submit lead"))];
    for id in 11..15 {
        let mut dup = first.clone();
        dup.id = id;
        tickets.push((id, service.submit(dup).expect("submit follower")));
    }
    for (id, ticket) in tickets {
        let resp = ticket.wait().expect("wait");
        assert_eq!(resp.id, id, "reply for request {id} echoed the wrong id");
    }
    service.shutdown();
}

/// A full shard rejects with a retry hint instead of queueing without
/// bound, and rejections never displace admitted requests.
#[test]
fn backpressure_rejects_with_retry_hint_without_displacing_work() {
    let mut opts = quiet_options();
    opts.workers = 1;
    opts.shards = 1;
    opts.queue_capacity = 2;
    opts.coalesce = false;
    opts.cache = CachePolicy::disabled();
    let service = TuningService::start(opts);

    let budgets = [64, 96, 128, 192, 256, 48, 80, 112];
    let mut accepted = Vec::new();
    let mut rejected = 0;
    for (id, nodes) in budgets.iter().enumerate() {
        match service.submit(TuneRequest::new(
            id as u64,
            hslb_cesm::Resolution::OneDegree,
            *nodes,
        )) {
            Ok(ticket) => accepted.push(ticket),
            Err(SubmitError::Backpressure(bp)) => {
                assert!(bp.retry_after_ms >= 1, "retry hint must be actionable");
                assert!(bp.depth >= 2, "rejection implies a full shard");
                rejected += 1;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert!(rejected > 0, "8 quick submits into capacity 2 must reject");
    assert!(!accepted.is_empty());
    for ticket in accepted {
        ticket.wait().expect("admitted requests still complete");
    }
    service.shutdown();
}

/// Shutdown drains: every admitted ticket *resolves* — in-flight work
/// completes, still-queued work is rejected with a typed `Draining`
/// error carrying a retry hint (never silently dropped) — and
/// submissions after shutdown fail with `ShuttingDown`.
#[test]
fn shutdown_drains_admitted_work_and_rejects_new() {
    let service = TuningService::start(quiet_options());
    let tickets: Vec<_> = [64, 96, 128]
        .iter()
        .enumerate()
        .map(|(id, nodes)| {
            service
                .submit(TuneRequest::new(
                    id as u64,
                    hslb_cesm::Resolution::OneDegree,
                    *nodes,
                ))
                .expect("submit")
        })
        .collect();
    service.shutdown();
    assert_eq!(
        service
            .submit(TuneRequest::new(99, hslb_cesm::Resolution::OneDegree, 64))
            .unwrap_err(),
        SubmitError::ShuttingDown
    );
    for ticket in tickets {
        match ticket.wait() {
            Ok(_) => {}
            Err(SubmitError::Draining { retry_after_ms }) => {
                assert!(retry_after_ms >= 1, "drain rejection carries a retry hint");
            }
            Err(other) => {
                panic!("admitted before shutdown ⇒ completed or Draining, got {other}")
            }
        }
    }
}

/// `warm_neighbors` is the one knob outside the bit-identity gate: warm
/// starts are same-basin, so the *execution* outcome (the measured times
/// of the chosen allocation) must stay within a loose relative band of
/// the cold reference rather than bit-equal.
#[test]
fn warm_neighbor_seeding_stays_in_basin() {
    let mut opts = quiet_options();
    opts.workers = 2;
    opts.cache.warm_neighbors = true;
    let service = TuningService::start(opts);

    // Two neighboring budgets share a warm scope; the second fit is
    // seeded from the first's curves.
    let a = TuneRequest::new(1, hslb_cesm::Resolution::OneDegree, 96);
    let mut b = TuneRequest::new(2, hslb_cesm::Resolution::OneDegree, 128);
    b.priority = 6;
    service.submit(a).expect("submit").wait().expect("wait");
    let warmed = service
        .submit(b.clone())
        .expect("submit")
        .wait()
        .expect("wait");

    let cold = reference_response(&b).expect("reference");
    let rel = (warmed.payload.actual_total - cold.actual_total).abs()
        / cold.actual_total.max(f64::MIN_POSITIVE);
    assert!(
        rel <= 1e-3,
        "warm-seeded outcome drifted out of basin: rel {rel:.3e}"
    );
    service.shutdown();
}

// Satellite 3: N identical + M distinct requests issued concurrently
// from multiple threads produce payloads bit-identical to serial runs,
// and the duplicates (submitted after their original resolved) report a
// cache or coalesce hit.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn concurrent_identical_plus_distinct_matches_serial(
        identical in 2usize..5,
        distinct_budgets in prop::collection::vec(
            prop::sample::select(vec![48i64, 64, 96, 128, 192]), 1..4),
        seed in 0u64..3,
    ) {
        let base = {
            let mut r = TuneRequest::new(0, hslb_cesm::Resolution::OneDegree, 64);
            r.seed = 42 + seed;
            r
        };
        let mut requests: Vec<TuneRequest> = (0..identical)
            .map(|i| {
                let mut r = base.clone();
                r.id = i as u64;
                r
            })
            .collect();
        for (i, nodes) in distinct_budgets.iter().enumerate() {
            let mut r = TuneRequest::new((100 + i) as u64, hslb_cesm::Resolution::OneDegree, *nodes);
            r.seed = 42 + seed;
            requests.push(r);
        }
        let refs = references(&requests);

        let mut opts = quiet_options();
        opts.workers = 4;
        let service = TuningService::start(opts);
        // Warm the base key so the later identical submissions must hit.
        let first = service
            .submit(base.clone())
            .expect("submit")
            .wait()
            .expect("pipeline succeeds");
        prop_assert_eq!(&first.payload.fingerprint(), &refs[&base.exact_key()]);

        let results: Vec<(String, hslb_service::TuneResponse)> = std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .iter()
                .map(|req| {
                    let service = &service;
                    let req = req.clone();
                    scope.spawn(move || {
                        let key = req.exact_key();
                        (key, service.submit(req).expect("submit").wait().expect("wait"))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        for (key, resp) in &results {
            prop_assert_eq!(&resp.payload.fingerprint(), &refs[key]);
            if *key == base.exact_key() {
                prop_assert!(
                    resp.coalesced || resp.tier == CacheTier::Exact,
                    "identical request recomputed: tier {:?}", resp.tier
                );
            }
        }
        service.shutdown();
    }
}
