//! Connection-scale serving gates: the readiness-loop front end under
//! pipelining, chaos, backpressure, drain, and misrouting.
//!
//! The regression this file pins (ISSUE 8): the original server spawned
//! one thread per connection *and one thread per resolved tune reply*,
//! so a single client pipelining N commands drove the process to N
//! threads. The reactor must answer the same pipelined load with a
//! bounded thread count — workers plus the loop, independent of N —
//! while still correlating out-of-order replies by id, surviving
//! injected connection faults deterministically, disconnecting slow
//! readers instead of buffering without bound, and draining queued
//! replies on shutdown instead of dropping them.

use hslb_service::loadclient::{run_closed_loop, tune_line};
use hslb_service::loadmix::{force_deadlines, generate, MixSpec};
use hslb_service::reactor::{Reactor, ReactorOptions};
use hslb_service::shard::{shard_for_key, ShardSpec};
use hslb_service::{ServiceFaultSpec, ServiceOptions, TuneRequest, TuningService};
use hslb_telemetry::json::Value;
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Start a reactor-fronted service on an ephemeral port; returns the
/// address and the join handle of the loop thread (joins when a client
/// sends `shutdown`).
fn start_server(
    opts: ServiceOptions,
    reactor_opts: ReactorOptions,
) -> (String, JoinHandle<Result<(), String>>) {
    let service = Arc::new(TuningService::start(opts));
    let reactor = Reactor::bind("127.0.0.1:0", service, reactor_opts).expect("bind ephemeral port");
    let addr = reactor.local_addr().to_string();
    let handle = std::thread::spawn(move || reactor.run());
    (addr, handle)
}

fn small_options(workers: usize) -> ServiceOptions {
    ServiceOptions {
        workers,
        queue_capacity: 512,
        ..ServiceOptions::default()
    }
}

/// Threads currently alive in this process (Linux: /proc/self/task).
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}

fn parse_line(line: &str) -> (bool, Value) {
    hslb_service::wire::parse_reply(line).expect("well-formed reply frame")
}

/// Satellite 1 regression: ≥256 tune commands pipelined on ONE
/// connection must resolve with a bounded process thread count and
/// correct id correlation, replies arriving in any order.
#[test]
fn pipelined_replies_are_bounded_and_correlated() {
    let workers = 2;
    let (addr, handle) = start_server(small_options(workers), ReactorOptions::default());
    let baseline = thread_count();

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);

    // 256 pipelined tunes over a handful of distinct scenarios: the
    // duplicates coalesce/cache, the ids never collide.
    const N: u64 = 256;
    let budgets = [64i64, 96, 128, 192];
    for id in 0..N {
        let req = TuneRequest::new(
            id,
            hslb_cesm::Resolution::OneDegree,
            budgets[(id % 4) as usize],
        );
        writeln!(writer, "{}", tune_line(&req)).expect("send");
    }
    writer.flush().expect("flush");

    let mut seen = BTreeSet::new();
    let mut out_of_order = false;
    let mut peak_threads = baseline;
    let mut last = None;
    for _ in 0..N {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        peak_threads = peak_threads.max(thread_count());
        let (ok, v) = parse_line(&line);
        assert!(ok, "pipelined tune failed: {line}");
        let id = v.get("id").and_then(Value::as_f64).expect("reply id") as u64;
        assert!(id < N, "unknown id {id}");
        assert!(seen.insert(id), "id {id} answered twice");
        if let Some(prev) = last {
            out_of_order |= id < prev;
        }
        last = Some(id);
    }
    assert_eq!(seen.len() as u64, N, "every pipelined command answered");
    // Resolution order follows workers and cache hits, not submission
    // order — with 4 scenarios racing through 2 workers some reply must
    // overtake another. (If this ever flakes, the correlation assertions
    // above are the load-bearing part.)
    assert!(
        out_of_order,
        "expected at least one out-of-order reply under pipelining"
    );

    // The old server held ~one thread per unresolved reply (256 here).
    // Bound: workers, their supervised attempt threads, the reactor,
    // and a little slack — independent of pipelining depth.
    let bound = baseline + workers * 2 + 4;
    assert!(
        peak_threads <= bound,
        "thread count {peak_threads} exceeds bound {bound} (baseline {baseline}) — \
         reply delivery is spawning threads again"
    );

    writeln!(writer, "{{\"op\":\"shutdown\"}}").expect("send shutdown");
    writer.flush().expect("flush");
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("ack");
    let (ok, v) = parse_line(&ack);
    assert!(ok && v.get("op").and_then(Value::as_str) == Some("shutdown"));
    handle.join().expect("reactor joins").expect("clean drain");
}

/// Satellite 4a: injected `ConnFault::Drop` and `ConnFault::Truncate`
/// at the readiness-loop write path must be survivable — every request
/// still terminates with a verified bit-identical response, and the
/// client's fault accounting shows the faults actually fired.
#[test]
fn reactor_survives_injected_connection_faults() {
    let faults = ServiceFaultSpec {
        drop_rate: 0.12,
        truncate_rate: 0.12,
        ..ServiceFaultSpec::chaos(23, 0.0)
    };
    let opts = ServiceOptions {
        faults,
        ..small_options(2)
    };
    let reactor_opts = ReactorOptions {
        faults,
        ..ReactorOptions::default()
    };
    let (addr, handle) = start_server(opts, reactor_opts);

    let mut mix = generate(&MixSpec::chaos());
    force_deadlines(&mut mix, 1500);
    let addrs = vec![addr.clone()];
    let results = run_closed_loop(&addrs, &mix, 3).expect("closed loop");

    assert!(
        results.errors.is_empty(),
        "chaos must never surface terminal errors: {:?}",
        results.errors
    );
    assert_eq!(results.rejected, 0, "chaos must never exhaust retries");
    assert_eq!(
        results.outcomes.len(),
        mix.len(),
        "every request terminates with a verified response"
    );
    assert!(
        results.faults.conn_failures > 0,
        "the seeded drop/truncate spec must actually fire at these rates"
    );
    assert!(
        results.faults.reconnects > 0,
        "surviving a dropped connection requires reconnecting"
    );

    let mut ctl = hslb_service::loadclient::Conn::open(&addr).expect("control conn");
    let reply = ctl.round_trip("{\"op\":\"shutdown\"}").expect("shutdown");
    assert!(parse_line(&reply).0);
    handle.join().expect("reactor joins").expect("clean drain");
}

/// Satellite 4b: a client that stops reading mid-flood is disconnected
/// once its outbound queue passes the cap — the server's memory stays
/// bounded and other connections keep serving.
#[test]
fn slow_reader_is_disconnected_not_buffered() {
    let reactor_opts = ReactorOptions {
        max_outbound_bytes: 4 * 1024,
        ..ReactorOptions::default()
    };
    let (addr, handle) = start_server(small_options(1), reactor_opts);

    // Conn A: flood pings, never read a byte. Replies pile up first in
    // kernel buffers, then in the reactor's outbound queue for this
    // connection, which is capped — the server must cut us off.
    let slow = TcpStream::connect(&addr).expect("connect slow");
    let mut slow_writer = BufWriter::new(slow.try_clone().expect("clone"));
    let mut write_failed = false;
    for _ in 0..400_000 {
        if writeln!(slow_writer, "{{\"op\":\"ping\"}}").is_err() || slow_writer.flush().is_err() {
            write_failed = true;
            break;
        }
    }
    // Whether or not the local write already observed the reset, the
    // server side must have closed the connection for slowness; verify
    // through a healthy second connection.
    let mut ctl = hslb_service::loadclient::Conn::open(&addr).expect("control conn");
    let mut slow_closed = 0.0;
    for _ in 0..200 {
        let reply = ctl.round_trip("{\"op\":\"stats\"}").expect("stats");
        let (ok, v) = parse_line(&reply);
        assert!(ok, "stats must succeed on the healthy connection");
        slow_closed = v
            .get("serving")
            .and_then(|s| s.get("slow_closed"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        if slow_closed > 0.0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        slow_closed > 0.0,
        "server never disconnected the slow reader (write_failed={write_failed})"
    );

    // The healthy connection still round-trips fine.
    let reply = ctl.round_trip("{\"op\":\"ping\"}").expect("ping");
    assert!(parse_line(&reply).0);

    drop(slow_writer);
    drop(slow);
    let reply = ctl.round_trip("{\"op\":\"shutdown\"}").expect("shutdown");
    assert!(parse_line(&reply).0);
    handle.join().expect("reactor joins").expect("clean drain");
}

/// Satellite 4c: graceful drain with replies still queued. Every
/// pipelined id is answered — a verified success or a typed Draining
/// error, never silence — the shutdown ack comes after them, and the
/// loop thread joins. The run must not hang regardless of how much was
/// in flight.
#[test]
fn drain_answers_every_queued_reply_before_ack() {
    // One worker and distinct scenarios: most submissions are still
    // queued (not yet solving) when the shutdown lands right behind
    // them on the same connection.
    let (addr, handle) = start_server(small_options(1), ReactorOptions::default());

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);

    let mix = generate(&MixSpec {
        requests: 24,
        seed: 41,
        include_eighth: false,
    });
    for req in &mix {
        writeln!(writer, "{}", tune_line(req)).expect("send");
    }
    writeln!(writer, "{{\"op\":\"shutdown\"}}").expect("send shutdown");
    writer.flush().expect("flush");

    let mut answered = BTreeSet::new();
    let mut drained = 0usize;
    let mut acked = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read") == 0 {
            break;
        }
        let (ok, v) = parse_line(&line);
        if ok && v.get("op").and_then(Value::as_str) == Some("shutdown") {
            acked = true;
            break;
        }
        let id = v.get("id").and_then(Value::as_f64).expect("correlated id") as u64;
        assert!(answered.insert(id), "id {id} answered twice");
        if !ok {
            let err = v.get("error").and_then(Value::as_str).unwrap_or_default();
            assert!(
                v.get("retry_after_ms").is_some(),
                "drain rejections must be typed retryable errors, got: {err}"
            );
            drained += 1;
        }
    }
    assert!(acked, "shutdown must be acked after the queued replies");
    assert_eq!(
        answered.len(),
        mix.len(),
        "every pipelined id is answered before the ack (drained {drained})"
    );
    handle.join().expect("reactor joins").expect("clean drain");
}

/// Sharded serving: a reactor started as shard 0 of 2 verifies routing
/// server-side — owned keys solve, foreign keys get the typed
/// `misrouted` rejection naming the owner.
#[test]
fn sharded_reactor_rejects_misrouted_keys() {
    let reactor_opts = ReactorOptions {
        shard: Some(ShardSpec { index: 0, total: 2 }),
        ..ReactorOptions::default()
    };
    let (addr, handle) = start_server(small_options(1), reactor_opts);

    // Probe scenarios until we hold one key per shard.
    let budgets = [64i64, 96, 128, 192, 256];
    let mut owned = None;
    let mut foreign = None;
    for (i, &budget) in budgets.iter().enumerate() {
        let req = TuneRequest::new(i as u64, hslb_cesm::Resolution::OneDegree, budget);
        match shard_for_key(&req.exact_key(), 2) {
            0 if owned.is_none() => owned = Some(req),
            1 if foreign.is_none() => foreign = Some(req),
            _ => {}
        }
    }
    let owned = owned.expect("some budget routes to shard 0");
    let foreign = foreign.expect("some budget routes to shard 1");

    let mut conn = hslb_service::loadclient::Conn::open(&addr).expect("connect");
    let reply = conn.round_trip(&tune_line(&foreign)).expect("reply");
    let (ok, v) = parse_line(&reply);
    assert!(!ok, "foreign key must be rejected");
    let err = v.get("error").and_then(Value::as_str).unwrap_or_default();
    assert!(
        err.contains("misrouted") && err.contains("shard 1"),
        "rejection must name the owner: {err}"
    );
    assert!(
        v.get("retry_after_ms").is_none(),
        "misrouting is terminal, not retryable"
    );

    let reply = conn.round_trip(&tune_line(&owned)).expect("reply");
    let (ok, v) = parse_line(&reply);
    assert!(ok, "owned key must solve: {reply}");
    assert_eq!(
        v.get("id").and_then(Value::as_f64),
        Some(owned.id as f64),
        "owned reply correlates"
    );

    let reply = conn.round_trip("{\"op\":\"shutdown\"}").expect("shutdown");
    assert!(parse_line(&reply).0);
    handle.join().expect("reactor joins").expect("clean drain");
}
