//! The sweep subsystem's determinism bar.
//!
//! 1. **Portfolio vs one-shot bit-identity**: every non-pruned entry of
//!    a sweep portfolio must carry the exact fingerprint of a standalone
//!    one-shot pipeline run for that configuration — at every worker
//!    count, with caches on or off — and the portfolio itself (entries,
//!    pruning decisions, frontier) must be identical across those runs.
//! 2. **Pinned pruning regression**: on the five shipped scenarios the
//!    predictor may never prune the true winner (the best exact makespan
//!    per budget group, established by a prune-off sweep).
//! 3. **Fail-open**: a seeded bad predictor (the calibration-noise chaos
//!    hook) must disable pruning entirely, never silently misprune.
//! 4. **Pareto-frontier order independence** (proptest below).

use hslb_service::request::TuneRequest;
use hslb_service::sweep_driver::run_sweep;
use hslb_service::{reference_response, CachePolicy, ServiceOptions, TuningService};
use hslb_sweep::portfolio::pareto_frontier;
use hslb_sweep::spec::CalibrationNoise;
use hslb_sweep::{Portfolio, SweepConfig, SweepSpec};
use hslb_telemetry::Telemetry;
use proptest::prelude::*;

fn request_for(cfg: &SweepConfig) -> TuneRequest {
    TuneRequest {
        id: 0,
        resolution: cfg.resolution,
        layout: cfg.layout,
        objective: cfg.objective,
        target_nodes: cfg.target_nodes,
        ocean_constrained: cfg.ocean_constrained,
        seed: cfg.seed,
        priority: 4,
        deadline_ms: None,
    }
}

fn sweep_with(spec: &SweepSpec, workers: usize, caches: bool) -> Portfolio {
    let service = TuningService::start(ServiceOptions {
        workers,
        cache: CachePolicy {
            exact: caches,
            fit: caches,
            warm_neighbors: false,
        },
        ..ServiceOptions::default()
    });
    let telemetry = Telemetry::disabled();
    let portfolio = run_sweep(&service, spec, &telemetry, |_| {}).expect("sweep run");
    service.shutdown();
    portfolio
}

/// Non-pruned entries must be bit-identical to standalone one-shot runs,
/// and the portfolio must not depend on worker count or cache policy.
#[test]
fn portfolio_matches_one_shot_reference_at_any_concurrency() {
    let spec = SweepSpec {
        one_degree_budgets: vec![64, 96, 128, 192],
        ..SweepSpec::default()
    };
    let configs = spec.configs();
    assert_eq!(configs.len(), 12);

    let runs = [(1usize, true), (1, false), (4, true), (4, false)];
    let mut portfolios = Vec::new();
    for (workers, caches) in runs {
        portfolios.push((workers, caches, sweep_with(&spec, workers, caches)));
    }

    // Every run yields the same entries, decisions, and frontier
    // (stats legitimately differ: cache hit counts, wall-clock).
    let (_, _, first) = &portfolios[0];
    for (workers, caches, p) in &portfolios[1..] {
        assert_eq!(
            p.entries, first.entries,
            "entries diverged at workers={workers} caches={caches}"
        );
        assert_eq!(
            p.decisions, first.decisions,
            "pruning decisions diverged at workers={workers} caches={caches}"
        );
        assert_eq!(
            p.frontier, first.frontier,
            "frontier diverged at workers={workers} caches={caches}"
        );
    }

    // Every non-pruned entry matches the one-shot reference pipeline
    // bit for bit.
    let mut checked = 0;
    for entry in &first.entries {
        if entry.pruned {
            continue;
        }
        let cfg = configs
            .iter()
            .find(|c| c.key() == entry.key)
            .expect("entry key in spec grid");
        let reference = reference_response(&request_for(cfg)).expect("reference pipeline");
        assert_eq!(
            entry.fingerprint.as_deref(),
            Some(reference.fingerprint().as_str()),
            "fingerprint mismatch for {}",
            entry.key
        );
        assert_eq!(entry.makespan.to_bits(), reference.actual_total.to_bits());
        checked += 1;
    }
    assert!(checked >= 1, "no non-pruned entries to check");
    assert_eq!(first.stats.planned, first.stats.solved + first.stats.pruned);
}

/// Pinned regression: on each shipped scenario's budget neighborhood the
/// pruned sweep must keep (exactly solve) every budget group's true
/// winner, established by a prune-off sweep of the same grid.
#[test]
fn predictor_never_prunes_the_true_winner_on_shipped_scenarios() {
    // (name, 1° budgets, 1/8° budgets): the scenario's budget plus its
    // halved/doubled neighbors, clamped to budgets where every layout's
    // ocean count is feasible (sequential at 1/8° 32768 is not).
    let scenarios: [(&str, Vec<i64>, Vec<i64>); 5] = [
        ("1deg_n64", vec![32, 64, 128], vec![]),
        ("1deg_n128", vec![64, 128, 256], vec![]),
        ("1deg_n256", vec![128, 256, 512], vec![]),
        ("eighth_n8192", vec![], vec![4096, 8192, 16384]),
        ("eighth_n16384", vec![], vec![8192, 16384]),
    ];
    for (name, one_deg, eighth) in scenarios {
        let base = SweepSpec {
            one_degree_budgets: one_deg,
            eighth_degree_budgets: eighth,
            ..SweepSpec::default()
        };
        let exact = sweep_with(
            &SweepSpec {
                prune: false,
                ..base.clone()
            },
            4,
            true,
        );
        let pruned = sweep_with(&base, 4, true);
        assert_eq!(exact.stats.pruned, 0, "{name}: prune-off run pruned");

        // True winner per budget group from the exhaustive run.
        let configs = base.configs();
        let group_of = |key: &str| {
            configs
                .iter()
                .find(|c| c.key() == key)
                .expect("key in grid")
                .budget_group()
        };
        let mut winners: std::collections::BTreeMap<String, (&str, f64)> = Default::default();
        for e in &exact.entries {
            let g = group_of(&e.key);
            let slot = winners.entry(g).or_insert((e.key.as_str(), e.makespan));
            if e.makespan < slot.1 {
                *slot = (e.key.as_str(), e.makespan);
            }
        }
        for (group, (winner_key, _)) in &winners {
            let entry = pruned
                .entries
                .iter()
                .find(|e| e.key == *winner_key)
                .expect("winner present in pruned portfolio");
            assert!(
                !entry.pruned,
                "{name}: pruned the true winner {winner_key} of group {group}"
            );
            // And the kept winner is still the exact one-shot answer.
            let exact_entry = exact.entries.iter().find(|e| e.key == *winner_key).unwrap();
            assert_eq!(
                entry.fingerprint, exact_entry.fingerprint,
                "{name}: winner {winner_key} fingerprint drifted under pruning"
            );
        }
        assert_eq!(
            pruned.stats.planned,
            pruned.stats.solved + pruned.stats.pruned,
            "{name}: accounting broken"
        );
    }
}

/// A predictor fed garbage calibration data must refuse to calibrate
/// (accuracy rung) and the sweep must fail open: zero pruned, every
/// configuration exactly solved, the failure reason logged.
#[test]
fn bad_predictor_fails_open_to_exact_solves() {
    let spec = SweepSpec {
        one_degree_budgets: vec![48, 64, 96, 128],
        calibration_noise: Some(CalibrationNoise {
            seed: 9,
            amplitude: 2.0,
        }),
        ..SweepSpec::default()
    };
    let portfolio = sweep_with(&spec, 4, true);
    assert_eq!(portfolio.stats.pruned, 0, "bad predictor still pruned");
    assert_eq!(portfolio.stats.planned, portfolio.stats.solved);
    assert!(
        portfolio.stats.predictor_failed.is_some(),
        "predictor failure not surfaced"
    );
    assert!(!portfolio.decisions.is_empty());
    for d in &portfolio.decisions {
        assert!(!d.pruned);
        assert!(
            d.reason.starts_with("fail-open"),
            "decision not fail-open: {}",
            d.reason
        );
    }
    // Every entry is exact: solved with a fingerprint.
    for e in &portfolio.entries {
        assert!(!e.pruned);
        assert!(e.fingerprint.is_some());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pareto-frontier extraction is a pure dominance filter: the same
    /// point set in any order yields the same frontier.
    #[test]
    fn pareto_frontier_is_order_independent(
        points in prop::collection::vec((0u32..40, 1u32..60, 1i64..60), 1..24),
        seed in 0u64..1_000,
    ) {
        let canonical: Vec<(String, f64, i64)> = points
            .iter()
            .enumerate()
            .map(|(i, (k, m, n))| (format!("k{k}-{i}"), *m as f64, *n))
            .collect();
        // Deterministic shuffle from the seed (splitmix-driven swaps).
        let mut shuffled = canonical.clone();
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..shuffled.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        prop_assert_eq!(pareto_frontier(&canonical), pareto_frontier(&shuffled));

        // Frontier members are mutually non-dominated.
        let frontier = pareto_frontier(&canonical);
        for a in &frontier {
            let (_, ma, na) = canonical.iter().find(|(k, _, _)| k == a).unwrap();
            for b in &frontier {
                if a == b {
                    continue;
                }
                let (_, mb, nb) = canonical.iter().find(|(k, _, _)| k == b).unwrap();
                prop_assert!(
                    !(mb <= ma && nb <= na && (mb < ma || nb < na)),
                    "{} dominates {}", b, a
                );
            }
        }
    }
}
