//! Sweep specifications: the configuration grid a portfolio question
//! expands into.
//!
//! A [`SweepSpec`] is the product grid *layout topology × resolution ×
//! node budget*, refined by holds and overrides:
//!
//! * a **hold** pins a configuration (by key) so the predictor may never
//!   prune it — it is always exact-solved, whatever the predictor says;
//! * an **override** swaps the objective for one configuration (by key),
//!   e.g. re-asking a single grid point as `min-sum` while the rest of
//!   the sweep runs `min-max`.
//!
//! Expansion ([`SweepSpec::configs`]) is deterministic: resolutions in
//! declaration order, budgets ascending, layouts in Figure 1 order. The
//! whole sweep inherits one machine configuration (ocean constraint +
//! simulator seed), because configurations that differ there share no
//! curve data and would defeat the shared-work plan.

use hslb_cesm::{Layout, Resolution};
use hslb_telemetry::json::Value;

/// One grid point of a sweep: everything the executor needs to phrase a
/// tune request, plus the hold flag.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    pub layout: Layout,
    pub resolution: Resolution,
    pub objective: hslb::Objective,
    pub target_nodes: i64,
    pub ocean_constrained: bool,
    pub seed: u64,
    /// Held configurations are exempt from predictor pruning.
    pub held: bool,
}

impl SweepConfig {
    /// Stable identity within (and across) sweeps — the same fields, in
    /// the same order, as the service's exact-match cache key.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|n{}|ocean{}|seed{}",
            resolution_token(self.resolution),
            layout_token(self.layout),
            self.objective,
            self.target_nodes,
            self.ocean_constrained,
            self.seed
        )
    }

    /// Curve-sharing signature: configurations with equal signatures
    /// gather the same benchmark data and fit the same curves (the node
    /// budget is absent by design — the service benchmarks the whole
    /// machine, so one fit fans out to every budget).
    pub fn fit_signature(&self) -> String {
        format!(
            "{}|ocean{}|seed{}",
            resolution_token(self.resolution),
            self.ocean_constrained,
            self.seed
        )
    }

    /// Pruning scope: the predictor compares a configuration only
    /// against exact solves of the *same* resolution and budget (layouts
    /// and objectives compete; budgets do not).
    pub fn budget_group(&self) -> String {
        format!(
            "{}|n{}",
            resolution_token(self.resolution),
            self.target_nodes
        )
    }
}

/// Deterministic multiplicative noise injected into the predictor's
/// calibration samples — a chaos hook for exercising the fail-open
/// ladder (a real deployment never sets it). Sample `i` is scaled by
/// `exp(amplitude · u_i)` with `u_i ∈ [-1, 1)` drawn from a seeded
/// splitmix stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationNoise {
    pub seed: u64,
    pub amplitude: f64,
}

/// The full sweep question.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Layout topologies to sweep (Figure 1 order recommended).
    pub layouts: Vec<Layout>,
    /// Node budgets per resolution; an empty list drops the resolution
    /// from the sweep.
    pub one_degree_budgets: Vec<i64>,
    pub eighth_degree_budgets: Vec<i64>,
    /// Default objective for every grid point (see `overrides`).
    pub objective: hslb::Objective,
    pub ocean_constrained: bool,
    pub seed: u64,
    /// Enable predictor-based pruning (exact solves throughout when
    /// false).
    pub prune: bool,
    /// Relative safety margin on top of the predictor's worst observed
    /// calibration error: a configuration is pruned only when its
    /// predicted makespan, deflated by both, still exceeds the best
    /// exact makespan in its budget group.
    pub safety_margin: f64,
    /// Keys of configurations exempt from pruning.
    pub holds: Vec<String>,
    /// Per-key objective overrides, applied during expansion.
    pub overrides: Vec<(String, hslb::Objective)>,
    /// Chaos hook: distort calibration samples (fail-open exercise).
    pub calibration_noise: Option<CalibrationNoise>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            layouts: Layout::ALL.to_vec(),
            one_degree_budgets: Vec::new(),
            eighth_degree_budgets: Vec::new(),
            objective: hslb::Objective::MinMax,
            ocean_constrained: true,
            seed: 42,
            prune: true,
            safety_margin: 0.25,
            holds: Vec::new(),
            overrides: Vec::new(),
            calibration_noise: None,
        }
    }
}

impl SweepSpec {
    /// Expand the grid into configurations, deterministically: 1° before
    /// 1/8°, budgets ascending, layouts in declaration order. Overrides
    /// are applied by key *before* holds are matched, so a hold can name
    /// the overridden form.
    pub fn configs(&self) -> Vec<SweepConfig> {
        let mut out = Vec::new();
        let axes: [(Resolution, &[i64]); 2] = [
            (Resolution::OneDegree, &self.one_degree_budgets),
            (Resolution::EighthDegree, &self.eighth_degree_budgets),
        ];
        for (resolution, budgets) in axes {
            let mut budgets = budgets.to_vec();
            budgets.sort_unstable();
            budgets.dedup();
            for nodes in budgets {
                for &layout in &self.layouts {
                    let mut cfg = SweepConfig {
                        layout,
                        resolution,
                        objective: self.objective,
                        target_nodes: nodes,
                        ocean_constrained: self.ocean_constrained,
                        seed: self.seed,
                        held: false,
                    };
                    // An override may be phrased against either the
                    // default-objective key or the overridden key.
                    let base_key = cfg.key();
                    for (key, objective) in &self.overrides {
                        let mut probe = cfg.clone();
                        probe.objective = *objective;
                        if *key == base_key || *key == probe.key() {
                            cfg.objective = *objective;
                            break;
                        }
                    }
                    cfg.held = self.holds.contains(&cfg.key());
                    out.push(cfg);
                }
            }
        }
        out
    }

    /// JSON form (the wire `sweep` op's request body and the CLI's spec
    /// files).
    pub fn to_value(&self) -> Value {
        let nums = |xs: &[i64]| Value::Arr(xs.iter().map(|&n| Value::Num(n as f64)).collect());
        let mut kv = vec![
            (
                "layouts".to_string(),
                Value::Arr(
                    self.layouts
                        .iter()
                        .map(|&l| Value::Str(layout_token(l).to_string()))
                        .collect(),
                ),
            ),
            (
                "one_degree_nodes".to_string(),
                nums(&self.one_degree_budgets),
            ),
            (
                "eighth_degree_nodes".to_string(),
                nums(&self.eighth_degree_budgets),
            ),
            (
                "objective".to_string(),
                Value::Str(self.objective.to_string()),
            ),
            ("ocean".to_string(), Value::Bool(self.ocean_constrained)),
            ("seed".to_string(), Value::Num(self.seed as f64)),
            ("prune".to_string(), Value::Bool(self.prune)),
            ("safety_margin".to_string(), Value::Num(self.safety_margin)),
            (
                "holds".to_string(),
                Value::Arr(self.holds.iter().map(|k| Value::Str(k.clone())).collect()),
            ),
            (
                "overrides".to_string(),
                Value::Arr(
                    self.overrides
                        .iter()
                        .map(|(k, o)| {
                            Value::Obj(vec![
                                ("key".to_string(), Value::Str(k.clone())),
                                ("objective".to_string(), Value::Str(o.to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(noise) = self.calibration_noise {
            kv.push((
                "calibration_noise".to_string(),
                Value::Obj(vec![
                    ("seed".to_string(), Value::Num(noise.seed as f64)),
                    ("amplitude".to_string(), Value::Num(noise.amplitude)),
                ]),
            ));
        }
        Value::Obj(kv)
    }

    /// Parse the JSON form; returns a human-readable error.
    pub fn from_value(v: &Value) -> Result<SweepSpec, String> {
        let mut spec = SweepSpec::default();
        if let Some(ls) = v.get("layouts").and_then(Value::as_arr) {
            spec.layouts = ls
                .iter()
                .map(|l| {
                    l.as_str()
                        .ok_or_else(|| "layouts entries must be strings".to_string())
                        .and_then(parse_layout)
                })
                .collect::<Result<_, _>>()?;
        }
        let budgets = |key: &str| -> Result<Vec<i64>, String> {
            match v.get(key) {
                None => Ok(Vec::new()),
                Some(arr) => arr
                    .as_arr()
                    .ok_or_else(|| format!("{key} must be an array"))?
                    .iter()
                    .map(|n| {
                        n.as_f64()
                            .map(|f| f as i64)
                            .ok_or_else(|| format!("{key} entries must be numbers"))
                    })
                    .collect(),
            }
        };
        spec.one_degree_budgets = budgets("one_degree_nodes")?;
        spec.eighth_degree_budgets = budgets("eighth_degree_nodes")?;
        if let Some(s) = v.get("objective").and_then(Value::as_str) {
            spec.objective = parse_objective(s)?;
        }
        if let Some(b) = v.get("ocean").and_then(Value::as_bool) {
            spec.ocean_constrained = b;
        }
        if let Some(s) = v.get("seed").and_then(Value::as_f64) {
            spec.seed = s as u64;
        }
        if let Some(b) = v.get("prune").and_then(Value::as_bool) {
            spec.prune = b;
        }
        if let Some(m) = v.get("safety_margin").and_then(Value::as_f64) {
            if !(0.0..=10.0).contains(&m) {
                return Err(format!("safety_margin must be in [0, 10], got {m}"));
            }
            spec.safety_margin = m;
        }
        if let Some(hs) = v.get("holds").and_then(Value::as_arr) {
            spec.holds = hs
                .iter()
                .map(|h| {
                    h.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "holds entries must be strings".to_string())
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(os) = v.get("overrides").and_then(Value::as_arr) {
            spec.overrides = os
                .iter()
                .map(|o| {
                    let key = o
                        .get("key")
                        .and_then(Value::as_str)
                        .ok_or("override missing string key")?
                        .to_string();
                    let objective = parse_objective(
                        o.get("objective")
                            .and_then(Value::as_str)
                            .ok_or("override missing string objective")?,
                    )?;
                    Ok::<_, String>((key, objective))
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(n) = v.get("calibration_noise") {
            if !matches!(n, Value::Null) {
                spec.calibration_noise = Some(CalibrationNoise {
                    seed: n.get("seed").and_then(Value::as_f64).unwrap_or(0.0) as u64,
                    amplitude: n
                        .get("amplitude")
                        .and_then(Value::as_f64)
                        .ok_or("calibration_noise missing numeric amplitude")?,
                });
            }
        }
        if spec.layouts.is_empty() {
            return Err("sweep needs at least one layout".to_string());
        }
        if spec.one_degree_budgets.is_empty() && spec.eighth_degree_budgets.is_empty() {
            return Err("sweep needs at least one node budget".to_string());
        }
        for &n in spec
            .one_degree_budgets
            .iter()
            .chain(&spec.eighth_degree_budgets)
        {
            if n < 4 {
                return Err(format!("node budgets must be >= 4, got {n}"));
            }
        }
        Ok(spec)
    }
}

/// Wire token for a resolution (matches the service's).
pub fn resolution_token(r: Resolution) -> &'static str {
    match r {
        Resolution::OneDegree => "1deg",
        Resolution::EighthDegree => "eighth",
    }
}

/// Wire token for a layout (matches the service's).
pub fn layout_token(l: Layout) -> &'static str {
    match l {
        Layout::Hybrid => "hybrid",
        Layout::SequentialWithOcean => "seq-ocean",
        Layout::FullySequential => "sequential",
    }
}

/// Parse a layout wire token.
pub fn parse_layout(s: &str) -> Result<Layout, String> {
    match s {
        "hybrid" => Ok(Layout::Hybrid),
        "seq-ocean" => Ok(Layout::SequentialWithOcean),
        "sequential" => Ok(Layout::FullySequential),
        other => Err(format!(
            "unknown layout {other:?} (hybrid|seq-ocean|sequential)"
        )),
    }
}

/// Parse an objective wire token (the `Display` forms).
pub fn parse_objective(s: &str) -> Result<hslb::Objective, String> {
    match s {
        "min-max" => Ok(hslb::Objective::MinMax),
        "max-min" => Ok(hslb::Objective::MaxMin),
        "min-sum" => Ok(hslb::Objective::SumTime),
        other => Err(format!(
            "unknown objective {other:?} (min-max|max-min|min-sum)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec {
            one_degree_budgets: vec![128, 64, 96, 128],
            eighth_degree_budgets: vec![8192],
            ..SweepSpec::default()
        }
    }

    #[test]
    fn expansion_is_sorted_and_deduped() {
        let cfgs = spec().configs();
        // 3 unique 1deg budgets × 3 layouts + 1 eighth budget × 3 layouts.
        assert_eq!(cfgs.len(), 12);
        let budgets: Vec<i64> = cfgs
            .iter()
            .filter(|c| c.resolution == Resolution::OneDegree)
            .map(|c| c.target_nodes)
            .collect();
        assert_eq!(budgets, vec![64, 64, 64, 96, 96, 96, 128, 128, 128]);
        let keys: std::collections::BTreeSet<String> = cfgs.iter().map(SweepConfig::key).collect();
        assert_eq!(keys.len(), cfgs.len(), "keys must be unique");
    }

    #[test]
    fn holds_and_overrides_apply_by_key() {
        let mut s = spec();
        let target = "1deg|hybrid|min-max|n96|oceantrue|seed42";
        s.holds.push(target.to_string());
        s.overrides
            .push((target.to_string(), hslb::Objective::SumTime));
        let cfgs = s.configs();
        let hit: Vec<&SweepConfig> = cfgs
            .iter()
            .filter(|c| {
                c.target_nodes == 96
                    && c.layout == Layout::Hybrid
                    && c.resolution == Resolution::OneDegree
            })
            .collect();
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].objective, hslb::Objective::SumTime);
        // The hold was phrased against the pre-override key, so it does
        // not match the overridden config (holds bind to exact keys).
        assert!(!hit[0].held);
        // Phrase the hold against the overridden key instead.
        let mut s2 = spec();
        s2.overrides
            .push((target.to_string(), hslb::Objective::SumTime));
        s2.holds
            .push("1deg|hybrid|min-sum|n96|oceantrue|seed42".to_string());
        let cfgs2 = s2.configs();
        let held = cfgs2
            .iter()
            .find(|c| c.target_nodes == 96 && c.layout == Layout::Hybrid)
            .unwrap();
        assert!(held.held);
    }

    #[test]
    fn json_round_trips() {
        let mut s = spec();
        s.holds
            .push("1deg|hybrid|min-max|n96|oceantrue|seed42".to_string());
        s.overrides.push((
            "1deg|sequential|min-max|n64|oceantrue|seed42".to_string(),
            hslb::Objective::MaxMin,
        ));
        s.calibration_noise = Some(CalibrationNoise {
            seed: 7,
            amplitude: 0.5,
        });
        let text = s.to_value().to_pretty();
        let back = SweepSpec::from_value(&hslb_telemetry::json::parse(&text).unwrap()).unwrap();
        // Budgets normalize (sorted, deduped) on expansion, not parse.
        assert_eq!(s.configs(), back.configs());
        assert_eq!(s.calibration_noise, back.calibration_noise);
    }

    #[test]
    fn rejects_empty_and_tiny_grids() {
        assert!(SweepSpec::from_value(&hslb_telemetry::json::parse("{}").unwrap()).is_err());
        let bad = r#"{"one_degree_nodes": [2]}"#;
        assert!(SweepSpec::from_value(&hslb_telemetry::json::parse(bad).unwrap()).is_err());
    }
}
