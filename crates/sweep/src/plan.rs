//! Shared-work planning: turn an expanded sweep into the DAG the
//! executor walks.
//!
//! The expensive stages of one tune — gather (benchmark the machine) and
//! fit (nonlinear least squares per component) — depend only on a
//! configuration's *fit signature* (resolution + ocean constraint +
//! seed), not on its node budget, layout or objective. The plan
//! therefore groups configurations by signature: the first member of
//! each group (its **lead**) pays the gather+fit cost once, and every
//! other member replays the cached artifacts, running only the cheap
//! solve/execute stages. That is the sweep's work DAG:
//!
//! ```text
//!   gather(sig) ── fit(sig) ──┬── solve(cfg₁) ── execute(cfg₁)
//!                             ├── solve(cfg₂) ── execute(cfg₂)
//!                             └── ...
//! ```
//!
//! The plan also selects the **calibration set** — the configurations
//! exact-solved unconditionally, whose results calibrate the predictor:
//! every layout at the smallest budget of each resolution (so every
//! layout factor is observed), plus the lead layout at every budget (so
//! every budget group has an exact incumbent to prune against). Held
//! configurations join the set by definition. Everything here is pure
//! bookkeeping over indices — deterministic by construction.

use crate::spec::{SweepConfig, SweepSpec};
use std::collections::BTreeMap;

/// Configurations sharing one gather+fit computation.
#[derive(Debug, Clone)]
pub struct FitGroup {
    /// The shared curve signature ([`SweepConfig::fit_signature`]).
    pub signature: String,
    /// Indices into the plan's config vector, in expansion order; the
    /// first is the group's lead.
    pub members: Vec<usize>,
}

/// The executable form of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    pub configs: Vec<SweepConfig>,
    /// Gather/fit dedup groups, ordered by first appearance.
    pub groups: Vec<FitGroup>,
    /// Indices exact-solved unconditionally (calibration + holds),
    /// sorted ascending.
    pub calibration: Vec<usize>,
    /// Indices the predictor may rank and prune (the complement of
    /// `calibration`), sorted ascending.
    pub candidates: Vec<usize>,
}

impl SweepPlan {
    /// Plan a spec. Errors on an empty expansion.
    pub fn new(spec: &SweepSpec) -> Result<SweepPlan, String> {
        let configs = spec.configs();
        if configs.is_empty() {
            return Err("sweep expands to zero configurations".to_string());
        }
        let mut group_of: BTreeMap<String, usize> = BTreeMap::new();
        let mut groups: Vec<FitGroup> = Vec::new();
        for (i, cfg) in configs.iter().enumerate() {
            let sig = cfg.fit_signature();
            let gi = *group_of.entry(sig.clone()).or_insert_with(|| {
                groups.push(FitGroup {
                    signature: sig,
                    members: Vec::new(),
                });
                groups.len() - 1
            });
            groups[gi].members.push(i);
        }

        // Smallest budget per resolution axis and the lead layout (the
        // spec's first) at every budget.
        let lead_layout = spec.layouts[0];
        let mut min_budget: BTreeMap<String, i64> = BTreeMap::new();
        for cfg in &configs {
            let sig = cfg.fit_signature();
            let entry = min_budget.entry(sig).or_insert(cfg.target_nodes);
            *entry = (*entry).min(cfg.target_nodes);
        }
        let mut calibration = Vec::new();
        let mut candidates = Vec::new();
        for (i, cfg) in configs.iter().enumerate() {
            let is_min_budget = min_budget.get(&cfg.fit_signature()) == Some(&cfg.target_nodes);
            if cfg.held || is_min_budget || cfg.layout == lead_layout {
                calibration.push(i);
            } else {
                candidates.push(i);
            }
        }
        Ok(SweepPlan {
            configs,
            groups,
            calibration,
            candidates,
        })
    }

    /// How many gather+fit computations dedup saves versus running every
    /// configuration standalone.
    pub fn dedup_saved(&self) -> usize {
        self.configs.len() - self.groups.len()
    }

    /// The lead index of the group containing config `i`.
    pub fn lead_of(&self, i: usize) -> usize {
        let sig = self.configs[i].fit_signature();
        self.groups
            .iter()
            .find(|g| g.signature == sig)
            .and_then(|g| g.members.first().copied())
            .unwrap_or(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hslb_cesm::Layout;

    fn spec() -> SweepSpec {
        SweepSpec {
            one_degree_budgets: vec![64, 96, 128, 192],
            eighth_degree_budgets: vec![8192, 16384],
            ..SweepSpec::default()
        }
    }

    #[test]
    fn groups_collapse_budgets_and_layouts() {
        let plan = SweepPlan::new(&spec()).unwrap();
        // 4 budgets × 3 layouts + 2 budgets × 3 layouts = 18 configs,
        // but only two fit signatures (one per resolution).
        assert_eq!(plan.configs.len(), 18);
        assert_eq!(plan.groups.len(), 2);
        assert_eq!(plan.dedup_saved(), 16);
        for g in &plan.groups {
            for &m in &g.members {
                assert_eq!(plan.configs[m].fit_signature(), g.signature);
                assert_eq!(plan.lead_of(m), g.members[0]);
            }
        }
    }

    #[test]
    fn calibration_covers_every_layout_and_every_budget_group() {
        let plan = SweepPlan::new(&spec()).unwrap();
        // Min budget per resolution: all 3 layouts. Other budgets: the
        // lead layout only.
        let mut seen_layouts = std::collections::BTreeSet::new();
        let mut covered_groups = std::collections::BTreeSet::new();
        for &i in &plan.calibration {
            let c = &plan.configs[i];
            if c.target_nodes == 64 || c.target_nodes == 8192 {
                seen_layouts.insert(c.layout.number());
            }
            covered_groups.insert(c.budget_group());
        }
        assert_eq!(seen_layouts.len(), 3);
        let all_groups: std::collections::BTreeSet<String> =
            plan.configs.iter().map(SweepConfig::budget_group).collect();
        assert_eq!(covered_groups, all_groups);
        // Candidates and calibration partition the index space.
        let mut union: Vec<usize> = plan
            .calibration
            .iter()
            .chain(&plan.candidates)
            .copied()
            .collect();
        union.sort_unstable();
        assert_eq!(union, (0..plan.configs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn held_configs_are_always_calibration() {
        let mut s = spec();
        // Hold a non-lead layout at a non-min budget: it would otherwise
        // be a pruning candidate.
        s.holds
            .push("1deg|sequential|min-max|n128|oceantrue|seed42".to_string());
        let plan = SweepPlan::new(&s).unwrap();
        let idx = plan
            .configs
            .iter()
            .position(|c| c.held && c.target_nodes == 128 && c.layout == Layout::FullySequential)
            .expect("held config present");
        assert!(plan.calibration.contains(&idx));
        assert!(!plan.candidates.contains(&idx));
    }
}
