//! The factorized makespan predictor.
//!
//! After the calibration configurations have exact solves, the remaining
//! grid is ranked by a cheap multiplicatively-factorized model in the
//! spirit of Oskooi et al. (arXiv:2003.04287): the coupled makespan of
//! layout *l* at resolution *r* on *n* nodes is modelled as
//!
//! ```text
//!   ln T̂(l, r, n) = α_l + β_r + γ_r · ln n        (gauge: α_first = 0)
//! ```
//!
//! — a per-layout factor times a per-resolution power law. The
//! coefficients come from linear least squares over the calibration
//! samples (normal equations, Gaussian elimination with partial
//! pivoting — the system is tiny: a handful of layouts and two
//! resolutions).
//!
//! **Fail-open ladder.** The predictor refuses to calibrate — and the
//! sweep falls back to exact solves for everything — when any rung
//! fails:
//!
//! 1. *coverage*: every resolution needs at least two distinct node
//!    counts (no slope from one point) and there must be at least one
//!    more sample than free coefficients;
//! 2. *conditioning*: the normal equations must be solvably far from
//!    singular;
//! 3. *accuracy*: the worst relative residual **on the calibration set
//!    itself** must stay under a cap — a model that cannot reproduce
//!    the very solves it was fitted to has no business pruning.
//!
//! A calibrated predictor carries its worst observed relative error;
//! pruning thresholds inflate by `(1 + max_rel_err) · (1 + margin)` so a
//! configuration is dropped only when even a worst-case-misjudged
//! prediction cannot beat the incumbent. Everything is deterministic:
//! same samples, same coefficients, same decisions.

use crate::spec::CalibrationNoise;
use std::collections::BTreeMap;

/// One exact solve the predictor learns from.
#[derive(Debug, Clone, PartialEq)]
pub struct CalSample {
    pub layout: String,
    pub resolution: String,
    pub nodes: i64,
    pub makespan: f64,
}

/// Why calibration refused (each maps to a fail-open rung).
#[derive(Debug, Clone, PartialEq)]
pub enum PredictorError {
    /// Coverage rung: not enough samples, or a resolution with fewer
    /// than two distinct node counts.
    NotEnoughSamples(String),
    /// Conditioning rung: the normal equations are (near-)singular.
    Singular,
    /// Accuracy rung: worst calibration residual above the cap.
    PoorFit { max_rel_err: f64, cap: f64 },
}

impl std::fmt::Display for PredictorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictorError::NotEnoughSamples(why) => write!(f, "not enough samples: {why}"),
            PredictorError::Singular => write!(f, "normal equations are singular"),
            PredictorError::PoorFit { max_rel_err, cap } => write!(
                f,
                "calibration residual {max_rel_err:.3} exceeds cap {cap:.3}"
            ),
        }
    }
}

/// A calibrated factorized model.
#[derive(Debug, Clone)]
pub struct Predictor {
    /// Per-layout log-factor α (gauge layout included, at 0).
    alpha: BTreeMap<String, f64>,
    /// Per-resolution (β intercept, γ slope in ln n).
    curves: BTreeMap<String, (f64, f64)>,
    /// Worst relative residual observed on the calibration set.
    pub max_rel_err: f64,
    /// Number of samples calibrated from.
    pub samples: usize,
}

/// Default cap on the worst calibration residual (accuracy rung).
pub const DEFAULT_REL_ERR_CAP: f64 = 0.35;

impl Predictor {
    /// Fit the factorized model; see the module docs for the fail-open
    /// rungs this enforces.
    pub fn calibrate(samples: &[CalSample], rel_err_cap: f64) -> Result<Predictor, PredictorError> {
        // Parameter layout: α per non-gauge layout (first-appearance
        // order), then (β, γ) per resolution (first-appearance order).
        let mut layouts: Vec<String> = Vec::new();
        let mut resolutions: Vec<String> = Vec::new();
        for s in samples {
            if !s.makespan.is_finite() || s.makespan <= 0.0 || s.nodes < 1 {
                return Err(PredictorError::NotEnoughSamples(format!(
                    "sample with non-positive makespan or nodes: {s:?}"
                )));
            }
            if !layouts.contains(&s.layout) {
                layouts.push(s.layout.clone());
            }
            if !resolutions.contains(&s.resolution) {
                resolutions.push(s.resolution.clone());
            }
        }
        if layouts.is_empty() {
            return Err(PredictorError::NotEnoughSamples("no samples".to_string()));
        }
        for r in &resolutions {
            let mut counts: Vec<i64> = samples
                .iter()
                .filter(|s| &s.resolution == r)
                .map(|s| s.nodes)
                .collect();
            counts.sort_unstable();
            counts.dedup();
            if counts.len() < 2 {
                return Err(PredictorError::NotEnoughSamples(format!(
                    "resolution {r} has {} distinct node count(s); need >= 2",
                    counts.len()
                )));
            }
        }
        let n_params = (layouts.len() - 1) + 2 * resolutions.len();
        if samples.len() <= n_params {
            return Err(PredictorError::NotEnoughSamples(format!(
                "{} samples for {} coefficients",
                samples.len(),
                n_params
            )));
        }

        // Normal equations AᵀA x = Aᵀy over rows
        //   y = ln T,  row = [1{layout=l} …, 1{res=r}, 1{res=r}·ln n …].
        let mut ata = vec![vec![0.0f64; n_params]; n_params];
        let mut aty = vec![0.0f64; n_params];
        let row_of = |s: &CalSample| -> Vec<(usize, f64)> {
            let mut row = Vec::with_capacity(3);
            if let Some(li) = layouts.iter().position(|l| l == &s.layout) {
                if li > 0 {
                    row.push((li - 1, 1.0));
                }
            }
            let ri = resolutions
                .iter()
                .position(|r| r == &s.resolution)
                .unwrap_or(0);
            let base = layouts.len() - 1;
            row.push((base + 2 * ri, 1.0));
            row.push((base + 2 * ri + 1, (s.nodes as f64).ln()));
            row
        };
        for s in samples {
            let row = row_of(s);
            let y = s.makespan.ln();
            for &(i, vi) in &row {
                aty[i] += vi * y;
                for &(j, vj) in &row {
                    ata[i][j] += vi * vj;
                }
            }
        }
        let x = solve_dense(&mut ata, &mut aty).ok_or(PredictorError::Singular)?;

        let mut alpha = BTreeMap::new();
        for (i, l) in layouts.iter().enumerate() {
            alpha.insert(l.clone(), if i == 0 { 0.0 } else { x[i - 1] });
        }
        let mut curves = BTreeMap::new();
        let base = layouts.len() - 1;
        for (ri, r) in resolutions.iter().enumerate() {
            curves.insert(r.clone(), (x[base + 2 * ri], x[base + 2 * ri + 1]));
        }
        let model = Predictor {
            alpha,
            curves,
            max_rel_err: 0.0,
            samples: samples.len(),
        };
        let mut max_rel_err = 0.0f64;
        for s in samples {
            let Some(pred) = model.predict(&s.layout, &s.resolution, s.nodes) else {
                return Err(PredictorError::Singular);
            };
            max_rel_err = max_rel_err.max((pred - s.makespan).abs() / s.makespan);
        }
        if !max_rel_err.is_finite() || max_rel_err > rel_err_cap {
            return Err(PredictorError::PoorFit {
                max_rel_err,
                cap: rel_err_cap,
            });
        }
        Ok(Predictor {
            max_rel_err,
            ..model
        })
    }

    /// Predicted makespan, or `None` for a layout/resolution the
    /// calibration never saw (the caller must fail open).
    pub fn predict(&self, layout: &str, resolution: &str, nodes: i64) -> Option<f64> {
        let a = self.alpha.get(layout)?;
        let (b, g) = self.curves.get(resolution)?;
        Some((a + b + g * (nodes as f64).ln()).exp())
    }

    /// The inflation factor pruning thresholds use: worst observed
    /// calibration error compounded with the spec's safety margin.
    pub fn threshold_inflation(&self, safety_margin: f64) -> f64 {
        (1.0 + self.max_rel_err) * (1.0 + safety_margin)
    }
}

/// Solve the square system in place (Gaussian elimination, partial
/// pivoting). `None` when a pivot collapses.
fn solve_dense(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let (pivot_rows, below) = a.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        for (off, row) in below.iter_mut().enumerate() {
            let f = row[col] / pivot_row[col];
            for (k, v) in row.iter_mut().enumerate().skip(col) {
                *v -= f * pivot_row[k];
            }
            b[col + 1 + off] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

/// Apply the chaos hook's deterministic multiplicative noise to a copy
/// of the calibration samples: sample `i` scaled by
/// `exp(amplitude · u_i)`, `u_i ∈ [-1, 1)` from a seeded splitmix
/// stream. Alternating-sign large-amplitude noise is unfittable by the
/// factorized model, tripping the accuracy rung.
pub fn apply_noise(samples: &[CalSample], noise: CalibrationNoise) -> Vec<CalSample> {
    let mut state = noise.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    samples
        .iter()
        .map(|s| CalSample {
            makespan: s.makespan * (noise.amplitude * next()).exp(),
            ..s.clone()
        })
        .collect()
}

/// Mean absolute relative error of `(predicted, exact)` pairs — the
/// bench's `predictor_mae`. `None` when empty.
pub fn mean_abs_rel_err(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.is_empty() {
        return None;
    }
    let sum: f64 = pairs
        .iter()
        .map(|&(pred, exact)| {
            if exact > 0.0 {
                (pred - exact).abs() / exact
            } else {
                0.0
            }
        })
        .sum();
    Some(sum / pairs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesize samples from a known factorized ground truth.
    fn synth(
        layouts: &[(&str, f64)],
        curves: &[(&str, f64, f64)],
        budgets: &[i64],
    ) -> Vec<CalSample> {
        let mut out = Vec::new();
        for &(res, b, g) in curves {
            for &n in budgets {
                for &(l, a) in layouts {
                    out.push(CalSample {
                        layout: l.to_string(),
                        resolution: res.to_string(),
                        nodes: n,
                        makespan: (a + b + g * (n as f64).ln()).exp(),
                    });
                }
            }
        }
        out
    }

    #[test]
    fn recovers_exact_factorized_truth() {
        let samples = synth(
            &[("hybrid", 0.0), ("seq-ocean", 0.2), ("sequential", 0.5)],
            &[("1deg", 6.0, -0.7), ("eighth", 9.0, -0.55)],
            &[64, 128, 256],
        );
        let p = Predictor::calibrate(&samples, DEFAULT_REL_ERR_CAP).unwrap();
        assert!(p.max_rel_err < 1e-9, "residual {}", p.max_rel_err);
        let pred = p.predict("sequential", "eighth", 512).unwrap();
        let truth = (0.5 + 9.0 - 0.55 * (512f64).ln()).exp();
        assert!((pred - truth).abs() / truth < 1e-9);
        assert!(p.predict("unknown-layout", "1deg", 64).is_none());
    }

    #[test]
    fn coverage_rung_rejects_single_budget() {
        let samples = synth(
            &[("hybrid", 0.0), ("sequential", 0.5)],
            &[("1deg", 6.0, -0.7)],
            &[64],
        );
        assert!(matches!(
            Predictor::calibrate(&samples, DEFAULT_REL_ERR_CAP),
            Err(PredictorError::NotEnoughSamples(_))
        ));
    }

    #[test]
    fn accuracy_rung_rejects_seeded_noise() {
        let clean = synth(
            &[("hybrid", 0.0), ("sequential", 0.5)],
            &[("1deg", 6.0, -0.7)],
            &[64, 128, 256, 512],
        );
        assert!(Predictor::calibrate(&clean, DEFAULT_REL_ERR_CAP).is_ok());
        let noisy = apply_noise(
            &clean,
            CalibrationNoise {
                seed: 7,
                amplitude: 2.0,
            },
        );
        assert!(matches!(
            Predictor::calibrate(&noisy, DEFAULT_REL_ERR_CAP),
            Err(PredictorError::PoorFit { .. })
        ));
        // Determinism: the same seed distorts identically.
        let again = apply_noise(
            &clean,
            CalibrationNoise {
                seed: 7,
                amplitude: 2.0,
            },
        );
        assert_eq!(noisy, again);
    }

    #[test]
    fn threshold_inflation_compounds() {
        let samples = synth(
            &[("hybrid", 0.0), ("sequential", 0.4)],
            &[("1deg", 6.0, -0.7)],
            &[64, 128, 256],
        );
        let p = Predictor::calibrate(&samples, DEFAULT_REL_ERR_CAP).unwrap();
        let infl = p.threshold_inflation(0.25);
        assert!((1.25..1.25 * (1.0 + DEFAULT_REL_ERR_CAP) + 1e-9).contains(&infl));
    }
}
