//! # hslb-sweep — batch/portfolio layout sweeps
//!
//! The paper tunes one CESM layout at a time; a production tuning
//! service gets asked "best layout across every layout topology ×
//! resolution × machine size". This crate turns that question into a
//! *sweep*: a [`SweepSpec`] describing the configuration grid, a
//! [`plan`] that groups configurations by shared curve data (fits do
//! not depend on the node budget, so one fit fans out to every machine
//! size), a factorized [`predictor`] calibrated from exact solves
//! already completed inside the same sweep, and a ranked [`Portfolio`]
//! with a makespan-vs-nodes Pareto frontier.
//!
//! The crate is deliberately *pure*: it plans, predicts, and collects —
//! it never runs a solve itself. Execution lives in
//! `hslb-service::sweep_driver`, which pushes the planned work through
//! the existing worker pool, FrontDesk coalescer, and fit cache. That
//! split keeps the dependency graph acyclic (service → sweep) while the
//! determinism tests in this crate pull the service in as a
//! dev-dependency to compare portfolio entries against standalone
//! one-shot pipeline runs bit for bit.
//!
//! Determinism bar (inherited from the service): every non-pruned
//! portfolio entry is bit-identical to a one-shot pipeline run of that
//! configuration, and every pruning decision is deterministic and
//! logged in the portfolio's decision log.

pub mod plan;
pub mod portfolio;
pub mod predictor;
pub mod spec;

pub use plan::{FitGroup, SweepPlan};
pub use portfolio::{Portfolio, PortfolioEntry, PruneDecision, SweepStats};
pub use predictor::{Predictor, PredictorError};
pub use spec::{SweepConfig, SweepSpec};
