//! Ranked sweep results: portfolio entries, the makespan-vs-nodes
//! Pareto frontier, the pruning decision log, and the sweep's
//! accounting block.
//!
//! Ranking is deterministic: entries are ordered by resolution (1° then
//! 1/8°), then ascending makespan (a pruned entry ranks by its predicted
//! makespan), then key. The frontier is extracted per resolution over
//! the *exact-solved* entries only — predicted makespans never certify
//! Pareto membership — and the extraction is order-independent (a pure
//! dominance filter; property-tested in `tests/determinism.rs`).

use hslb_telemetry::json::Value;

/// One configuration's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioEntry {
    /// [`crate::SweepConfig::key`].
    pub key: String,
    pub layout: String,
    pub resolution: String,
    pub objective: String,
    pub target_nodes: i64,
    pub held: bool,
    /// Pruned by the predictor (no exact solve; `makespan` is the
    /// prediction and the audit fields are absent).
    pub pruned: bool,
    /// Exact coupled makespan (solved) or predicted makespan (pruned).
    pub makespan: f64,
    /// The predictor's estimate, when it ranked this configuration.
    pub predicted: Option<f64>,
    /// Nodes the winning allocation actually occupies (solved only).
    pub nodes_used: Option<i64>,
    /// 1 − busy-node-time / (target_nodes · makespan) (solved only).
    pub idle_fraction: Option<f64>,
    /// Bit-exact payload fingerprint (solved only) — comparable against
    /// a standalone one-shot run's.
    pub fingerprint: Option<String>,
    /// Degradation-ladder rung (solved only; empty when pruned).
    pub rung: String,
    /// Audit stamp: certified global optimum + instance-audit verdict.
    pub certified: bool,
    pub audit_passed: Option<bool>,
}

impl PortfolioEntry {
    pub fn to_value(&self) -> Value {
        fn opt_num(x: Option<f64>) -> Value {
            x.map_or(Value::Null, Value::Num)
        }
        Value::Obj(vec![
            ("key".to_string(), Value::Str(self.key.clone())),
            ("layout".to_string(), Value::Str(self.layout.clone())),
            (
                "resolution".to_string(),
                Value::Str(self.resolution.clone()),
            ),
            ("objective".to_string(), Value::Str(self.objective.clone())),
            (
                "target_nodes".to_string(),
                Value::Num(self.target_nodes as f64),
            ),
            ("held".to_string(), Value::Bool(self.held)),
            ("pruned".to_string(), Value::Bool(self.pruned)),
            ("makespan".to_string(), Value::Num(self.makespan)),
            ("predicted".to_string(), opt_num(self.predicted)),
            (
                "nodes_used".to_string(),
                opt_num(self.nodes_used.map(|n| n as f64)),
            ),
            ("idle_fraction".to_string(), opt_num(self.idle_fraction)),
            (
                "fingerprint".to_string(),
                self.fingerprint
                    .as_ref()
                    .map_or(Value::Null, |f| Value::Str(f.clone())),
            ),
            ("rung".to_string(), Value::Str(self.rung.clone())),
            ("certified".to_string(), Value::Bool(self.certified)),
            (
                "audit_passed".to_string(),
                self.audit_passed.map_or(Value::Null, Value::Bool),
            ),
        ])
    }

    pub fn from_value(v: &Value) -> Result<PortfolioEntry, String> {
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("entry missing string {k}"))
        };
        Ok(PortfolioEntry {
            key: s("key")?,
            layout: s("layout")?,
            resolution: s("resolution")?,
            objective: s("objective")?,
            target_nodes: v
                .get("target_nodes")
                .and_then(Value::as_f64)
                .ok_or("entry missing numeric target_nodes")? as i64,
            held: v.get("held").and_then(Value::as_bool).unwrap_or(false),
            pruned: v.get("pruned").and_then(Value::as_bool).unwrap_or(false),
            makespan: v
                .get("makespan")
                .and_then(Value::as_f64)
                .ok_or("entry missing numeric makespan")?,
            predicted: v.get("predicted").and_then(Value::as_f64),
            nodes_used: v
                .get("nodes_used")
                .and_then(Value::as_f64)
                .map(|n| n as i64),
            idle_fraction: v.get("idle_fraction").and_then(Value::as_f64),
            fingerprint: v
                .get("fingerprint")
                .and_then(Value::as_str)
                .map(str::to_string),
            rung: v
                .get("rung")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            certified: v.get("certified").and_then(Value::as_bool).unwrap_or(false),
            audit_passed: v.get("audit_passed").and_then(Value::as_bool),
        })
    }
}

/// One pruning decision — every candidate gets exactly one, kept or
/// pruned, so the log reconstructs the whole ranking pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneDecision {
    pub key: String,
    /// The budget group the comparison ran in.
    pub group: String,
    /// Predicted makespan of the candidate.
    pub predicted: f64,
    /// Best exact makespan in the group at decision time.
    pub incumbent: f64,
    /// Threshold inflation `(1 + max_rel_err) · (1 + margin)` applied.
    pub inflation: f64,
    pub pruned: bool,
    /// Human-readable rationale (also carries fail-open reasons).
    pub reason: String,
}

impl PruneDecision {
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("key".to_string(), Value::Str(self.key.clone())),
            ("group".to_string(), Value::Str(self.group.clone())),
            ("predicted".to_string(), Value::Num(self.predicted)),
            ("incumbent".to_string(), Value::Num(self.incumbent)),
            ("inflation".to_string(), Value::Num(self.inflation)),
            ("pruned".to_string(), Value::Bool(self.pruned)),
            ("reason".to_string(), Value::Str(self.reason.clone())),
        ])
    }

    pub fn from_value(v: &Value) -> Result<PruneDecision, String> {
        let num = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("decision missing numeric {k}"))
        };
        Ok(PruneDecision {
            key: v
                .get("key")
                .and_then(Value::as_str)
                .ok_or("decision missing string key")?
                .to_string(),
            group: v
                .get("group")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            predicted: num("predicted")?,
            incumbent: num("incumbent")?,
            inflation: num("inflation")?,
            pruned: v.get("pruned").and_then(Value::as_bool).unwrap_or(false),
            reason: v
                .get("reason")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
        })
    }
}

/// The sweep's accounting block (the bench `sweep` block embeds this).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepStats {
    pub planned: usize,
    pub solved: usize,
    pub pruned: usize,
    /// Distinct gather+fit computations the plan scheduled.
    pub fit_groups: usize,
    /// Gather+fit computations dedup avoided (`planned - fit_groups`).
    pub dedup_saved: usize,
    /// Fit-level cache accounting over the sweep (deltas).
    pub fit_hits: u64,
    pub fit_misses: u64,
    /// Gather-level (simulator memo) accounting over the sweep (deltas).
    pub gather_hits: u64,
    pub gather_misses: u64,
    /// Mean absolute relative predictor error vs the exact solves it
    /// ranked (None when the predictor never calibrated).
    pub predictor_mae: Option<f64>,
    /// Fail-open reason when the predictor refused to calibrate.
    pub predictor_failed: Option<String>,
    /// Sweep wall-clock.
    pub wall_ms: f64,
    /// Σ over planned configs of the estimated standalone one-shot cost
    /// (each config re-paying its group's gather+fit).
    pub sum_one_shot_ms: f64,
}

/// `hits / (hits + misses)`, 0 when idle.
fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

impl SweepStats {
    pub fn fit_hit_rate(&self) -> f64 {
        rate(self.fit_hits, self.fit_misses)
    }

    pub fn gather_hit_rate(&self) -> f64 {
        rate(self.gather_hits, self.gather_misses)
    }

    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("planned".to_string(), Value::Num(self.planned as f64)),
            ("solved".to_string(), Value::Num(self.solved as f64)),
            ("pruned".to_string(), Value::Num(self.pruned as f64)),
            ("fit_groups".to_string(), Value::Num(self.fit_groups as f64)),
            (
                "dedup_saved".to_string(),
                Value::Num(self.dedup_saved as f64),
            ),
            (
                "fit_cache".to_string(),
                Value::Obj(vec![
                    ("hits".to_string(), Value::Num(self.fit_hits as f64)),
                    ("misses".to_string(), Value::Num(self.fit_misses as f64)),
                    ("hit_rate".to_string(), Value::Num(self.fit_hit_rate())),
                ]),
            ),
            (
                "gather_cache".to_string(),
                Value::Obj(vec![
                    ("hits".to_string(), Value::Num(self.gather_hits as f64)),
                    ("misses".to_string(), Value::Num(self.gather_misses as f64)),
                    ("hit_rate".to_string(), Value::Num(self.gather_hit_rate())),
                ]),
            ),
            (
                "predictor_mae".to_string(),
                self.predictor_mae.map_or(Value::Null, Value::Num),
            ),
            (
                "predictor_failed".to_string(),
                self.predictor_failed
                    .as_ref()
                    .map_or(Value::Null, |e| Value::Str(e.clone())),
            ),
            ("wall_ms".to_string(), Value::Num(self.wall_ms)),
            (
                "sum_one_shot_ms".to_string(),
                Value::Num(self.sum_one_shot_ms),
            ),
        ])
    }

    pub fn from_value(v: &Value) -> Result<SweepStats, String> {
        let num = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("stats missing numeric {k}"))
        };
        let cache = |k: &str| -> Result<(u64, u64), String> {
            let c = v.get(k).ok_or_else(|| format!("stats missing {k}"))?;
            let f = |kk: &str| {
                c.get(kk)
                    .and_then(Value::as_f64)
                    .map(|x| x as u64)
                    .ok_or_else(|| format!("stats {k} missing numeric {kk}"))
            };
            Ok((f("hits")?, f("misses")?))
        };
        let (fit_hits, fit_misses) = cache("fit_cache")?;
        let (gather_hits, gather_misses) = cache("gather_cache")?;
        Ok(SweepStats {
            planned: num("planned")? as usize,
            solved: num("solved")? as usize,
            pruned: num("pruned")? as usize,
            fit_groups: num("fit_groups")? as usize,
            dedup_saved: num("dedup_saved")? as usize,
            fit_hits,
            fit_misses,
            gather_hits,
            gather_misses,
            predictor_mae: v.get("predictor_mae").and_then(Value::as_f64),
            predictor_failed: v
                .get("predictor_failed")
                .and_then(Value::as_str)
                .map(str::to_string),
            wall_ms: num("wall_ms")?,
            sum_one_shot_ms: num("sum_one_shot_ms")?,
        })
    }
}

/// The finished sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Portfolio {
    /// Ranked entries (see module docs for the order).
    pub entries: Vec<PortfolioEntry>,
    /// Per-resolution Pareto-optimal keys: `(resolution, sorted keys)`.
    pub frontier: Vec<(String, Vec<String>)>,
    /// One decision per pruning candidate (kept or pruned).
    pub decisions: Vec<PruneDecision>,
    pub stats: SweepStats,
}

impl Portfolio {
    /// Assemble a portfolio from unranked entries: sort, extract the
    /// frontier, attach the logs.
    pub fn assemble(
        mut entries: Vec<PortfolioEntry>,
        decisions: Vec<PruneDecision>,
        stats: SweepStats,
    ) -> Portfolio {
        entries.sort_by(|a, b| {
            resolution_order(&a.resolution)
                .cmp(&resolution_order(&b.resolution))
                .then(a.makespan.total_cmp(&b.makespan))
                .then(a.key.cmp(&b.key))
        });
        let mut resolutions: Vec<String> = Vec::new();
        for e in &entries {
            if !resolutions.contains(&e.resolution) {
                resolutions.push(e.resolution.clone());
            }
        }
        let frontier = resolutions
            .into_iter()
            .map(|res| {
                let points: Vec<(String, f64, i64)> = entries
                    .iter()
                    .filter(|e| e.resolution == res && !e.pruned)
                    .filter_map(|e| e.nodes_used.map(|n| (e.key.clone(), e.makespan, n)))
                    .collect();
                (res, pareto_frontier(&points))
            })
            .collect();
        Portfolio {
            entries,
            frontier,
            decisions,
            stats,
        }
    }

    /// The best exact-solved entry per resolution, if any.
    pub fn winner(&self, resolution: &str) -> Option<&PortfolioEntry> {
        self.entries
            .iter()
            .filter(|e| e.resolution == resolution && !e.pruned)
            .min_by(|a, b| a.makespan.total_cmp(&b.makespan).then(a.key.cmp(&b.key)))
    }

    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            (
                "entries".to_string(),
                Value::Arr(self.entries.iter().map(PortfolioEntry::to_value).collect()),
            ),
            (
                "frontier".to_string(),
                Value::Obj(
                    self.frontier
                        .iter()
                        .map(|(res, keys)| {
                            (
                                res.clone(),
                                Value::Arr(keys.iter().map(|k| Value::Str(k.clone())).collect()),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "decisions".to_string(),
                Value::Arr(self.decisions.iter().map(PruneDecision::to_value).collect()),
            ),
            ("stats".to_string(), self.stats.to_value()),
        ])
    }

    pub fn from_value(v: &Value) -> Result<Portfolio, String> {
        let entries = v
            .get("entries")
            .and_then(Value::as_arr)
            .ok_or("portfolio missing entries array")?
            .iter()
            .map(PortfolioEntry::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let frontier = match v.get("frontier") {
            Some(Value::Obj(kv)) => kv
                .iter()
                .map(|(res, keys)| {
                    let keys = keys
                        .as_arr()
                        .ok_or("frontier values must be arrays")?
                        .iter()
                        .map(|k| {
                            k.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "frontier keys must be strings".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok::<_, String>((res.clone(), keys))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("portfolio missing frontier object".to_string()),
        };
        let decisions = v
            .get("decisions")
            .and_then(Value::as_arr)
            .ok_or("portfolio missing decisions array")?
            .iter()
            .map(PruneDecision::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let stats = SweepStats::from_value(v.get("stats").ok_or("portfolio missing stats")?)?;
        Ok(Portfolio {
            entries,
            frontier,
            decisions,
            stats,
        })
    }
}

fn resolution_order(token: &str) -> u8 {
    match token {
        "1deg" => 0,
        "eighth" => 1,
        _ => 2,
    }
}

/// Pure makespan-vs-nodes dominance filter: keep the keys of points no
/// other point dominates (lower-or-equal makespan AND lower-or-equal
/// nodes, strictly lower in at least one). Returns sorted keys, so the
/// result is independent of input order.
pub fn pareto_frontier(points: &[(String, f64, i64)]) -> Vec<String> {
    let mut keep: Vec<String> = points
        .iter()
        .filter(|(_, m, n)| {
            !points
                .iter()
                .any(|(_, m2, n2)| *m2 <= *m && *n2 <= *n && (*m2 < *m || *n2 < *n))
        })
        .map(|(k, _, _)| k.clone())
        .collect();
    keep.sort();
    keep.dedup();
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(
        key: &str,
        res: &str,
        makespan: f64,
        nodes: Option<i64>,
        pruned: bool,
    ) -> PortfolioEntry {
        PortfolioEntry {
            key: key.to_string(),
            layout: "hybrid".to_string(),
            resolution: res.to_string(),
            objective: "min-max".to_string(),
            target_nodes: nodes.unwrap_or(96),
            held: false,
            pruned,
            makespan,
            predicted: pruned.then_some(makespan),
            nodes_used: nodes,
            idle_fraction: nodes.map(|_| 0.25),
            fingerprint: (!pruned).then(|| format!("fp-{key}")),
            rung: if pruned {
                String::new()
            } else {
                "minlp".to_string()
            },
            certified: !pruned,
            audit_passed: (!pruned).then_some(true),
        }
    }

    #[test]
    fn assemble_ranks_and_extracts_frontier() {
        let entries = vec![
            entry("b", "1deg", 20.0, Some(64), false),
            entry("a", "1deg", 10.0, Some(128), false),
            entry("c", "1deg", 30.0, Some(32), false),
            entry("d", "1deg", 25.0, Some(128), true), // pruned: no frontier
            entry("e", "eighth", 400.0, Some(8192), false),
        ];
        let p = Portfolio::assemble(entries, Vec::new(), SweepStats::default());
        let keys: Vec<&str> = p.entries.iter().map(|e| e.key.as_str()).collect();
        assert_eq!(keys, vec!["a", "b", "d", "c", "e"]);
        // a (10, 128), b (20, 64), c (30, 32) are mutually non-dominated;
        // d is pruned and excluded.
        assert_eq!(
            p.frontier,
            vec![
                (
                    "1deg".to_string(),
                    vec!["a".to_string(), "b".to_string(), "c".to_string()]
                ),
                ("eighth".to_string(), vec!["e".to_string()]),
            ]
        );
        assert_eq!(p.winner("1deg").unwrap().key, "a");
    }

    #[test]
    fn dominated_points_drop() {
        let points = vec![
            ("slow-big".to_string(), 30.0, 128), // dominated by fast-small
            ("fast-small".to_string(), 10.0, 64),
            ("tie".to_string(), 10.0, 64), // equal: kept (no strict win)
        ];
        assert_eq!(
            pareto_frontier(&points),
            vec!["fast-small".to_string(), "tie".to_string()]
        );
    }

    #[test]
    fn portfolio_json_round_trips() {
        let entries = vec![
            entry("a", "1deg", 10.5, Some(128), false),
            entry("d", "1deg", 25.25, None, true),
        ];
        let decisions = vec![PruneDecision {
            key: "d".to_string(),
            group: "1deg|n128".to_string(),
            predicted: 25.25,
            incumbent: 10.5,
            inflation: 1.3,
            pruned: true,
            reason: "predicted/1.300 = 19.42 > incumbent 10.5".to_string(),
        }];
        let stats = SweepStats {
            planned: 2,
            solved: 1,
            pruned: 1,
            fit_groups: 1,
            dedup_saved: 1,
            fit_hits: 5,
            fit_misses: 1,
            gather_hits: 4,
            gather_misses: 2,
            predictor_mae: Some(0.07),
            predictor_failed: None,
            wall_ms: 123.5,
            sum_one_shot_ms: 999.25,
        };
        let p = Portfolio::assemble(entries, decisions, stats);
        let text = p.to_value().to_pretty();
        let back = Portfolio::from_value(&hslb_telemetry::json::parse(&text).unwrap()).unwrap();
        assert_eq!(p, back);
        assert!((back.stats.fit_hit_rate() - 5.0 / 6.0).abs() < 1e-12);
    }
}
