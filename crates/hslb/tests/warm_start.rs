//! Warm-start bit-identity at the pipeline level (DESIGN.md §14).
//!
//! The warm dual-simplex path may take a different pivot route than the
//! cold two-phase solve, so LP vertices can differ in their last bits —
//! but the *pipeline deliverable* must not: the integer allocation, the
//! predicted component times, and the predicted/actual totals have to be
//! bit-for-bit identical with warm-start on or off, at any thread count.
//! That is the acceptance bar for the warm-start work: it buys time,
//! never a different answer.

use hslb::{Hslb, HslbOptions};
use hslb_cesm::Simulator;

fn run_report(warm_start: bool, threads: usize, seed: u64) -> hslb::ExperimentReport {
    let sim = Simulator::one_degree(seed);
    let mut opts = HslbOptions::new(128);
    opts.solver.warm_start = warm_start;
    opts.solver.threads = threads;
    // Pin the cutover off so threads = 4 genuinely exercises the
    // parallel driver (and its warm-state handoff across workers).
    opts.solver.serial_cutover = 0;
    Hslb::new(&sim, opts).run(None).expect("pipeline run")
}

fn assert_bit_identical(a: &hslb::ExperimentReport, b: &hslb::ExperimentReport, what: &str) {
    assert_eq!(a.hslb.allocation, b.hslb.allocation, "{what}: allocation");
    let (pa, pb) = (
        a.hslb.predicted_total.expect("minlp objective"),
        b.hslb.predicted_total.expect("minlp objective"),
    );
    assert_eq!(
        pa.to_bits(),
        pb.to_bits(),
        "{what}: predicted totals differ ({pa} vs {pb})"
    );
    assert_eq!(
        a.hslb.actual_total.to_bits(),
        b.hslb.actual_total.to_bits(),
        "{what}: actual totals differ"
    );
    let (ta, tb) = (
        a.hslb.predicted.expect("minlp rung"),
        b.hslb.predicted.expect("minlp rung"),
    );
    for (va, vb, c) in [
        (ta.lnd, tb.lnd, "lnd"),
        (ta.ice, tb.ice, "ice"),
        (ta.atm, tb.atm, "atm"),
        (ta.ocn, tb.ocn, "ocn"),
    ] {
        assert_eq!(va.to_bits(), vb.to_bits(), "{what}: predicted {c} differs");
    }
}

#[test]
fn warm_and_cold_incumbents_are_bit_identical_serial() {
    let warm = run_report(true, 1, 20);
    let cold = run_report(false, 1, 20);
    assert_bit_identical(&warm, &cold, "threads=1");
    // The warm run must actually have taken the warm path, or this test
    // proves nothing.
    let stats = warm.solver_stats.as_ref().expect("MINLP rung solved");
    assert!(
        stats.warm_resolves > 0,
        "warm-start on but zero warm resolves ({} lp solves)",
        stats.lp_solves
    );
    let cold_stats = cold.solver_stats.as_ref().expect("MINLP rung solved");
    assert_eq!(
        cold_stats.warm_resolves, 0,
        "warm-start off must never touch the warm path"
    );
}

#[test]
fn warm_and_cold_incumbents_are_bit_identical_parallel() {
    let warm = run_report(true, 4, 20);
    let cold = run_report(false, 4, 20);
    assert_bit_identical(&warm, &cold, "threads=4");
    let stats = warm.solver_stats.as_ref().expect("MINLP rung solved");
    assert!(stats.warm_resolves > 0, "parallel warm path not exercised");
}

#[test]
fn warm_serial_matches_warm_parallel() {
    // Cross-thread-count identity with warm-start on: the parallel
    // driver's warm handoff (stale coverage horizons and all) must land
    // on the same deliverable as the serial one.
    let serial = run_report(true, 1, 20);
    let parallel = run_report(true, 4, 20);
    assert_bit_identical(&serial, &parallel, "warm serial vs parallel");
}

#[test]
fn warm_start_is_bit_identical_across_scenarios() {
    // A second machine seed, both drivers, to guard against the first
    // scenario happening to never branch deep enough to hand a tableau
    // down an edge. Seed 42 has a plateau of alternate optima (several
    // integer allocations share the bit-identical min-max objective), so
    // the argmin is not comparable here — even two cold parallel runs
    // disagree on it. What must hold, warm or cold, at any thread count,
    // is the optimum itself: the predicted total, bit for bit. (Same
    // stance as the serial-cutover telemetry test: "the argmin may
    // differ among degenerate optima, the optimum may not".)
    let baseline = run_report(false, 1, 42);
    let base_pred = baseline.hslb.predicted_total.expect("minlp objective");
    for threads in [1usize, 4] {
        let warm = run_report(true, threads, 42);
        let pred = warm.hslb.predicted_total.expect("minlp objective");
        assert_eq!(
            pred.to_bits(),
            base_pred.to_bits(),
            "seed=42 threads={threads}: warm optimum {pred} vs cold {base_pred}"
        );
        let stats = warm.solver_stats.as_ref().expect("MINLP rung solved");
        assert!(
            stats.warm_resolves > 0,
            "seed=42 threads={threads}: warm path not exercised"
        );
    }
}

#[test]
fn warm_start_saves_simplex_work() {
    // The point of the tentpole: warm runs must not do *more* simplex
    // iterations than cold ones (they re-use the parent basis instead of
    // re-deriving it two-phase from scratch).
    let warm = run_report(true, 1, 20);
    let cold = run_report(false, 1, 20);
    let ws = warm.solver_stats.as_ref().expect("stats");
    let cs = cold.solver_stats.as_ref().expect("stats");
    assert!(
        ws.simplex_iters <= cs.simplex_iters,
        "warm {} iters > cold {} iters",
        ws.simplex_iters,
        cs.simplex_iters
    );
}
