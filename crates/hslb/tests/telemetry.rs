//! Pipeline-level telemetry guarantees: the span tree mirrors the
//! gather → fit → solve → execute phases, instrumentation never changes
//! the allocation, and counter totals survive the parallel solver.

use hslb::{Hslb, HslbOptions};
use hslb_cesm::Simulator;
use hslb_telemetry::{span_tree, Telemetry};

fn run_with(telemetry: Telemetry, threads: usize) -> hslb::ExperimentReport {
    run_with_cutover(telemetry, threads, 0)
}

fn run_with_cutover(
    telemetry: Telemetry,
    threads: usize,
    serial_cutover: usize,
) -> hslb::ExperimentReport {
    let sim = Simulator::one_degree(42).with_telemetry(telemetry.clone());
    let mut opts = HslbOptions::new(128);
    opts.solver.threads = threads;
    // Tests that assert per-worker behavior pin the cutover off (0);
    // the cutover test forces it on with a huge threshold.
    opts.solver.serial_cutover = serial_cutover;
    opts.telemetry = telemetry;
    Hslb::new(&sim, opts).run(None).expect("pipeline")
}

#[test]
fn pipeline_run_reconstructs_phase_span_tree() {
    let tel = Telemetry::new();
    run_with(tel.clone(), 1);
    let tree = span_tree(&tel.events());
    let pipeline = tree
        .iter()
        .find(|n| n.name == "pipeline")
        .expect("root pipeline span");
    let phases: Vec<&str> = pipeline.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(phases, ["gather", "fit", "solve", "execute"]);
    // Every phase closed, and the parent outlasts each child.
    let total = pipeline.dur_ms.expect("pipeline span closed");
    for child in &pipeline.children {
        assert!(child.dur_ms.expect("phase span closed") <= total);
    }
}

#[test]
fn telemetry_never_changes_the_allocation() {
    let silent = run_with(Telemetry::disabled(), 1);
    let observed = run_with(Telemetry::new(), 1);
    assert_eq!(silent.hslb.allocation, observed.hslb.allocation);
    assert_eq!(silent.hslb.actual_total, observed.hslb.actual_total);
    assert_eq!(
        silent.hslb.predicted_total, observed.hslb.predicted_total,
        "instrumentation must be strictly passive"
    );
}

#[test]
fn counters_match_solver_stats_under_parallel_solve() {
    let tel = Telemetry::new();
    let report = run_with(tel.clone(), 4);
    let stats = report.solver_stats.expect("MINLP rung solved");
    assert_eq!(tel.counter("minlp.nodes"), stats.nodes as u64);
    assert_eq!(tel.counter("minlp.lp_solves"), stats.lp_solves as u64);
    assert_eq!(
        tel.counter("minlp.simplex_iters"),
        stats.simplex_iters as u64
    );
    assert_eq!(tel.counter("minlp.cuts"), stats.cuts as u64);
    assert_eq!(tel.counter("minlp.incumbents"), stats.incumbents as u64);
    assert_eq!(
        tel.counter("minlp.pruned"),
        (stats.pruned_by_bound + stats.pruned_infeasible) as u64
    );
    assert_eq!(
        tel.counter("minlp.warm_resolves"),
        stats.warm_resolves as u64
    );
    assert_eq!(
        tel.counter("minlp.warm_fallbacks"),
        stats.warm_fallbacks as u64
    );
    assert_eq!(tel.counter("minlp.cuts_retired"), stats.cuts_retired as u64);
    assert!(
        stats.warm_resolves > 0,
        "a multi-node solve must exercise the warm dual-simplex path"
    );
    // Per-worker utilization points were emitted by every worker.
    let workers = tel
        .events()
        .iter()
        .filter(|e| e.name == "minlp.worker")
        .count();
    assert_eq!(workers, 4);
}

#[test]
fn serial_cutover_matches_the_parallel_incumbent() {
    // Force the cutover with a huge threshold: the parallel driver must
    // delegate the whole solve to the serial path — no worker points —
    // while publishing its probe work to the sink.
    let tel = Telemetry::new();
    let cut = run_with_cutover(tel.clone(), 4, usize::MAX);
    let workers = tel
        .events()
        .iter()
        .filter(|e| e.name == "minlp.worker")
        .count();
    assert_eq!(workers, 0, "cutover must not spin up workers");
    assert!(
        tel.events()
            .iter()
            .any(|e| e.name == "minlp.serial_cutover"),
        "cutover decision must be visible in telemetry"
    );
    // The cutover delegates to the serial driver, so its incumbent is
    // bit-identical to the threads = 1 solve…
    let serial = run_with_cutover(Telemetry::new(), 1, 0);
    assert_eq!(cut.hslb.allocation, serial.hslb.allocation);
    assert_eq!(cut.hslb.predicted_total, serial.hslb.predicted_total);
    // …and agrees with the full parallel solve on the objective (the
    // argmin may differ among degenerate optima, the optimum may not).
    let full = run_with_cutover(Telemetry::new(), 4, 0);
    let (a, b) = (
        cut.hslb.predicted_total.expect("minlp objective"),
        full.hslb.predicted_total.expect("minlp objective"),
    );
    assert!(
        (a - b).abs() <= 1e-9 * a.abs().max(1.0),
        "cutover optimum {a} vs parallel optimum {b}"
    );
    // The counters-equal-stats invariant holds on the cutover path too
    // (serial solve counters plus the probe's root-relaxation work).
    let stats = cut.solver_stats.expect("MINLP rung solved");
    assert_eq!(tel.counter("minlp.nodes"), stats.nodes as u64);
    assert_eq!(tel.counter("minlp.lp_solves"), stats.lp_solves as u64);
    assert_eq!(
        tel.counter("minlp.simplex_iters"),
        stats.simplex_iters as u64
    );
    assert_eq!(tel.counter("minlp.cuts"), stats.cuts as u64);
}

#[test]
fn gather_counters_match_the_report() {
    use hslb_cesm::FaultSpec;
    let tel = Telemetry::new();
    let sim = Simulator::one_degree(77).with_faults(FaultSpec::flaky(77, 0.2));
    let mut opts = HslbOptions::new(128);
    opts.telemetry = tel.clone();
    let (_, report) = Hslb::new(&sim, opts).gather_resilient();
    assert_eq!(tel.counter("gather.attempts"), report.attempts as u64);
    assert_eq!(tel.counter("gather.succeeded"), report.succeeded as u64);
    assert_eq!(tel.counter("gather.failed_runs"), report.failed_runs as u64);
    assert_eq!(tel.counter("gather.hung_runs"), report.hung_runs as u64);
    // Each retry recorded its backoff wait; the histogram sum is the
    // report's total.
    let snap = tel.snapshot();
    if report.backoff_seconds > 0.0 {
        let h = &snap.hists["gather.backoff_s"];
        assert!((h.sum - report.backoff_seconds).abs() < 1e-9);
    }
    // Per-run points carry the component label.
    assert!(snap
        .events
        .iter()
        .filter(|e| e.name == "gather.run")
        .all(|e| e.labels.iter().any(|(k, _)| k == "component")));
}

#[test]
fn snapshot_of_a_real_run_round_trips_through_json() {
    let tel = Telemetry::new();
    run_with(tel.clone(), 2);
    let snap = tel.snapshot();
    let back = hslb_telemetry::Snapshot::from_json(&snap.to_json()).expect("round trip");
    assert_eq!(back.counters, snap.counters);
    assert_eq!(back.events.len(), snap.events.len());
    let tree = span_tree(&back.events);
    assert!(tree.iter().any(|n| n.name == "pipeline"));
}
