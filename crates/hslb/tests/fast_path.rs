//! The fit fast-path invariant at pipeline level: fitted curves are
//! bit-identical with the multistart early-stop on or off, serial or
//! parallel, while the fast path measurably skips redundant starts.

use hslb::{fit_all, Hslb, HslbOptions};
use hslb_cesm::{Component, Simulator};
use hslb_nlsq::{EarlyStopPolicy, ScalingFitOptions};

fn assert_bit_identical(a: &hslb::FitSet, b: &hslb::FitSet, label: &str) {
    for &c in &Component::OPTIMIZED {
        let (x, y) = (a.optimized_curve(c), b.optimized_curve(c));
        assert_eq!(x.a.to_bits(), y.a.to_bits(), "{label}: {c} a");
        assert_eq!(x.b.to_bits(), y.b.to_bits(), "{label}: {c} b");
        assert_eq!(x.c.to_bits(), y.c.to_bits(), "{label}: {c} c");
        assert_eq!(x.d.to_bits(), y.d.to_bits(), "{label}: {c} d");
    }
}

#[test]
fn fitted_curves_are_bit_identical_with_fast_path_on_or_off() {
    for (sim, target) in [
        (Simulator::one_degree(42), 128),
        (Simulator::eighth_degree(42), 8192),
    ] {
        let h = Hslb::new(&sim, HslbOptions::new(target));
        let data = h.gather();
        let full = fit_all(
            &data,
            &ScalingFitOptions {
                early_stop: None,
                ..ScalingFitOptions::default()
            },
        )
        .expect("full fit");
        assert!(
            full.iter().all(|(_, f)| !f.early_stopped),
            "early-stop must never fire when disabled"
        );
        for threads in [1usize, 4] {
            let fast = fit_all(
                &data,
                &ScalingFitOptions {
                    early_stop: Some(EarlyStopPolicy::default()),
                    threads,
                    ..ScalingFitOptions::default()
                },
            )
            .expect("fast fit");
            assert_bit_identical(&full, &fast, &format!("threads={threads}"));
            for (c, f) in fast.iter() {
                assert!(
                    f.starts_run <= ScalingFitOptions::default().starts,
                    "{c}: ran {} of {} starts",
                    f.starts_run,
                    ScalingFitOptions::default().starts
                );
                assert!(f.basin_hits <= f.starts_run);
            }
            // The fast path must actually fire somewhere, or it is not a
            // fast path at all.
            assert!(
                fast.iter().any(|(_, f)| f.early_stopped),
                "no component early-stopped at threads={threads}"
            );
        }
    }
}

#[test]
fn pipeline_default_fit_matches_disabled_fast_path() {
    // HslbOptions::new enables the early-stop policy; the produced fit
    // must still be bit-identical to a cold full fit of the same data.
    let sim = Simulator::one_degree(7);
    let h = Hslb::new(&sim, HslbOptions::new(128));
    let data = h.gather();
    let piped = h.fit(&data).expect("pipeline fit");
    let full = fit_all(
        &data,
        &ScalingFitOptions {
            early_stop: None,
            ..ScalingFitOptions::default()
        },
    )
    .expect("full fit");
    assert_bit_identical(&piped, &full, "pipeline default");
    let total_run: usize = piped.iter().map(|(_, f)| f.starts_run).sum();
    let total_full: usize = full.iter().map(|(_, f)| f.starts_run).sum();
    assert!(
        total_run < total_full,
        "fast path ran {total_run} starts vs {total_full} full"
    );
}

#[test]
fn warm_cache_threads_through_repeated_pipeline_runs() {
    let sim = Simulator::one_degree(42);
    let cache = hslb::WarmStartCache::new();
    let mut opts = HslbOptions::new(128);
    opts.warm_cache = Some(cache.clone());
    let h = Hslb::new(&sim, opts);
    let data = h.gather();
    let first = h.fit(&data).expect("cold fit");
    assert_eq!(cache.len(), Component::OPTIMIZED.len());
    let second = h.fit(&data).expect("warm fit");
    // The warm re-fit starts at the previous optimum, so it spends far
    // fewer LM iterations while landing in the same basin.
    let cold_iters: usize = first.iter().map(|(_, f)| f.lm_iterations).sum();
    let warm_iters: usize = second.iter().map(|(_, f)| f.lm_iterations).sum();
    assert!(
        warm_iters <= cold_iters,
        "warm {warm_iters} vs cold {cold_iters} LM iterations"
    );
    for &c in &Component::OPTIMIZED {
        // Same basin: within the 0.1 %-cost basin tolerance, point
        // predictions can move a few tenths of a percent at most.
        let (a, b) = (first.predict(c, 256), second.predict(c, 256));
        assert!(
            (a - b).abs() <= 5e-3 * a.abs(),
            "{c}: warm refit left the basin ({a} vs {b})"
        );
    }
}
