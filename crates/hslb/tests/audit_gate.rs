//! The instance-audit gate: a non-convex fit set must fail its
//! certificate, route to the exhaustive rung, and never be reported as a
//! certified global optimum.

use hslb::fit::FitSet;
use hslb::{Hslb, HslbError, HslbOptions};
use hslb_cesm::{Component, Simulator};
use hslb_nlsq::ScalingCurve;
use std::collections::BTreeMap;

/// A seeded fit set whose atmosphere curve is non-convex two ways:
/// negative power coefficient and an exponent inside (0, 1).
fn non_convex_fits() -> FitSet {
    let convex = ScalingCurve {
        a: 120.0,
        b: 0.01,
        c: 1.2,
        d: 2.0,
    };
    let broken = ScalingCurve {
        a: 100.0,
        b: -0.5,
        c: 0.5,
        d: 5.0,
    };
    let mut curves = BTreeMap::new();
    curves.insert(Component::Lnd, convex);
    curves.insert(Component::Ice, convex);
    curves.insert(Component::Atm, broken);
    curves.insert(Component::Ocn, convex);
    FitSet::from_curves(curves).expect("all four components present")
}

fn opts_with_override() -> HslbOptions {
    let mut opts = HslbOptions::new(128);
    opts.curve_override = Some(non_convex_fits());
    opts
}

#[test]
fn strict_solve_rejects_a_non_convex_instance() {
    let sim = Simulator::one_degree(7);
    let h = Hslb::new(&sim, opts_with_override());
    let err = h.solve(&non_convex_fits()).expect_err("audit must reject");
    match err {
        HslbError::AuditRejected { audit } => {
            assert!(!audit.passed());
            assert!(!audit.certificate.passed());
            let atm = audit
                .certificate
                .components
                .iter()
                .find(|c| c.component == Component::Atm)
                .expect("atm certified");
            assert!(!atm.passed());
            assert!(!atm.exponent_ok, "c = 0.5 with b ≠ 0 must fail");
            assert!(
                atm.violations.iter().any(|v| v.contains("coefficient b")),
                "negative b must be called out: {:?}",
                atm.violations
            );
        }
        other => panic!("expected AuditRejected, got {other}"),
    }
}

#[test]
fn rejected_instance_degrades_to_exhaustive_and_never_claims_optimality() {
    let sim = Simulator::one_degree(7);
    let report = Hslb::new(&sim, opts_with_override())
        .run(None)
        .expect("the ladder must rescue the run");
    let res = report.resilience.as_ref().expect("run() always reports");
    assert_eq!(res.rung, hslb::resilience::SolverRung::Exhaustive);
    assert!(res.degraded_accuracy);
    assert!(
        res.fallbacks
            .iter()
            .any(|r| r.contains("instance audit rejected")),
        "fallback reasons: {:?}",
        res.fallbacks
    );
    // The failing audit rides along on the report…
    let audit = report.audit.as_ref().expect("audit attached");
    assert!(!audit.passed());
    // …and the experiment is never presented as a certified optimum.
    assert!(!report.global_optimum());
    assert!(report.solver_stats.is_none(), "no MINLP stats on this path");
    let shown = format!("{report}");
    assert!(shown.contains("NOT certified"), "{shown}");
}

#[test]
fn rejection_is_deterministic() {
    let sim = Simulator::one_degree(7);
    let summarize = || {
        Hslb::new(&sim, opts_with_override())
            .run(None)
            .expect("pipeline")
            .audit
            .expect("audit attached")
            .summary()
    };
    let first = summarize();
    assert!(first.starts_with("fail:"), "{first}");
    assert_eq!(first, summarize(), "same instance, same verdict, same text");
}

#[test]
fn convex_instances_still_certify_and_claim_optimality() {
    let sim = Simulator::one_degree(7);
    let report = Hslb::new(&sim, HslbOptions::new(128))
        .run(None)
        .expect("pipeline");
    let audit = report.audit.as_ref().expect("every MINLP solve is audited");
    assert!(audit.passed(), "{audit}");
    assert!(report.global_optimum());
    let stats = report.solver_stats.as_ref().expect("MINLP rung solved");
    let stamp = stats.audit.as_ref().expect("stats carry the stamp");
    assert!(stamp.passed);
    assert_eq!(stamp.components, 4);
    assert_eq!(stamp.violations, 0);
}
