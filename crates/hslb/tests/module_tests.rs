//! Cross-module tests within the hslb crate: pipeline option combos,
//! report rendering with solver stats, tuning under the real calibrated
//! curves, and the simulated expert across sizes.

use hslb::manual::SimulatedExpert;
use hslb::{snap_to_sweet_spots, ExhaustiveOptimizer, GatherPlan, Hslb, HslbOptions, Objective};
use hslb_cesm::{Layout, Machine, NoiseSpec, Resolution, ResolutionConfig, Simulator};

#[test]
fn layout2_and_layout3_pipelines_run_end_to_end() {
    // The paper only executes layout 1; our simulator can run all three.
    let sim = Simulator::one_degree(42);
    let mut totals = Vec::new();
    for layout in Layout::ALL {
        let mut opts = HslbOptions::new(256);
        opts.layout = layout;
        let report = Hslb::new(&sim, opts).run(None).expect("pipeline");
        assert!(report.hslb.actual_total > 0.0);
        totals.push(report.hslb.actual_total);
    }
    // Figure 4 ordering holds on *executed* runs too.
    assert!(
        totals[2] > totals[0],
        "fully-sequential {} must beat hybrid {}",
        totals[2],
        totals[0]
    );
}

#[test]
fn depth_first_with_pseudocost_on_real_model() {
    let sim = Simulator::one_degree(42);
    let h = Hslb::new(&sim, HslbOptions::new(512));
    let fits = h.fit(&h.gather()).unwrap();
    let base = h.solve(&fits).unwrap();

    let mut opts = HslbOptions::new(512);
    opts.solver.node_selection = hslb_minlp::NodeSelection::DepthFirst;
    opts.solver.int_var_selection = hslb_minlp::IntVarSelection::PseudoCost;
    let combo = Hslb::new(&sim, opts).solve(&fits).unwrap();
    assert!(
        (base.predicted_total - combo.predicted_total).abs() < 1e-5 * base.predicted_total,
        "{} vs {}",
        base.predicted_total,
        combo.predicted_total
    );
}

#[test]
fn tsync_with_parallel_solver_is_consistent() {
    // Nonconvex constraints + parallel tree search: the branching-based
    // enforcement must be thread-safe and deterministic in its optimum.
    let sim = Simulator::one_degree(42);
    let fits = {
        let h = Hslb::new(&sim, HslbOptions::new(256));
        h.fit(&h.gather()).unwrap()
    };
    let mut serial_opts = HslbOptions::new(256);
    serial_opts.tsync = Some(10.0);
    let serial = Hslb::new(&sim, serial_opts).solve(&fits).unwrap();

    let mut par_opts = HslbOptions::new(256);
    par_opts.tsync = Some(10.0);
    par_opts.solver.threads = 3;
    let parallel = Hslb::new(&sim, par_opts).solve(&fits).unwrap();
    assert!(
        (serial.predicted_total - parallel.predicted_total).abs() < 1e-6 * serial.predicted_total
    );
    // The sync window is honored in both.
    let gap = (serial.predicted.ice - serial.predicted.lnd).abs();
    assert!(gap <= 10.0 + 1e-6, "gap {gap}");
}

#[test]
fn report_display_includes_solver_work() {
    let sim = Simulator::one_degree(42);
    let report = Hslb::new(&sim, HslbOptions::new(128)).run(None).unwrap();
    assert!(report.solver_stats.is_some());
    let stats = report.solver_stats.as_ref().unwrap();
    assert!(stats.nodes >= 1);
    assert!(stats.lp_solves > 0);
    assert!(stats.cuts > 0);
    let shown = format!("{report}");
    assert!(shown.contains("Total time"));
}

#[test]
fn simulated_expert_scales_to_high_resolution() {
    let sim = Simulator::eighth_degree(7);
    let (alloc, runs) = SimulatedExpert::default().tune(&sim, 8192);
    assert!(runs <= 10, "expert burned {runs} runs");
    let run = sim
        .run_case(&alloc, Layout::Hybrid, 77)
        .expect("valid allocation");
    // Sanity: within 2x of the HSLB result at the same size.
    let hslb_total = Hslb::new(&sim, HslbOptions::new(8192))
        .run(None)
        .unwrap()
        .hslb
        .actual_total;
    assert!(
        run.total < 2.0 * hslb_total,
        "expert {} vs hslb {hslb_total}",
        run.total
    );
}

#[test]
fn tuning_on_calibrated_curves_stays_near_optimal() {
    // Snapping must cost only a few percent relative to the solver's
    // unconstrained-by-sweet-spots optimum (the paper's tuned run was
    // *better* in actuality because real sweet spots exist; our curves
    // don't reward snapping, so we only bound the loss).
    let sim = Simulator::new(
        Machine::intrepid(),
        ResolutionConfig::eighth_degree().without_ocean_constraint(),
        NoiseSpec::default(),
        42,
    );
    let h = Hslb::new(&sim, HslbOptions::new(32_768));
    let fits = h.fit(&h.gather()).unwrap();
    let solved = h.solve(&fits).unwrap();
    let tuned = snap_to_sweet_spots(
        &fits,
        Resolution::EighthDegree,
        Layout::Hybrid,
        32_768,
        &solved.allocation,
    );
    assert!(
        tuned.predicted_total <= solved.predicted_total * 1.03,
        "tuning lost too much: {} vs {}",
        tuned.predicted_total,
        solved.predicted_total
    );
    assert_eq!(tuned.allocation.atm % 8, 0);
    assert_eq!(tuned.allocation.ocn % 4, 0);
}

#[test]
fn explicit_gather_at_paper_counts_reproduces_calibration() {
    // Benchmark exactly at the paper's published node counts: the fit
    // should then be extremely close to the calibrated ground truth.
    let sim = Simulator::one_degree(42);
    let mut opts = HslbOptions::new(2048);
    opts.gather = GatherPlan::Explicit(vec![24, 80, 104, 384, 1280, 1664]);
    let h = Hslb::new(&sim, opts);
    let fits = h.fit(&h.gather()).unwrap();
    for &c in &hslb_cesm::Component::OPTIMIZED {
        for n in [50i64, 200, 800] {
            let rel = (fits.predict(c, n) - sim.truth(c, n)).abs() / sim.truth(c, n);
            assert!(rel < 0.2, "{c}@{n}: rel err {rel}");
        }
    }
}

#[test]
fn exhaustive_full_vs_grid_agree_on_mid_sizes() {
    // For N = 4096 both the dense enumeration (cap boundary) and grid
    // paths are exercised; they must agree to a fraction of a percent.
    let sim = Simulator::one_degree(42);
    let h = Hslb::new(&sim, HslbOptions::new(2048));
    let fits = h.fit(&h.gather()).unwrap();
    let dense = ExhaustiveOptimizer::new(&fits, Layout::Hybrid, 4096).solve(Objective::MinMax);
    let grid = ExhaustiveOptimizer::new(&fits, Layout::Hybrid, 4097).solve(Objective::MinMax);
    assert!(
        (dense.objective - grid.objective).abs() < 0.01 * dense.objective,
        "dense {} vs grid {}",
        dense.objective,
        grid.objective
    );
}
