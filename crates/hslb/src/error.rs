//! Error type unifying the pipeline's failure modes.

/// Anything that can go wrong across the gather → fit → solve → execute
/// pipeline.
#[derive(Debug)]
pub enum HslbError {
    /// A component had too few or malformed benchmark points.
    Fit {
        component: hslb_cesm::Component,
        source: hslb_nlsq::scaling::FitError,
    },
    /// A fit set was constructed without all four optimized components
    /// (the solve step indexes every one, so a partial set would panic
    /// later — reject it at construction instead).
    IncompleteFitSet { missing: Vec<hslb_cesm::Component> },
    /// A curve was requested for a component the fit set does not carry
    /// (the coupler, say — only optimized components are fitted).
    MissingFit { component: hslb_cesm::Component },
    /// Model construction failed.
    Model(hslb_model::ModelError),
    /// The MINLP could not be compiled for the solver.
    Compile(hslb_minlp::CompileError),
    /// The pre-solve instance audit failed: the fitted curves or the
    /// generated model violate the convexity/well-formedness assumptions
    /// behind the branch-and-bound's global-optimality claim. The full
    /// audit is carried so the degradation ladder can attach it to the
    /// report while routing the instance to the exhaustive rung.
    AuditRejected {
        audit: Box<hslb_audit::InstanceAudit>,
    },
    /// The solver proved the model infeasible (a target node count below
    /// the smallest feasible layout, say).
    Infeasible { detail: String },
    /// The solver stopped without an answer (node limit).
    SolverIncomplete { detail: String },
    /// The simulator rejected the allocation at execute time.
    Execute { detail: String },
    /// The benchmark campaign could not gather enough usable data (too
    /// many failed/hung runs even after retries and substitutions).
    Gather { detail: String },
    /// Every rung of the degradation ladder failed; the reasons are in
    /// the order the fallbacks were attempted.
    DegradationExhausted { fallbacks: Vec<String> },
    /// Misconfiguration detected before any work was done.
    Config(String),
}

impl std::fmt::Display for HslbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HslbError::Fit { component, source } => {
                write!(f, "fitting {component}: {source}")
            }
            HslbError::IncompleteFitSet { missing } => {
                let names: Vec<String> = missing.iter().map(|c| c.to_string()).collect();
                write!(f, "fit set is missing components: [{}]", names.join(", "))
            }
            HslbError::MissingFit { component } => {
                write!(f, "no fitted curve for component {component}")
            }
            HslbError::Model(e) => write!(f, "building layout model: {e}"),
            HslbError::Compile(e) => write!(f, "compiling MINLP: {e}"),
            HslbError::AuditRejected { audit } => {
                write!(f, "instance audit rejected the MINLP: {}", audit.summary())
            }
            HslbError::Infeasible { detail } => write!(f, "MINLP infeasible: {detail}"),
            HslbError::SolverIncomplete { detail } => {
                write!(f, "solver stopped early: {detail}")
            }
            HslbError::Execute { detail } => write!(f, "execution rejected: {detail}"),
            HslbError::Gather { detail } => write!(f, "gather failed: {detail}"),
            HslbError::DegradationExhausted { fallbacks } => {
                write!(f, "every fallback failed: [{}]", fallbacks.join("; "))
            }
            HslbError::Config(detail) => write!(f, "configuration error: {detail}"),
        }
    }
}

impl std::error::Error for HslbError {}

impl From<hslb_model::ModelError> for HslbError {
    fn from(e: hslb_model::ModelError) -> Self {
        HslbError::Model(e)
    }
}

impl From<hslb_minlp::CompileError> for HslbError {
    fn from(e: hslb_minlp::CompileError) -> Self {
        HslbError::Compile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = HslbError::Config("bad target".into());
        assert!(format!("{e}").contains("bad target"));
        let e = HslbError::Infeasible {
            detail: "N too small".into(),
        };
        assert!(format!("{e}").contains("infeasible"));
        let e = HslbError::DegradationExhausted {
            fallbacks: vec!["solver deadline".into(), "no curves".into()],
        };
        let shown = format!("{e}");
        assert!(shown.contains("solver deadline") && shown.contains("no curves"));
    }
}
