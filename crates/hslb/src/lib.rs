//! The Heuristic Static Load-Balancing (HSLB) algorithm for CESM.
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//!
//! This crate is the paper's primary contribution: given a way to
//! benchmark CESM's components (here, the [`hslb_cesm`] simulator — in
//! production, real 5-day runs), find the node allocation that minimizes
//! the coupled model's wall-clock time. The four steps (§III-F):
//!
//! 1. **Gather** ([`pipeline::Hslb::gather`]) — benchmark every component
//!    at D ≥ 4 node counts spanning the feasible range;
//! 2. **Fit** ([`fit`]) — least-squares fit of the performance model
//!    `T_j(n) = a_j/n + b_j·n^{c_j} + d_j` per component (Table II);
//! 3. **Solve** ([`layout_model`] + [`hslb_minlp`]) — build the Table I
//!    MINLP for the chosen layout and objective and solve it to global
//!    optimality with LP/NLP branch-and-bound;
//! 4. **Execute** ([`pipeline::Hslb::execute`]) — run CESM with the
//!    optimal allocation and compare predicted vs actual times.
//!
//! Also provided:
//!
//! * [`manual`] — the baselines: replay of the paper's published expert
//!   allocations, and a simulated-expert iterative tuner;
//! * [`exhaustive`] — an independent enumeration optimizer used to verify
//!   the MINLP solver's global optimality (and to evaluate the `max-min`
//!   objective, whose MINLP form is nonconvex);
//! * [`whatif`] — the §IV-C applications: layout comparison (Figure 4),
//!   optimal node counts, new-machine prediction;
//! * [`report`] — Table III-style reporting structures.

pub mod cost;
pub mod data;
pub mod error;
pub mod exhaustive;
pub mod fit;
pub mod layout_model;
pub mod manual;
pub mod objective;
pub mod pipeline;
pub mod report;
pub mod resilience;
pub mod tuning;
pub mod whatif;

pub use data::BenchmarkData;
pub use error::HslbError;
pub use exhaustive::ExhaustiveOptimizer;
pub use fit::{fit_all, fit_all_warm, FitSet, WarmStartCache};
pub use layout_model::{build_layout_model, LayoutModel, LayoutModelOptions, NodeFloors};
pub use objective::Objective;
pub use pipeline::{rebalance, GatherPlan, Hslb, HslbOptions, PipelineArtifacts, SolveOutcome};
pub use report::{ArmReport, ExperimentReport};
pub use resilience::{GatherReport, ResilienceReport, RetryPolicy, SolverRung};
pub use tuning::{snap_to_sweet_spots, TunedAllocation};
