//! Step 3a: build the Table I MINLP for a layout, objective and node
//! budget.
//!
//! The generated models are line-for-line translations of Table I:
//! temporal constraints (lines 14–19 / 22–23 / 27), node constraints
//! (lines 20–21 / 24–26 / 28), the optional ice–land synchronization
//! window `T_sync` (lines 18–19), and the allowed-set machinery for the
//! ocean and atmosphere node counts as binaries with a convexity row, a
//! linking row and an SOS-1 declaration (lines 29–31).

use crate::fit::FitSet;
use crate::objective::Objective;
use hslb_cesm::{Component, Layout};
use hslb_model::{ConstraintSense, Convexity, Expr, Model, ObjectiveSense, VarId};
use hslb_nlsq::ScalingCurve;

/// Per-component minimum node counts (memory floors, §III-C). Defaults
/// to 1 node each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFloors {
    pub lnd: i64,
    pub ice: i64,
    pub atm: i64,
    pub ocn: i64,
}

impl Default for NodeFloors {
    fn default() -> Self {
        NodeFloors {
            lnd: 1,
            ice: 1,
            atm: 1,
            ocn: 1,
        }
    }
}

impl NodeFloors {
    /// Floors from a resolution's memory requirements.
    pub fn from_config(config: &hslb_cesm::ResolutionConfig) -> Self {
        NodeFloors {
            lnd: config.memory_floor(Component::Lnd),
            ice: config.memory_floor(Component::Ice),
            atm: config.memory_floor(Component::Atm),
            ocn: config.memory_floor(Component::Ocn),
        }
    }
}

/// Options controlling model generation.
#[derive(Debug, Clone)]
pub struct LayoutModelOptions {
    pub layout: Layout,
    pub objective: Objective,
    /// Total nodes N available for allocation (Table I line 4).
    pub total_nodes: i64,
    /// Memory floors per component (lower bounds on every `n_j`).
    pub floors: NodeFloors,
    /// Allowed ocean node counts (Table I line 5); `None` = free.
    pub ocean_allowed: Option<Vec<i64>>,
    /// Allowed atmosphere node counts (Table I line 6); `None` = free.
    pub atm_allowed: Option<Vec<i64>>,
    /// Ice–land synchronization tolerance `T_sync` in seconds (Table I
    /// line 9 and lines 18–19); `None` disables the constraint (the paper
    /// notes it "may actually result in reduced performance").
    pub tsync: Option<f64>,
}

impl LayoutModelOptions {
    /// Makespan-minimizing model for a layout with no allowed-set
    /// constraints.
    pub fn free(layout: Layout, total_nodes: i64) -> Self {
        LayoutModelOptions {
            layout,
            objective: Objective::MinMax,
            total_nodes,
            floors: NodeFloors::default(),
            ocean_allowed: None,
            atm_allowed: None,
            tsync: None,
        }
    }
}

/// The generated model plus the variable ids needed to read solutions.
#[derive(Debug, Clone)]
pub struct LayoutModel {
    pub model: Model,
    /// Node-count variable per component, `[lnd, ice, atm, ocn]` order.
    pub n_lnd: VarId,
    pub n_ice: VarId,
    pub n_atm: VarId,
    pub n_ocn: VarId,
    /// The makespan variable `T` (or the epigraph variable for min-sum).
    pub t_total: VarId,
    /// `T_icelnd` (layout 1 only).
    pub t_icelnd: Option<VarId>,
}

impl LayoutModel {
    /// Extract the allocation from a solution vector.
    pub fn allocation(&self, x: &[f64]) -> hslb_cesm::Allocation {
        hslb_cesm::Allocation {
            lnd: x[self.n_lnd].round() as i64,
            ice: x[self.n_ice].round() as i64,
            atm: x[self.n_atm].round() as i64,
            ocn: x[self.n_ocn].round() as i64,
        }
    }
}

/// The performance-function expression `T_j(n) = a/n + b·n^c + d` over a
/// node-count variable.
fn perf_expr(curve: &ScalingCurve, n: VarId) -> Expr {
    Expr::c(curve.a) / Expr::var(n) + Expr::c(curve.b) * Expr::var(n).pow(curve.c) + curve.d
}

/// A safe upper bound on any component/makespan time: everything run on
/// one node, summed.
fn time_upper_bound(fits: &FitSet) -> f64 {
    Component::OPTIMIZED
        .iter()
        .map(|&c| fits.optimized_curve(c).eval(1.0))
        .sum::<f64>()
        * 2.0
}

/// Add allowed-set machinery (Table I lines 29–31) for a node variable:
/// binaries `z_k`, `Σ z_k = 1`, `Σ z_k·V_k = n`, SOS-1 over the set.
fn add_allowed_set(
    model: &mut Model,
    label: &str,
    n: VarId,
    values: &[i64],
) -> Result<(), hslb_model::ModelError> {
    assert!(!values.is_empty(), "allowed set for {label} is empty");
    let mut zs: Vec<(VarId, f64)> = Vec::with_capacity(values.len());
    for &v in values {
        let z = model.binary(&format!("z_{label}_{v}"))?;
        zs.push((z, v as f64));
    }
    let convexity_row = zs
        .iter()
        .fold(Expr::c(0.0), |acc, &(z, _)| acc + Expr::var(z));
    model.constrain(
        &format!("{label}_pick_one"),
        convexity_row,
        ConstraintSense::Eq,
        1.0,
        Convexity::Linear,
    )?;
    let linking = zs
        .iter()
        .fold(Expr::c(0.0), |acc, &(z, v)| acc + v * Expr::var(z))
        - Expr::var(n);
    model.constrain(
        &format!("{label}_link"),
        linking,
        ConstraintSense::Eq,
        0.0,
        Convexity::Linear,
    )?;
    model.add_sos1(&format!("{label}_set"), zs)?;
    Ok(())
}

/// Build the MINLP of Table I for the given layout/objective/options.
///
/// `Objective::MaxMin` models are *intentionally not built* here — their
/// epigraph constraints are nonconvex over a continuous variable, which
/// the branch-and-bound rejects; the pipeline evaluates max-min with the
/// enumeration optimizer instead.
pub fn build_layout_model(
    fits: &FitSet,
    opts: &LayoutModelOptions,
) -> Result<LayoutModel, crate::error::HslbError> {
    if opts.objective == Objective::MaxMin {
        return Err(crate::error::HslbError::Config(
            "max-min objective is nonconvex; use the exhaustive optimizer (see Objective docs)"
                .to_string(),
        ));
    }
    let n_total = opts.total_nodes;
    if n_total < 4 {
        return Err(crate::error::HslbError::Config(format!(
            "need at least 4 nodes, got {n_total}"
        )));
    }
    let mut m = Model::new();
    let nf = n_total as f64;

    // Node-count variables (Table I line 10), bounded below by the
    // memory floors and above by the machine.
    let fl = &opts.floors;
    let n_ice = m.integer("n_ice", fl.ice.max(1) as f64, nf)?;
    let n_lnd = m.integer("n_lnd", fl.lnd.max(1) as f64, nf)?;
    let n_atm = m.integer("n_atm", fl.atm.max(1) as f64, nf)?;
    let n_ocn = m.integer("n_ocn", fl.ocn.max(1) as f64, nf)?;
    let t_ub = time_upper_bound(fits);
    let t_total = m.continuous("T", 0.0, t_ub)?;

    let t_of = |c: Component, n: VarId, fits: &FitSet| perf_expr(&fits.optimized_curve(c), n);

    // Allowed sets (trim to the node budget; an empty trim is a config
    // error the solver would otherwise report as infeasible with less
    // context).
    if let Some(values) = &opts.ocean_allowed {
        let trimmed: Vec<i64> = values
            .iter()
            .copied()
            .filter(|&v| v <= n_total && v >= opts.floors.ocn)
            .collect();
        if trimmed.is_empty() {
            return Err(crate::error::HslbError::Config(format!(
                "no allowed ocean count fits within {n_total} nodes"
            )));
        }
        add_allowed_set(&mut m, "ocn", n_ocn, &trimmed)?;
    }
    if let Some(values) = &opts.atm_allowed {
        let trimmed: Vec<i64> = values
            .iter()
            .copied()
            .filter(|&v| v <= n_total && v >= opts.floors.atm)
            .collect();
        if trimmed.is_empty() {
            return Err(crate::error::HslbError::Config(format!(
                "no allowed atmosphere count fits within {n_total} nodes"
            )));
        }
        add_allowed_set(&mut m, "atm", n_atm, &trimmed)?;
    }

    let mut t_icelnd_var = None;

    match opts.objective {
        Objective::MinMax => {
            match opts.layout {
                Layout::Hybrid => {
                    // Table I lines 14–21.
                    let t_icelnd = m.continuous("T_icelnd", 0.0, t_ub)?;
                    t_icelnd_var = Some(t_icelnd);
                    // T_icelnd ≥ T_i(n_i), T_icelnd ≥ T_l(n_l)
                    m.constrain(
                        "icelnd_ge_ice",
                        t_of(Component::Ice, n_ice, fits) - Expr::var(t_icelnd),
                        ConstraintSense::Le,
                        0.0,
                        Convexity::Convex,
                    )?;
                    m.constrain(
                        "icelnd_ge_lnd",
                        t_of(Component::Lnd, n_lnd, fits) - Expr::var(t_icelnd),
                        ConstraintSense::Le,
                        0.0,
                        Convexity::Convex,
                    )?;
                    // T ≥ T_icelnd + T_a(n_a)
                    m.constrain(
                        "total_ge_atm_branch",
                        Expr::var(t_icelnd) + t_of(Component::Atm, n_atm, fits)
                            - Expr::var(t_total),
                        ConstraintSense::Le,
                        0.0,
                        Convexity::Convex,
                    )?;
                    // T ≥ T_o(n_o)
                    m.constrain(
                        "total_ge_ocn",
                        t_of(Component::Ocn, n_ocn, fits) - Expr::var(t_total),
                        ConstraintSense::Le,
                        0.0,
                        Convexity::Convex,
                    )?;
                    // Lines 18–19: |T_l(n_l) − T_i(n_i)| ≤ T_sync.
                    if let Some(tsync) = opts.tsync {
                        m.constrain(
                            "sync_lnd_not_too_fast",
                            t_of(Component::Ice, n_ice, fits) - t_of(Component::Lnd, n_lnd, fits),
                            ConstraintSense::Le,
                            tsync,
                            Convexity::Nonconvex,
                        )?;
                        m.constrain(
                            "sync_lnd_not_too_slow",
                            t_of(Component::Lnd, n_lnd, fits) - t_of(Component::Ice, n_ice, fits),
                            ConstraintSense::Le,
                            tsync,
                            Convexity::Nonconvex,
                        )?;
                    }
                    // Lines 20–21: n_a + n_o ≤ N, n_i + n_l ≤ n_a.
                    m.constrain(
                        "budget",
                        Expr::var(n_atm) + Expr::var(n_ocn),
                        ConstraintSense::Le,
                        nf,
                        Convexity::Linear,
                    )?;
                    m.constrain(
                        "icelnd_within_atm",
                        Expr::var(n_ice) + Expr::var(n_lnd) - Expr::var(n_atm),
                        ConstraintSense::Le,
                        0.0,
                        Convexity::Linear,
                    )?;
                }
                Layout::SequentialWithOcean => {
                    // Table I lines 22–26.
                    m.constrain(
                        "total_ge_seq",
                        t_of(Component::Ice, n_ice, fits)
                            + t_of(Component::Lnd, n_lnd, fits)
                            + t_of(Component::Atm, n_atm, fits)
                            - Expr::var(t_total),
                        ConstraintSense::Le,
                        0.0,
                        Convexity::Convex,
                    )?;
                    m.constrain(
                        "total_ge_ocn",
                        t_of(Component::Ocn, n_ocn, fits) - Expr::var(t_total),
                        ConstraintSense::Le,
                        0.0,
                        Convexity::Convex,
                    )?;
                    for (label, n) in [("lnd", n_lnd), ("ice", n_ice), ("atm", n_atm)] {
                        m.constrain(
                            &format!("{label}_within_rest"),
                            Expr::var(n) + Expr::var(n_ocn),
                            ConstraintSense::Le,
                            nf,
                            Convexity::Linear,
                        )?;
                    }
                }
                Layout::FullySequential => {
                    // Table I lines 27–28.
                    m.constrain(
                        "total_ge_all_seq",
                        t_of(Component::Ice, n_ice, fits)
                            + t_of(Component::Lnd, n_lnd, fits)
                            + t_of(Component::Atm, n_atm, fits)
                            + t_of(Component::Ocn, n_ocn, fits)
                            - Expr::var(t_total),
                        ConstraintSense::Le,
                        0.0,
                        Convexity::Convex,
                    )?;
                    // n_j ≤ N is already each variable's upper bound.
                }
            }
            m.set_objective(Expr::var(t_total), ObjectiveSense::Minimize)?;
        }
        Objective::SumTime => {
            // Equation (3): minimize Σ T_j(n_j) under the layout's node
            // constraints (epigraph form).
            m.constrain(
                "sum_epigraph",
                t_of(Component::Ice, n_ice, fits)
                    + t_of(Component::Lnd, n_lnd, fits)
                    + t_of(Component::Atm, n_atm, fits)
                    + t_of(Component::Ocn, n_ocn, fits)
                    - Expr::var(t_total),
                ConstraintSense::Le,
                0.0,
                Convexity::Convex,
            )?;
            match opts.layout {
                Layout::Hybrid => {
                    m.constrain(
                        "budget",
                        Expr::var(n_atm) + Expr::var(n_ocn),
                        ConstraintSense::Le,
                        nf,
                        Convexity::Linear,
                    )?;
                    m.constrain(
                        "icelnd_within_atm",
                        Expr::var(n_ice) + Expr::var(n_lnd) - Expr::var(n_atm),
                        ConstraintSense::Le,
                        0.0,
                        Convexity::Linear,
                    )?;
                }
                Layout::SequentialWithOcean => {
                    for (label, n) in [("lnd", n_lnd), ("ice", n_ice), ("atm", n_atm)] {
                        m.constrain(
                            &format!("{label}_within_rest"),
                            Expr::var(n) + Expr::var(n_ocn),
                            ConstraintSense::Le,
                            nf,
                            Convexity::Linear,
                        )?;
                    }
                }
                Layout::FullySequential => {}
            }
            m.set_objective(Expr::var(t_total), ObjectiveSense::Minimize)?;
        }
        Objective::MaxMin => unreachable!("rejected above"),
    }

    Ok(LayoutModel {
        model: m,
        n_lnd,
        n_ice,
        n_atm,
        n_ocn,
        t_total,
        t_icelnd: t_icelnd_var,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::FitSet;
    use hslb_nlsq::ScalingCurve;
    use std::collections::BTreeMap;

    fn toy_fits() -> FitSet {
        // Simple decreasing curves with distinct workloads.
        let mk = |a: f64, d: f64| ScalingCurve {
            a,
            b: 0.0,
            c: 1.0,
            d,
        };
        let curves: BTreeMap<_, _> = [
            (Component::Ice, mk(8_000.0, 2.0)),
            (Component::Lnd, mk(1_500.0, 1.0)),
            (Component::Atm, mk(30_000.0, 10.0)),
            (Component::Ocn, mk(9_000.0, 5.0)),
        ]
        .into_iter()
        .collect();
        FitSet::from_curves(curves).unwrap()
    }

    #[test]
    fn hybrid_model_shape_matches_table_i() {
        let lm = build_layout_model(&toy_fits(), &LayoutModelOptions::free(Layout::Hybrid, 128))
            .unwrap();
        // 4 node vars + T + T_icelnd.
        assert_eq!(lm.model.num_vars(), 6);
        assert!(lm.t_icelnd.is_some());
        // 4 convex temporal constraints + 2 linear node constraints.
        assert_eq!(lm.model.constraints.len(), 6);
        let shown = format!("{}", lm.model);
        assert!(shown.contains("icelnd_within_atm"), "{shown}");
    }

    #[test]
    fn tsync_adds_two_nonconvex_rows() {
        let mut opts = LayoutModelOptions::free(Layout::Hybrid, 128);
        opts.tsync = Some(5.0);
        let lm = build_layout_model(&toy_fits(), &opts).unwrap();
        let nonconvex = lm
            .model
            .constraints
            .iter()
            .filter(|c| c.convexity == hslb_model::Convexity::Nonconvex)
            .count();
        assert_eq!(nonconvex, 2);
    }

    #[test]
    fn allowed_sets_create_sos_machinery() {
        let mut opts = LayoutModelOptions::free(Layout::Hybrid, 128);
        opts.ocean_allowed = Some(vec![2, 4, 8, 16, 24, 32, 480, 768]);
        let lm = build_layout_model(&toy_fits(), &opts).unwrap();
        // Values above 128 are trimmed: 6 binaries remain.
        let binaries = (0..lm.model.num_vars())
            .filter(|&v| lm.model.var_type(v) == hslb_model::VarType::Binary)
            .count();
        assert_eq!(binaries, 6);
        assert_eq!(lm.model.sos1.len(), 1);
        assert_eq!(lm.model.sos1[0].members.len(), 6);
    }

    #[test]
    fn empty_trimmed_set_is_a_config_error() {
        let mut opts = LayoutModelOptions::free(Layout::Hybrid, 128);
        opts.ocean_allowed = Some(vec![480, 768]);
        assert!(matches!(
            build_layout_model(&toy_fits(), &opts),
            Err(crate::error::HslbError::Config(_))
        ));
    }

    #[test]
    fn maxmin_is_rejected_with_guidance() {
        let mut opts = LayoutModelOptions::free(Layout::Hybrid, 128);
        opts.objective = Objective::MaxMin;
        let err = build_layout_model(&toy_fits(), &opts).unwrap_err();
        assert!(format!("{err}").contains("max-min"));
    }

    #[test]
    fn models_compile_for_the_solver() {
        for layout in Layout::ALL {
            let lm =
                build_layout_model(&toy_fits(), &LayoutModelOptions::free(layout, 256)).unwrap();
            hslb_minlp::compile(&lm.model).expect("model must compile");
        }
    }
}
