//! Objective functions for the allocation problem (§III-D).

/// The three candidate objectives the paper discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Equation (1): `min max_j` of the layout's critical path — the
    /// layout-aware makespan (for layout 1, `max(max(ice,lnd)+atm, ocn)`).
    /// "The min−max function performed slightly better than the max−min
    /// function … and was the objective used in this work."
    MinMax,
    /// Equation (2): `max min_j T_j(n_j)` under a use-all-nodes budget.
    /// Balances components by raising the fastest one's time. Its MINLP
    /// form is nonconvex, so the pipeline evaluates it with the
    /// enumeration optimizer instead of branch-and-bound.
    MaxMin,
    /// Equation (3): `min Σ_j T_j(n_j)`. "Obviously out of consideration
    /// because CESM requires more complicated relationships between
    /// components than just a sum" — kept for the ablation.
    SumTime,
}

impl Objective {
    /// Can this objective be expressed as a convex MINLP (and hence be
    /// solved to global optimality by the branch-and-bound)?
    pub fn is_convex_minlp(self) -> bool {
        match self {
            Objective::MinMax | Objective::SumTime => true,
            Objective::MaxMin => false,
        }
    }

    /// Paper equation number.
    pub fn equation(self) -> u8 {
        match self {
            Objective::MinMax => 1,
            Objective::MaxMin => 2,
            Objective::SumTime => 3,
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Objective::MinMax => "min-max",
            Objective::MaxMin => "max-min",
            Objective::SumTime => "min-sum",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convexity_classification() {
        assert!(Objective::MinMax.is_convex_minlp());
        assert!(Objective::SumTime.is_convex_minlp());
        assert!(!Objective::MaxMin.is_convex_minlp());
    }

    #[test]
    fn equations_match_the_paper() {
        assert_eq!(Objective::MinMax.equation(), 1);
        assert_eq!(Objective::MaxMin.equation(), 2);
        assert_eq!(Objective::SumTime.equation(), 3);
    }
}
