//! §IV-C applications: predictions beyond the tuned configuration.
//!
//! "It is possible to adapt the developed mathematical approach for other
//! purposes. For example, HSLB can estimate the effect of constraints or
//! 'sweet' spots on scaling/efficiency of CESM, which component layout is
//! more or less scalable; … or the optimal number of nodes to run CESM."

use crate::exhaustive::ExhaustiveOptimizer;
use crate::fit::FitSet;
use crate::objective::Objective;
use hslb_cesm::{Allocation, Layout};

/// Predicted scaling of one layout: `(N, predicted time, allocation)` per
/// target node count. This regenerates Figure 4's series.
#[derive(Debug, Clone)]
pub struct LayoutScaling {
    pub layout: Layout,
    pub points: Vec<(i64, f64, Allocation)>,
}

/// Predict the optimal time of each layout at each node count from fitted
/// curves (no execution — exactly what the paper does for layouts 2 and 3,
/// which were never run).
pub fn predict_layout_scaling(
    fits: &FitSet,
    node_counts: &[i64],
    ocean_allowed: Option<&[i64]>,
    atm_allowed: Option<&[i64]>,
) -> Vec<LayoutScaling> {
    Layout::ALL
        .iter()
        .map(|&layout| {
            let points = node_counts
                .iter()
                .map(|&n| {
                    let mut opt = ExhaustiveOptimizer::new(fits, layout, n);
                    opt.ocean_allowed = ocean_allowed.map(|s| s.to_vec());
                    opt.atm_allowed = atm_allowed.map(|s| s.to_vec());
                    let res = opt.solve(Objective::MinMax);
                    (n, res.objective, res.allocation)
                })
                .collect();
            LayoutScaling { layout, points }
        })
        .collect()
}

/// The outcome of an optimal-node-count search.
#[derive(Debug, Clone, Copy)]
pub struct OptimalNodes {
    /// Smallest node count meeting the efficiency threshold.
    pub nodes: i64,
    /// Predicted time at that count.
    pub time: f64,
    /// Marginal parallel efficiency at that count (speedup gained per
    /// node-doubling, 1.0 = perfect).
    pub marginal_efficiency: f64,
}

/// Find the cost-efficient node count: keep doubling while each doubling
/// still buys at least `min_marginal_efficiency` of the ideal 2× speedup
/// ("nodes are increased until scaling is reduced to a predefined limit").
pub fn optimal_node_count(
    fits: &FitSet,
    layout: Layout,
    min_nodes: i64,
    max_nodes: i64,
    min_marginal_efficiency: f64,
) -> OptimalNodes {
    assert!(min_nodes >= 4 && max_nodes >= min_nodes);
    let time_at = |n: i64| {
        ExhaustiveOptimizer::new(fits, layout, n)
            .solve(Objective::MinMax)
            .objective
    };
    let mut n = min_nodes;
    let mut t = time_at(n);
    let mut eff = 1.0;
    while n * 2 <= max_nodes {
        let t2 = time_at(n * 2);
        // Ideal doubling halves the time: efficiency = (t/t2) / 2.
        let e = (t / t2) / 2.0;
        if e < min_marginal_efficiency {
            break;
        }
        n *= 2;
        t = t2;
        eff = e;
    }
    OptimalNodes {
        nodes: n,
        time: t,
        marginal_efficiency: eff,
    }
}

/// Effect of an allowed-set constraint on achievable performance across
/// machine sizes (§IV-C: "HSLB can estimate the effect of constraints or
/// 'sweet' spots on scaling/efficiency of CESM"). For each node count,
/// returns `(N, constrained optimum, unconstrained optimum)` — their gap
/// is the price of the hard-coded set, the quantity behind the paper's
/// "component models processor counts should not be arbitrarily limited".
pub fn constraint_impact(
    fits: &FitSet,
    layout: Layout,
    node_counts: &[i64],
    ocean_allowed: &[i64],
) -> Vec<(i64, f64, f64)> {
    node_counts
        .iter()
        .map(|&n| {
            let mut constrained = ExhaustiveOptimizer::new(fits, layout, n);
            constrained.ocean_allowed = Some(ocean_allowed.to_vec());
            let with = constrained.solve(Objective::MinMax).objective;
            let without = ExhaustiveOptimizer::new(fits, layout, n)
                .solve(Objective::MinMax)
                .objective;
            (n, with, without)
        })
        .collect()
}

/// Predict the best achievable time if one component's curve were replaced
/// (e.g. swapping the ocean model — "how replacing one component with
/// another will affect scaling").
pub fn predict_component_swap(
    fits: &FitSet,
    layout: Layout,
    total_nodes: i64,
    component: hslb_cesm::Component,
    replacement: hslb_nlsq::ScalingCurve,
) -> (f64, f64) {
    let before = ExhaustiveOptimizer::new(fits, layout, total_nodes)
        .solve(Objective::MinMax)
        .objective;
    let mut curves: std::collections::BTreeMap<_, _> = hslb_cesm::Component::OPTIMIZED
        .iter()
        .map(|&c| (c, fits.optimized_curve(c)))
        .collect();
    curves.insert(component, replacement);
    // The map was seeded from `Component::OPTIMIZED` two lines up.
    #[allow(clippy::expect_used)]
    let swapped = FitSet::from_curves(curves).expect("curve map covers every optimized component");
    let after = ExhaustiveOptimizer::new(&swapped, layout, total_nodes)
        .solve(Objective::MinMax)
        .objective;
    (before, after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hslb_cesm::Component;
    use hslb_nlsq::ScalingCurve;
    use std::collections::BTreeMap;

    fn toy_fits() -> FitSet {
        let mk = |a: f64, d: f64| ScalingCurve {
            a,
            b: 0.0,
            c: 1.0,
            d,
        };
        FitSet::from_curves(BTreeMap::from([
            (Component::Ice, mk(8_000.0, 2.0)),
            (Component::Lnd, mk(1_500.0, 1.0)),
            (Component::Atm, mk(30_000.0, 10.0)),
            (Component::Ocn, mk(9_000.0, 5.0)),
        ]))
        .unwrap()
    }

    #[test]
    fn layout_scaling_produces_figure4_shape() {
        let fits = toy_fits();
        let scaling = predict_layout_scaling(&fits, &[128, 256, 512, 1024, 2048], None, None);
        assert_eq!(scaling.len(), 3);
        for s in &scaling {
            // Times decrease with N for every layout on these curves.
            assert!(
                s.points.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-9),
                "{:?} not monotone",
                s.layout
            );
        }
        // Layout 3 worst at every N.
        for i in 0..5 {
            assert!(scaling[2].points[i].1 >= scaling[0].points[i].1 - 1e-9);
            assert!(scaling[2].points[i].1 >= scaling[1].points[i].1 - 1e-9);
        }
    }

    #[test]
    fn optimal_nodes_stops_when_scaling_dies() {
        // Curves with a large serial floor stop scaling quickly.
        let mk = |a: f64, d: f64| ScalingCurve {
            a,
            b: 0.0,
            c: 1.0,
            d,
        };
        let fits = FitSet::from_curves(BTreeMap::from([
            (Component::Ice, mk(1_000.0, 50.0)),
            (Component::Lnd, mk(500.0, 50.0)),
            (Component::Atm, mk(2_000.0, 100.0)),
            (Component::Ocn, mk(1_000.0, 80.0)),
        ]))
        .unwrap();
        let res = optimal_node_count(&fits, Layout::Hybrid, 8, 65_536, 0.8);
        assert!(res.nodes < 65_536, "should stop early, got {}", res.nodes);
        // A scalable model keeps going further.
        let fits2 = toy_fits();
        let res2 = optimal_node_count(&fits2, Layout::Hybrid, 8, 65_536, 0.8);
        assert!(res2.nodes > res.nodes);
    }

    #[test]
    fn constraint_impact_grows_with_machine_size() {
        // A sparse allowed set barely hurts on a small machine but binds
        // hard once the optimum wants counts the set cannot express —
        // the 1/8° ocean story in miniature.
        let fits = toy_fits();
        let allowed = vec![8i64, 16, 32, 64]; // capped at 64
        let impact = constraint_impact(&fits, Layout::Hybrid, &[128, 1024, 8192], &allowed);
        for &(_, with, without) in &impact {
            assert!(with >= without - 1e-9, "constraint can only hurt");
        }
        let gap = |k: usize| (impact[k].1 - impact[k].2) / impact[k].2;
        assert!(
            gap(2) > gap(0),
            "cap should bind harder at 8192 ({}) than at 128 ({})",
            gap(2),
            gap(0)
        );
    }

    #[test]
    fn component_swap_changes_prediction() {
        let fits = toy_fits();
        // A dramatically better ocean model shifts the optimum down.
        let fast_ocean = ScalingCurve {
            a: 900.0,
            b: 0.0,
            c: 1.0,
            d: 0.5,
        };
        let (before, after) =
            predict_component_swap(&fits, Layout::Hybrid, 256, Component::Ocn, fast_ocean);
        assert!(after <= before);
    }
}
