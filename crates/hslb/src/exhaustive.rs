//! An independent enumeration optimizer over fitted curves.
//!
//! Serves two purposes:
//!
//! * **verification** — on configurations where full enumeration is
//!   tractable (the 1° allowed-set experiments), it provides the exact
//!   optimum against which the branch-and-bound is tested;
//! * **coverage** — it evaluates the nonconvex `max-min` objective
//!   (§III-D equation 2) that the convex MINLP route cannot express.
//!
//! The layout structure factorizes the search: for layout 1, fixing
//! `n_ocn` and `n_atm` reduces the remainder to a one-dimensional ice/land
//! split, which is unimodal (max of a decreasing and an increasing
//! function of the split point) and solved exactly by integer ternary
//! search. The outer dimensions are enumerated exhaustively when the
//! candidate list is small (allowed sets) and by a dense grid-with-
//! refinement otherwise (documented approximation for the unconstrained
//! 1/8° cases — in practice it recovers the optimum because the outer
//! objective is near-unimodal in `n_ocn`).

use crate::fit::FitSet;
use crate::layout_model::NodeFloors;
use crate::objective::Objective;
use hslb_cesm::{Allocation, Component, Layout};
use hslb_numerics::scalar;

/// Exhaustive/DP optimizer over a fitted curve set.
#[derive(Debug, Clone)]
pub struct ExhaustiveOptimizer<'a> {
    pub fits: &'a FitSet,
    pub layout: Layout,
    pub total_nodes: i64,
    /// Allowed ocean counts; `None` = all of `[1, N]` (grid-scanned when
    /// large).
    pub ocean_allowed: Option<Vec<i64>>,
    /// Allowed atmosphere counts; `None` = all of `[1, N]`.
    pub atm_allowed: Option<Vec<i64>>,
    /// Per-component memory floors (§III-C); defaults to 1 node each.
    pub floors: NodeFloors,
}

/// Result of an enumeration solve.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    pub allocation: Allocation,
    /// Objective value achieved (makespan for min-max, the min time for
    /// max-min, the time sum for min-sum).
    pub objective: f64,
    /// Candidate allocations evaluated.
    pub evaluations: usize,
    /// Candidates discarded without scoring (floor/cap/allowed-set
    /// violations) — the enumeration's pruning effectiveness.
    pub pruned: usize,
}

impl<'a> ExhaustiveOptimizer<'a> {
    /// Build for a layout with free ocean/atmosphere counts.
    pub fn new(fits: &'a FitSet, layout: Layout, total_nodes: i64) -> Self {
        ExhaustiveOptimizer {
            fits,
            layout,
            total_nodes,
            ocean_allowed: None,
            atm_allowed: None,
            floors: NodeFloors::default(),
        }
    }

    fn t(&self, c: Component, n: i64) -> f64 {
        self.fits.predict(c, n.max(1))
    }

    /// Best ice/land split of `budget` nodes for min-max style scoring:
    /// minimize `max(T_ice(n_i), T_lnd(n_l))` with `n_i + n_l = budget`.
    /// Exact by ternary search (unimodal in `n_i`).
    fn best_icelnd_split(&self, budget: i64) -> (i64, i64, f64) {
        let (ice_lo, lnd_lo) = (self.floors.ice.max(1), self.floors.lnd.max(1));
        if budget < ice_lo + lnd_lo {
            return (ice_lo, lnd_lo, f64::INFINITY);
        }
        let f = |ni: i64| {
            self.t(Component::Ice, ni)
                .max(self.t(Component::Lnd, budget - ni))
        };
        let (ni, val) = scalar::integer_ternary_min(f, ice_lo, budget - lnd_lo);
        (ni, budget - ni, val)
    }

    /// Score an outer choice `(n_atm, n_ocn)` under min-max; returns the
    /// makespan and the inner split.
    fn score_minmax(&self, n_atm: i64, n_ocn: i64) -> (f64, i64, i64) {
        match self.layout {
            Layout::Hybrid => {
                let (ni, nl, icelnd) = self.best_icelnd_split(n_atm);
                let total =
                    (icelnd + self.t(Component::Atm, n_atm)).max(self.t(Component::Ocn, n_ocn));
                (total, ni, nl)
            }
            Layout::SequentialWithOcean => {
                // ice/lnd/atm share the non-ocean nodes; each may use up to
                // the full remainder, and more nodes are never worse on
                // convex decreasing-then-flat curves *except* for the b·n^c
                // term — optimize each independently over [1, n_atm].
                let cap = n_atm; // caller passes cap = N − n_ocn here
                let ni = self
                    .fits
                    .optimized_curve(Component::Ice)
                    .argmin_nodes(self.floors.ice, cap);
                let nl = self
                    .fits
                    .optimized_curve(Component::Lnd)
                    .argmin_nodes(self.floors.lnd, cap);
                let na = self
                    .fits
                    .optimized_curve(Component::Atm)
                    .argmin_nodes(self.floors.atm, cap);
                let seq = self.t(Component::Ice, ni)
                    + self.t(Component::Lnd, nl)
                    + self.t(Component::Atm, na);
                (seq.max(self.t(Component::Ocn, n_ocn)), ni, nl)
            }
            Layout::FullySequential => {
                let cap = self.total_nodes;
                let ni = self
                    .fits
                    .optimized_curve(Component::Ice)
                    .argmin_nodes(self.floors.ice, cap);
                let nl = self
                    .fits
                    .optimized_curve(Component::Lnd)
                    .argmin_nodes(self.floors.lnd, cap);
                let na = self
                    .fits
                    .optimized_curve(Component::Atm)
                    .argmin_nodes(self.floors.atm, cap);
                let no = self
                    .fits
                    .optimized_curve(Component::Ocn)
                    .argmin_nodes(self.floors.ocn, cap);
                let total = self.t(Component::Ice, ni)
                    + self.t(Component::Lnd, nl)
                    + self.t(Component::Atm, na)
                    + self.t(Component::Ocn, no);
                let _ = (n_atm, n_ocn);
                (total, ni, nl)
            }
        }
    }

    /// Candidate outer values for a dimension: the allowed list when one
    /// exists (trimmed to the cap), otherwise a dense 1..=cap range when
    /// small, otherwise `None` (grid search is used instead).
    fn candidates(allowed: &Option<Vec<i64>>, lo: i64, cap: i64) -> Option<Vec<i64>> {
        let lo = lo.max(1);
        match allowed {
            Some(list) => Some(
                list.iter()
                    .copied()
                    .filter(|&v| v >= lo && v <= cap)
                    .collect(),
            ),
            // An empty list (cap < lo) is a real answer: no candidates.
            None if cap <= 4096 => Some((lo..=cap).collect()),
            None => None,
        }
    }

    /// `lo..=hi` thinned to every `step`-th value, but always containing
    /// both endpoints. A plain `step_by` can step over `hi` whenever
    /// `(hi − lo) % step ≠ 0`, silently excluding the cap — on monotone
    /// curves often the true optimum — from enumeration.
    fn strided_inclusive(lo: i64, hi: i64, step: i64) -> Vec<i64> {
        if hi < lo {
            return Vec::new();
        }
        let mut out: Vec<i64> = (lo..=hi).step_by(step.max(1) as usize).collect();
        if out.last() != Some(&hi) {
            out.push(hi);
        }
        out
    }

    /// Solve under the given objective.
    ///
    /// Panics when the candidate space is empty; fault-tolerant callers
    /// should use [`Self::try_solve`].
    #[allow(clippy::expect_used)] // panicking wrapper, documented above
    pub fn solve(&self, objective: Objective) -> ExhaustiveResult {
        self.try_solve(objective)
            .expect("no feasible candidate allocation (use try_solve on the fault path)")
    }

    /// Fallible solve: `None` when no candidate allocation exists — the
    /// target machine is smaller than the memory floors, an allowed set
    /// filters down to nothing, or every candidate scores infinite.
    pub fn try_solve(&self, objective: Objective) -> Option<ExhaustiveResult> {
        match objective {
            Objective::MinMax => self.solve_minmax(),
            Objective::SumTime => self.solve_sum(),
            Objective::MaxMin => self.solve_maxmin(),
        }
        .filter(|r| r.objective.is_finite())
    }

    fn solve_minmax(&self) -> Option<ExhaustiveResult> {
        let n = self.total_nodes;
        let mut evals = 0usize;
        let mut pruned = 0usize;
        let mut best: Option<(f64, Allocation)> = None;

        // Layout 3 needs no outer enumeration at all.
        if self.layout == Layout::FullySequential {
            let (total, ni, nl) = self.score_minmax(0, 0);
            let na = self
                .fits
                .optimized_curve(Component::Atm)
                .argmin_nodes(self.floors.atm, n);
            let no = self
                .fits
                .optimized_curve(Component::Ocn)
                .argmin_nodes(self.floors.ocn, n);
            return Some(ExhaustiveResult {
                allocation: Allocation {
                    lnd: nl,
                    ice: ni,
                    atm: na,
                    ocn: no,
                },
                objective: total,
                evaluations: 1,
                pruned: 0,
            });
        }

        let min_atm_side = (self.floors.ice + self.floors.lnd)
            .max(self.floors.atm)
            .max(2);
        let ocn_cap = n - min_atm_side; // leave room for the atm side
        let ocn_candidates = Self::candidates(&self.ocean_allowed, self.floors.ocn, ocn_cap);

        let mut consider_ocn = |n_ocn: i64, evals: &mut usize, pruned: &mut usize| -> f64 {
            let atm_budget = n - n_ocn;
            let inner_best = match self.layout {
                Layout::Hybrid => {
                    // Optimize n_atm ∈ allowed ∩ [floor, atm_budget].
                    match Self::candidates(&self.atm_allowed, min_atm_side, atm_budget) {
                        Some(cands) => {
                            let mut loc: Option<(f64, i64)> = None;
                            for &na in &cands {
                                if na < min_atm_side {
                                    *pruned += 1;
                                    continue;
                                }
                                *evals += 1;
                                let (total, _, _) = self.score_minmax(na, n_ocn);
                                if loc.is_none_or(|(b, _)| total < b) {
                                    loc = Some((total, na));
                                }
                            }
                            loc
                        }
                        None => {
                            // Free atmosphere: the inner objective (best
                            // ice/land split + T_atm) is near-unimodal in
                            // n_atm; ternary search finds its basin in
                            // O(log) evaluations.
                            let f = |na: i64| self.score_minmax(na, n_ocn).0;
                            let (na, total) = scalar::integer_ternary_min(
                                f,
                                min_atm_side.min(atm_budget),
                                atm_budget,
                            );
                            *evals += 2 * (64 - atm_budget.leading_zeros() as usize);
                            Some((total, na))
                        }
                    }
                }
                Layout::SequentialWithOcean => {
                    *evals += 1;
                    let (total, _, _) = self.score_minmax(atm_budget, n_ocn);
                    Some((total, atm_budget))
                }
                Layout::FullySequential => unreachable!(),
            };
            let Some((total, na)) = inner_best else {
                *pruned += 1;
                return f64::INFINITY;
            };
            let (_, ni, nl) = self.score_minmax(na, n_ocn);
            let alloc = match self.layout {
                Layout::Hybrid => Allocation {
                    lnd: nl,
                    ice: ni,
                    atm: na,
                    ocn: n_ocn,
                },
                Layout::SequentialWithOcean => {
                    let cap = atm_budget;
                    Allocation {
                        lnd: self
                            .fits
                            .optimized_curve(Component::Lnd)
                            .argmin_nodes(self.floors.lnd, cap),
                        ice: self
                            .fits
                            .optimized_curve(Component::Ice)
                            .argmin_nodes(self.floors.ice, cap),
                        atm: self
                            .fits
                            .optimized_curve(Component::Atm)
                            .argmin_nodes(self.floors.atm, cap),
                        ocn: n_ocn,
                    }
                }
                Layout::FullySequential => unreachable!(),
            };
            if best.as_ref().is_none_or(|(b, _)| total < *b) {
                best = Some((total, alloc));
            }
            total
        };

        match ocn_candidates {
            Some(cands) => {
                for &no in &cands {
                    consider_ocn(no, &mut evals, &mut pruned);
                }
            }
            None => {
                // Grid-with-refinement over the big unconstrained range.
                let f = |no: i64| consider_ocn(no, &mut evals, &mut pruned);
                let _ = scalar::integer_grid_min(f, 1, ocn_cap, 256);
            }
        }

        let (objective, allocation) = best?;
        Some(ExhaustiveResult {
            allocation,
            objective,
            evaluations: evals,
            pruned,
        })
    }

    fn solve_sum(&self) -> Option<ExhaustiveResult> {
        // Equation (3): each component independently picks its curve's
        // minimizer subject to the layout's node caps — the sum decouples
        // given the outer ocn choice.
        let n = self.total_nodes;
        let mut best: Option<(f64, Allocation)> = None;
        let mut evals = 0usize;
        let ocn_cap = match self.layout {
            Layout::FullySequential => n,
            _ => n - 2,
        };
        let cands =
            Self::candidates(&self.ocean_allowed, self.floors.ocn, ocn_cap).unwrap_or_else(|| {
                Self::strided_inclusive(self.floors.ocn.max(1), ocn_cap, (n / 2048).max(1))
            });
        let mut pruned = 0usize;
        for &no in &cands {
            let cap = match self.layout {
                Layout::Hybrid | Layout::SequentialWithOcean => n - no,
                Layout::FullySequential => n,
            };
            if cap < 3 {
                pruned += 1;
                continue;
            }
            let na = match &self.atm_allowed {
                Some(list) => list
                    .iter()
                    .copied()
                    .filter(|&v| v <= cap && v >= self.floors.atm)
                    .min_by(|&x, &y| {
                        hslb_numerics::float::cmp_f64(
                            self.t(Component::Atm, x),
                            self.t(Component::Atm, y),
                        )
                    })
                    .unwrap_or(self.floors.atm.max(1)),
                None => self
                    .fits
                    .optimized_curve(Component::Atm)
                    .argmin_nodes(self.floors.atm, cap),
            };
            let inner_cap = match self.layout {
                Layout::Hybrid => na,
                _ => cap,
            };
            if inner_cap < 2 {
                pruned += 1;
                continue;
            }
            // In layout 1, ice+lnd ≤ n_atm couples them; minimize the sum
            // over the split (unimodal).
            let (ni, nl) = match self.layout {
                Layout::Hybrid => {
                    let (ice_lo, lnd_lo) = (self.floors.ice.max(1), self.floors.lnd.max(1));
                    if inner_cap < ice_lo + lnd_lo {
                        pruned += 1;
                        continue;
                    }
                    let f =
                        |k: i64| self.t(Component::Ice, k) + self.t(Component::Lnd, inner_cap - k);
                    let (k, _) = scalar::integer_ternary_min(f, ice_lo, inner_cap - lnd_lo);
                    (k, inner_cap - k)
                }
                _ => (
                    self.fits
                        .optimized_curve(Component::Ice)
                        .argmin_nodes(self.floors.ice, inner_cap),
                    self.fits
                        .optimized_curve(Component::Lnd)
                        .argmin_nodes(self.floors.lnd, inner_cap),
                ),
            };
            evals += 1;
            let total = self.t(Component::Ice, ni)
                + self.t(Component::Lnd, nl)
                + self.t(Component::Atm, na)
                + self.t(Component::Ocn, no);
            if best.as_ref().is_none_or(|(b, _)| total < *b) {
                best = Some((
                    total,
                    Allocation {
                        lnd: nl,
                        ice: ni,
                        atm: na,
                        ocn: no,
                    },
                ));
            }
        }
        let (objective, allocation) = best?;
        Some(ExhaustiveResult {
            allocation,
            objective,
            evaluations: evals,
            pruned,
        })
    }

    fn solve_maxmin(&self) -> Option<ExhaustiveResult> {
        // Equation (2): maximize min_j T_j(n_j) under a *use-all-nodes*
        // budget (without it the trivial answer is one node each). The
        // search mirrors min-max but scores with the minimum.
        let n = self.total_nodes;
        let mut best: Option<(f64, Allocation)> = None;
        let mut evals = 0usize;
        let mut pruned = 0usize;
        let cands =
            Self::candidates(&self.ocean_allowed, self.floors.ocn, n - 3).unwrap_or_else(|| {
                Self::strided_inclusive(self.floors.ocn.max(1), n - 3, (n / 2048).max(1))
            });
        for &no in &cands {
            let na = n - no; // all remaining nodes go to the atm group
            if na < 3 {
                pruned += 1;
                continue;
            }
            if let Some(list) = &self.atm_allowed {
                if !list.contains(&na) {
                    pruned += 1;
                    continue;
                }
            }
            // Split ice/lnd to maximize min(T_i, T_l): unimodal again.
            let (ice_lo, lnd_lo) = (self.floors.ice.max(1), self.floors.lnd.max(1));
            if na < ice_lo + lnd_lo {
                pruned += 1;
                continue;
            }
            let f = |k: i64| {
                -(self
                    .t(Component::Ice, k)
                    .min(self.t(Component::Lnd, na - k)))
            };
            let (k, neg) = scalar::integer_ternary_min(f, ice_lo, na - lnd_lo);
            evals += 1;
            let score = (-neg)
                .min(self.t(Component::Atm, na))
                .min(self.t(Component::Ocn, no));
            if best.as_ref().is_none_or(|(b, _)| score > *b) {
                best = Some((
                    score,
                    Allocation {
                        lnd: na - k,
                        ice: k,
                        atm: na,
                        ocn: no,
                    },
                ));
            }
        }
        let (objective, allocation) = best?;
        Some(ExhaustiveResult {
            allocation,
            objective,
            evaluations: evals,
            pruned,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::FitSet;
    use hslb_nlsq::ScalingCurve;
    use std::collections::BTreeMap;

    fn toy_fits() -> FitSet {
        let mk = |a: f64, d: f64| ScalingCurve {
            a,
            b: 0.0,
            c: 1.0,
            d,
        };
        FitSet::from_curves(BTreeMap::from([
            (Component::Ice, mk(8_000.0, 2.0)),
            (Component::Lnd, mk(1_500.0, 1.0)),
            (Component::Atm, mk(30_000.0, 10.0)),
            (Component::Ocn, mk(9_000.0, 5.0)),
        ]))
        .unwrap()
    }

    #[test]
    fn minmax_beats_naive_allocations() {
        let fits = toy_fits();
        let opt = ExhaustiveOptimizer::new(&fits, Layout::Hybrid, 128);
        let res = opt.solve(Objective::MinMax);
        // Sanity: compare against a handful of hand-picked allocations.
        for (ni, nl, na, no) in [(30, 10, 100, 28), (40, 24, 64, 64), (10, 5, 96, 32)] {
            let icelnd = fits
                .predict(Component::Ice, ni)
                .max(fits.predict(Component::Lnd, nl));
            let t =
                (icelnd + fits.predict(Component::Atm, na)).max(fits.predict(Component::Ocn, no));
            assert!(res.objective <= t + 1e-9, "beaten by ({ni},{nl},{na},{no})");
        }
        // And the reported allocation achieves the reported objective.
        let a = res.allocation;
        let icelnd = fits
            .predict(Component::Ice, a.ice)
            .max(fits.predict(Component::Lnd, a.lnd));
        let t =
            (icelnd + fits.predict(Component::Atm, a.atm)).max(fits.predict(Component::Ocn, a.ocn));
        assert!((t - res.objective).abs() < 1e-9);
        assert!(a.ice + a.lnd <= a.atm);
        assert!(a.atm + a.ocn <= 128);
    }

    #[test]
    fn try_solve_reports_empty_candidate_space() {
        let fits = toy_fits();
        // Two nodes cannot host an atm side plus an ocean.
        let tiny = ExhaustiveOptimizer::new(&fits, Layout::Hybrid, 2);
        assert!(tiny.try_solve(Objective::MinMax).is_none());
        let ok = ExhaustiveOptimizer::new(&fits, Layout::Hybrid, 128);
        assert!(ok.try_solve(Objective::MinMax).is_some());
    }

    #[test]
    fn allowed_sets_are_respected() {
        let fits = toy_fits();
        let mut opt = ExhaustiveOptimizer::new(&fits, Layout::Hybrid, 128);
        opt.ocean_allowed = Some(vec![8, 16, 24, 32, 64]);
        let res = opt.solve(Objective::MinMax);
        assert!([8, 16, 24, 32, 64].contains(&res.allocation.ocn));
    }

    #[test]
    fn layout_ordering_matches_figure_4() {
        // Predicted: layout 1 ≈ layout 2 ≤ layout 3 (fully sequential is
        // worst).
        let fits = toy_fits();
        let t1 = ExhaustiveOptimizer::new(&fits, Layout::Hybrid, 256)
            .solve(Objective::MinMax)
            .objective;
        let t2 = ExhaustiveOptimizer::new(&fits, Layout::SequentialWithOcean, 256)
            .solve(Objective::MinMax)
            .objective;
        let t3 = ExhaustiveOptimizer::new(&fits, Layout::FullySequential, 256)
            .solve(Objective::MinMax)
            .objective;
        assert!(t1 <= t2 + 1e-9, "layout1 {t1} vs layout2 {t2}");
        assert!(t2 <= t3 + 1e-9, "layout2 {t2} vs layout3 {t3}");
    }

    #[test]
    fn maxmin_balances_components() {
        let fits = toy_fits();
        let opt = ExhaustiveOptimizer::new(&fits, Layout::Hybrid, 128);
        let res = opt.solve(Objective::MaxMin);
        // All nodes used on the concurrent dimension.
        assert_eq!(res.allocation.atm + res.allocation.ocn, 128);
        // The objective equals the smallest component time.
        let a = res.allocation;
        let tmin = fits
            .predict(Component::Ice, a.ice)
            .min(fits.predict(Component::Lnd, a.lnd))
            .min(fits.predict(Component::Atm, a.atm))
            .min(fits.predict(Component::Ocn, a.ocn));
        assert!((tmin - res.objective).abs() < 1e-9);
    }

    #[test]
    fn sum_objective_decouples() {
        let fits = toy_fits();
        let opt = ExhaustiveOptimizer::new(&fits, Layout::FullySequential, 128);
        let res = opt.solve(Objective::SumTime);
        // With monotone curves every component takes the max it can.
        assert_eq!(res.allocation.atm, 128);
        assert_eq!(res.allocation.ocn, 128);
    }

    #[test]
    fn strided_inclusive_keeps_both_endpoints() {
        assert_eq!(
            ExhaustiveOptimizer::strided_inclusive(1, 10, 3),
            vec![1, 4, 7, 10]
        );
        // (hi − lo) % step ≠ 0: hi must still be present.
        assert_eq!(
            ExhaustiveOptimizer::strided_inclusive(1, 9, 3),
            vec![1, 4, 7, 9]
        );
        assert_eq!(ExhaustiveOptimizer::strided_inclusive(5, 5, 2), vec![5]);
        assert!(ExhaustiveOptimizer::strided_inclusive(6, 5, 2).is_empty());
    }

    #[test]
    fn coarse_stride_does_not_skip_the_cap() {
        // Regression: above 4096 candidates the ocean range is thinned by
        // step = (n/2048).max(1). At n = 6000 that is step 2 starting at
        // 1 — every candidate odd — so the cap (6000, the optimum on a
        // monotone-decreasing curve) was silently never evaluated and the
        // solver returned ocn = 5999.
        let fits = toy_fits();
        let opt = ExhaustiveOptimizer::new(&fits, Layout::FullySequential, 6000);
        let res = opt.solve(Objective::SumTime);
        assert_eq!(res.allocation.ocn, 6000, "cap excluded from enumeration");
        assert!(res.evaluations > 0);
    }
}
