//! The four-step HSLB pipeline (§III-F).

use crate::data::BenchmarkData;
use crate::error::HslbError;
use crate::exhaustive::ExhaustiveOptimizer;
use crate::fit::{fit_all, FitSet};
use crate::layout_model::{build_layout_model, LayoutModelOptions};
use crate::objective::Objective;
use crate::report::{ArmReport, ExperimentReport};
use hslb_cesm::{Allocation, Component, Layout, RunResult, Simulator};
use hslb_minlp::{MinlpOptions, MinlpStatus};
use hslb_nlsq::ScalingFitOptions;

/// How to choose the benchmark node counts for the gather step.
#[derive(Debug, Clone)]
pub enum GatherPlan {
    /// §III-C's recipe: the smallest memory-feasible count, the largest
    /// available count, and `extra` log-spaced counts in between (the
    /// paper found 4 points per component sufficient).
    LogSpaced {
        min_nodes: i64,
        max_nodes: i64,
        points: usize,
    },
    /// Use exactly these counts per component.
    Explicit(Vec<i64>),
    /// Reuse previously gathered data, skipping the gather step entirely
    /// ("the data gathering step can be avoided altogether if reliable
    /// benchmarks are already available").
    Reuse(BenchmarkData),
}

impl GatherPlan {
    /// The default plan for a target machine size.
    pub fn default_for(total_nodes: i64) -> Self {
        GatherPlan::LogSpaced {
            min_nodes: (total_nodes / 128).max(8),
            max_nodes: total_nodes,
            points: 5,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct HslbOptions {
    pub layout: Layout,
    pub objective: Objective,
    /// Target total nodes N for the allocation.
    pub target_nodes: i64,
    pub gather: GatherPlan,
    pub fit: ScalingFitOptions,
    pub solver: MinlpOptions,
    /// Ice–land synchronization tolerance (Table I line 9), optional.
    pub tsync: Option<f64>,
}

impl HslbOptions {
    /// Defaults matching the paper's main experiments: layout 1, min-max,
    /// no T_sync.
    pub fn new(target_nodes: i64) -> Self {
        HslbOptions {
            layout: Layout::Hybrid,
            objective: Objective::MinMax,
            target_nodes,
            gather: GatherPlan::default_for(target_nodes),
            fit: ScalingFitOptions::default(),
            solver: MinlpOptions::default(),
            tsync: None,
        }
    }
}

/// Result of the solve step.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    pub allocation: Allocation,
    /// Predicted per-component times from the fitted curves.
    pub predicted: hslb_cesm::layout::ComponentTimes,
    /// Predicted total (the MINLP objective / enumeration score).
    pub predicted_total: f64,
    /// Solver statistics (absent when the enumeration path ran).
    pub solver_stats: Option<hslb_minlp::SolveStats>,
}

/// The HSLB pipeline bound to a simulator (the "CESM instance").
pub struct Hslb<'a> {
    pub sim: &'a Simulator,
    pub opts: HslbOptions,
}

impl<'a> Hslb<'a> {
    /// Create a pipeline.
    pub fn new(sim: &'a Simulator, opts: HslbOptions) -> Self {
        Hslb { sim, opts }
    }

    /// Project a desired benchmark count onto a component's allowed set
    /// (ocean counts are hard-coded in the CESM build; a benchmark run
    /// cannot use a count the model will not start with).
    fn project_count(&self, c: Component, n: i64) -> i64 {
        // §III-C: the smallest usable benchmark count is the memory floor.
        let floor = self.sim.config.memory_floor(c);
        let n = n.max(floor);
        let allowed = match c {
            Component::Ocn => self.sim.config.ocean_allowed.as_ref(),
            Component::Atm => self.sim.config.atm_allowed.as_ref(),
            _ => None,
        };
        match allowed {
            Some(list) => list
                .iter()
                .copied()
                .filter(|&v| v >= floor)
                .min_by_key(|&v| (v - n).abs())
                .unwrap_or(n),
            None => n.max(1),
        }
    }

    /// Step 1: gather benchmark data per the plan.
    pub fn gather(&self) -> BenchmarkData {
        match &self.opts.gather {
            GatherPlan::Reuse(data) => data.clone(),
            GatherPlan::Explicit(counts) => self.gather_at(counts),
            GatherPlan::LogSpaced {
                min_nodes,
                max_nodes,
                points,
            } => {
                let (lo, hi) = (*min_nodes.min(max_nodes), *max_nodes.max(min_nodes));
                let k = (*points).max(2);
                let counts: Vec<i64> = (0..k)
                    .map(|i| {
                        let f = i as f64 / (k - 1) as f64;
                        ((lo as f64).ln() + f * ((hi as f64).ln() - (lo as f64).ln())).exp()
                            as i64
                    })
                    .collect();
                self.gather_at(&counts)
            }
        }
    }

    fn gather_at(&self, counts: &[i64]) -> BenchmarkData {
        let mut data = BenchmarkData::new();
        for &c in &Component::OPTIMIZED {
            let mut used = std::collections::BTreeSet::new();
            for (i, &n) in counts.iter().enumerate() {
                let m = self.project_count(c, n);
                if !used.insert(m) {
                    continue; // projection collapsed two counts
                }
                data.push(c, m as f64, self.sim.component_time(c, m, i as u64));
            }
        }
        data
    }

    /// Step 2: fit the four performance curves.
    pub fn fit(&self, data: &BenchmarkData) -> Result<FitSet, HslbError> {
        fit_all(data, &self.opts.fit)
    }

    /// Step 3: solve for the optimal allocation given fitted curves.
    ///
    /// Convex objectives go through the MINLP branch-and-bound; `max-min`
    /// is routed to the enumeration optimizer (see [`Objective`]).
    pub fn solve(&self, fits: &FitSet) -> Result<SolveOutcome, HslbError> {
        let alloc = if self.opts.objective.is_convex_minlp() {
            let lm = build_layout_model(
                fits,
                &LayoutModelOptions {
                    layout: self.opts.layout,
                    objective: self.opts.objective,
                    total_nodes: self.opts.target_nodes,
                    floors: crate::layout_model::NodeFloors::from_config(&self.sim.config),
                    ocean_allowed: self.sim.config.ocean_allowed.clone(),
                    atm_allowed: self.sim.config.atm_allowed.clone(),
                    tsync: self.opts.tsync,
                },
            )?;
            let ir = hslb_minlp::compile(&lm.model)?;
            let sol = if self.opts.solver.threads > 1 {
                hslb_minlp::solve_parallel(&ir, &self.opts.solver)
            } else {
                hslb_minlp::solve(&ir, &self.opts.solver)
            };
            match sol.status {
                MinlpStatus::Optimal | MinlpStatus::NodeLimitWithIncumbent => {
                    let allocation = lm.allocation(&sol.x);
                    return Ok(self.outcome(fits, allocation, Some(sol.stats)));
                }
                MinlpStatus::Infeasible => {
                    return Err(HslbError::Infeasible {
                        detail: format!(
                            "no feasible {} allocation of {} nodes",
                            self.opts.layout, self.opts.target_nodes
                        ),
                    })
                }
                MinlpStatus::NodeLimitNoIncumbent => {
                    return Err(HslbError::SolverIncomplete {
                        detail: format!("node limit {} reached", self.opts.solver.node_limit),
                    })
                }
            }
        } else {
            let mut opt =
                ExhaustiveOptimizer::new(fits, self.opts.layout, self.opts.target_nodes);
            opt.ocean_allowed = self.sim.config.ocean_allowed.clone();
            opt.atm_allowed = self.sim.config.atm_allowed.clone();
            opt.floors = crate::layout_model::NodeFloors::from_config(&self.sim.config);
            opt.solve(self.opts.objective).allocation
        };
        Ok(self.outcome(fits, alloc, None))
    }

    fn outcome(
        &self,
        fits: &FitSet,
        allocation: Allocation,
        solver_stats: Option<hslb_minlp::SolveStats>,
    ) -> SolveOutcome {
        let predicted = hslb_cesm::layout::ComponentTimes {
            lnd: fits.predict(Component::Lnd, allocation.lnd),
            ice: fits.predict(Component::Ice, allocation.ice),
            atm: fits.predict(Component::Atm, allocation.atm),
            ocn: fits.predict(Component::Ocn, allocation.ocn),
        };
        SolveOutcome {
            predicted_total: self.opts.layout.total_time(&predicted),
            allocation,
            predicted,
            solver_stats,
        }
    }

    /// Step 4: execute the allocation on the simulator.
    pub fn execute(&self, allocation: &Allocation) -> Result<RunResult, HslbError> {
        self.sim
            .run_case(allocation, self.opts.layout, 0xE0)
            .map_err(|detail| HslbError::Execute { detail })
    }

    /// The whole pipeline: gather → fit → solve → execute, with an
    /// optional manual-baseline arm for comparison.
    pub fn run(&self, manual: Option<Allocation>) -> Result<ExperimentReport, HslbError> {
        let data = self.gather();
        let fits = self.fit(&data)?;
        let solved = self.solve(&fits)?;
        let actual = self.execute(&solved.allocation)?;

        let manual_arm = match manual {
            Some(alloc) => {
                let run = self
                    .sim
                    .run_case(&alloc, self.opts.layout, 0xA0)
                    .map_err(|detail| HslbError::Execute { detail })?;
                Some(ArmReport {
                    allocation: alloc,
                    predicted: None,
                    predicted_total: None,
                    actual: run.times,
                    actual_total: run.total,
                })
            }
            None => None,
        };

        Ok(ExperimentReport {
            resolution: self.sim.resolution(),
            layout: self.opts.layout,
            objective: self.opts.objective,
            target_nodes: self.opts.target_nodes,
            fits: fits
                .iter()
                .map(|(c, f)| (c, f.curve, f.r_squared))
                .collect(),
            manual: manual_arm,
            hslb: ArmReport {
                allocation: solved.allocation,
                predicted: Some(solved.predicted),
                predicted_total: Some(solved.predicted_total),
                actual: actual.times,
                actual_total: actual.total,
            },
            solver_stats: solved.solver_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_respects_allowed_sets() {
        let sim = Simulator::one_degree(20);
        let h = Hslb::new(&sim, HslbOptions::new(128));
        let data = h.gather();
        assert!(data.covers_optimized(3));
        // Every ocean observation must be an allowed (even/768) count.
        for &(n, _) in data.of(Component::Ocn) {
            let n = n as i64;
            assert!(
                (n % 2 == 0 && n <= 480) || n == 768,
                "ocean benchmarked at disallowed count {n}"
            );
        }
    }

    #[test]
    fn explicit_plan_deduplicates_after_projection() {
        let sim = Simulator::one_degree(21);
        let mut opts = HslbOptions::new(128);
        opts.gather = GatherPlan::Explicit(vec![23, 24, 25, 128]); // ocn projects 23→24? (24 even)
        let h = Hslb::new(&sim, opts);
        let data = h.gather();
        // lnd keeps all 4 distinct counts; ocn collapses 23/24/25 → {24} (23→24? 25→24/26).
        assert_eq!(data.count(Component::Lnd), 4);
        assert!(data.count(Component::Ocn) < 4);
    }
}
