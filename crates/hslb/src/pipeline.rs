//! The four-step HSLB pipeline (§III-F), hardened against benchmark
//! faults: the gather step retries failed/hung/garbage runs with
//! exponential backoff and substitutes replacement node counts for
//! irrecoverable points, and the solve step walks a degradation ladder
//! (MINLP → exhaustive enumeration → simulated expert) instead of dying
//! with the first rung.

use crate::data::BenchmarkData;
use crate::error::HslbError;
use crate::exhaustive::ExhaustiveOptimizer;
use crate::fit::{fit_all_warm, FitSet, WarmStartCache};
use crate::layout_model::{build_layout_model, LayoutModelOptions};
use crate::manual::SimulatedExpert;
use crate::objective::Objective;
use crate::report::{ArmReport, ExperimentReport};
use crate::resilience::{GatherReport, ResilienceReport, RetryPolicy, SolverRung};
use hslb_cesm::{Allocation, BenchFault, Component, Layout, RunResult, Simulator};
use hslb_minlp::{MinlpOptions, MinlpStatus};
use hslb_nlsq::ScalingFitOptions;

/// How to choose the benchmark node counts for the gather step.
#[derive(Debug, Clone)]
pub enum GatherPlan {
    /// §III-C's recipe: the smallest memory-feasible count, the largest
    /// available count, and `extra` log-spaced counts in between (the
    /// paper found 4 points per component sufficient).
    LogSpaced {
        min_nodes: i64,
        max_nodes: i64,
        points: usize,
    },
    /// Use exactly these counts per component.
    Explicit(Vec<i64>),
    /// Reuse previously gathered data, skipping the gather step entirely
    /// ("the data gathering step can be avoided altogether if reliable
    /// benchmarks are already available").
    Reuse(BenchmarkData),
}

impl GatherPlan {
    /// The default plan for a target machine size.
    pub fn default_for(total_nodes: i64) -> Self {
        GatherPlan::LogSpaced {
            min_nodes: (total_nodes / 128).max(8),
            max_nodes: total_nodes,
            points: 5,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct HslbOptions {
    pub layout: Layout,
    pub objective: Objective,
    /// Target total nodes N for the allocation.
    pub target_nodes: i64,
    pub gather: GatherPlan,
    pub fit: ScalingFitOptions,
    pub solver: MinlpOptions,
    /// Ice–land synchronization tolerance (Table I line 9), optional.
    pub tsync: Option<f64>,
    /// Warm-start cache shared across pipelines of the same machine and
    /// resolution: each fit seeds from the previous scenario's fitted
    /// curves. `None` (the default) fits cold every time.
    pub warm_cache: Option<WarmStartCache>,
    /// Retry/backoff policy for benchmark and coupled runs.
    pub retry: RetryPolicy,
    /// When set, the solve step uses these curves instead of fitting the
    /// gathered data — the injection hook for flowing a synthetic fit set
    /// (a seeded non-convex instance, say) through the full audit and
    /// degradation ladder. `None` (the default) fits normally.
    pub curve_override: Option<FitSet>,
    /// Telemetry sink for pipeline events. Disabled by default;
    /// instrumentation is strictly passive — the allocation produced is
    /// bit-identical with or without a sink attached. The same handle is
    /// injected into the MINLP solver for the solve step.
    pub telemetry: hslb_telemetry::Telemetry,
}

impl HslbOptions {
    /// Defaults matching the paper's main experiments: layout 1, min-max,
    /// no T_sync.
    pub fn new(target_nodes: i64) -> Self {
        HslbOptions {
            layout: Layout::Hybrid,
            objective: Objective::MinMax,
            target_nodes,
            gather: GatherPlan::default_for(target_nodes),
            // The pipeline opts into the multistart early-stop fast path:
            // the fitted curves are bit-identical with it on or off
            // (asserted by tests/fast_path.rs), only the redundant starts
            // are skipped.
            fit: ScalingFitOptions {
                early_stop: Some(hslb_nlsq::EarlyStopPolicy::default()),
                ..ScalingFitOptions::default()
            },
            solver: MinlpOptions::default(),
            tsync: None,
            warm_cache: None,
            retry: RetryPolicy::default(),
            curve_override: None,
            telemetry: hslb_telemetry::Telemetry::disabled(),
        }
    }
}

/// The reusable intermediates of one pipeline run (see
/// [`Hslb::run_with_artifacts`]): the gathered benchmark data and the
/// fitted curves. A request with the same machine, resolution, gather
/// plan and fit options produces bit-identical artifacts, so a service
/// can cache them and replay only the solve/execute steps.
#[derive(Debug, Clone)]
pub struct PipelineArtifacts {
    pub data: BenchmarkData,
    /// `None` when every fit rung failed and the run degraded to the
    /// fit-free simulated expert.
    pub fits: Option<FitSet>,
}

/// Result of the solve step.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    pub allocation: Allocation,
    /// Predicted per-component times from the fitted curves.
    pub predicted: hslb_cesm::layout::ComponentTimes,
    /// Predicted total (the MINLP objective / enumeration score).
    pub predicted_total: f64,
    /// Solver statistics (absent when the enumeration path ran).
    pub solver_stats: Option<hslb_minlp::SolveStats>,
    /// The pre-solve instance audit. `Some(passing)` on the MINLP rung;
    /// `Some(failing)` when a rejected audit routed the solve to the
    /// exhaustive rung; `None` when no MINLP was attempted (non-convex
    /// objectives, fit-free rungs).
    pub audit: Option<hslb_audit::InstanceAudit>,
}

/// The HSLB pipeline bound to a simulator (the "CESM instance").
pub struct Hslb<'a> {
    pub sim: &'a Simulator,
    pub opts: HslbOptions,
}

impl<'a> Hslb<'a> {
    /// Create a pipeline.
    pub fn new(sim: &'a Simulator, opts: HslbOptions) -> Self {
        Hslb { sim, opts }
    }

    /// Project a desired benchmark count onto a component's allowed set
    /// (ocean counts are hard-coded in the CESM build; a benchmark run
    /// cannot use a count the model will not start with).
    fn project_count(&self, c: Component, n: i64) -> i64 {
        // §III-C: the smallest usable benchmark count is the memory floor.
        let floor = self.sim.config.memory_floor(c);
        let n = n.max(floor);
        let allowed = match c {
            Component::Ocn => self.sim.config.ocean_allowed.as_ref(),
            Component::Atm => self.sim.config.atm_allowed.as_ref(),
            _ => None,
        };
        match allowed {
            Some(list) => list
                .iter()
                .copied()
                .filter(|&v| v >= floor)
                .min_by_key(|&v| (v - n).abs())
                .unwrap_or(n),
            None => n.max(1),
        }
    }

    /// Step 1: gather benchmark data per the plan, discarding the fault
    /// accounting (see [`Self::gather_resilient`]).
    pub fn gather(&self) -> BenchmarkData {
        self.gather_resilient().0
    }

    /// Step 1, with the campaign's fault accounting: every benchmark run
    /// goes through the [`RetryPolicy`] — bounded retries with
    /// exponential backoff for failed/hung runs, a plausibility window
    /// that rejects corrupt timings, and replacement node counts for
    /// points that stay dead after every retry. On a fault-free
    /// simulator this produces bit-identical data to the historical
    /// gather.
    pub fn gather_resilient(&self) -> (BenchmarkData, GatherReport) {
        let _span = self.opts.telemetry.span("gather");
        let (data, report) = match &self.opts.gather {
            GatherPlan::Reuse(data) => {
                let mut report = GatherReport::default();
                for c in Component::OPTIMIZED {
                    report.points.insert(c, data.count(c));
                }
                (data.clone(), report)
            }
            GatherPlan::Explicit(counts) => self.gather_at(counts),
            GatherPlan::LogSpaced {
                min_nodes,
                max_nodes,
                points,
            } => {
                let (lo, hi) = (*min_nodes.min(max_nodes), *max_nodes.max(min_nodes));
                let k = (*points).max(2);
                let counts: Vec<i64> = (0..k)
                    .map(|i| {
                        let f = i as f64 / (k - 1) as f64;
                        ((lo as f64).ln() + f * ((hi as f64).ln() - (lo as f64).ln())).exp() as i64
                    })
                    .collect();
                self.gather_at(&counts)
            }
        };
        self.emit_gather_telemetry(&report);
        (data, report)
    }

    /// Campaign-level gather accounting for the telemetry sink.
    fn emit_gather_telemetry(&self, report: &GatherReport) {
        let tel = &self.opts.telemetry;
        if !tel.is_enabled() {
            return;
        }
        tel.counter_add("gather.attempts", report.attempts as u64);
        tel.counter_add("gather.succeeded", report.succeeded as u64);
        tel.counter_add("gather.failed_runs", report.failed_runs as u64);
        tel.counter_add("gather.hung_runs", report.hung_runs as u64);
        tel.counter_add("gather.garbage_discarded", report.garbage_discarded as u64);
        tel.counter_add("gather.retried_points", report.retried_points as u64);
        tel.counter_add(
            "gather.substituted_points",
            report.substituted_points as u64,
        );
        tel.counter_add("gather.abandoned_points", report.abandoned_points as u64);
        tel.point(
            "gather.done",
            &[
                ("backoff_s", report.backoff_seconds),
                ("wasted_s", report.wasted_seconds),
                ("min_points", report.min_component_points() as f64),
            ],
            &[],
        );
    }

    fn gather_at(&self, counts: &[i64]) -> (BenchmarkData, GatherReport) {
        let mut data = BenchmarkData::new();
        let mut report = GatherReport::default();
        for &c in &Component::OPTIMIZED {
            let mut used = std::collections::BTreeSet::new();
            let mut kept = 0usize;
            for (i, &n) in counts.iter().enumerate() {
                let m = self.project_count(c, n);
                if !used.insert(m) {
                    continue; // projection collapsed two counts
                }
                if let Some(secs) = self.measure_with_retry(c, m, i as u64, &mut report) {
                    data.push(c, m as f64, secs);
                    kept += 1;
                    continue;
                }
                // The planned count is irrecoverable (a bad node set, a
                // poisoned queue slot): the curve shape matters more than
                // the exact abscissa, so try nearby replacement counts.
                let mut rescued = false;
                for (k, cand) in self
                    .substitute_candidates(c, m, &used)
                    .into_iter()
                    .enumerate()
                {
                    let base = i as u64 + ((k as u64 + 1) << 12);
                    if let Some(secs) = self.measure_with_retry(c, cand, base, &mut report) {
                        used.insert(cand);
                        data.push(c, cand as f64, secs);
                        report.substituted_points += 1;
                        kept += 1;
                        rescued = true;
                        break;
                    }
                }
                if !rescued {
                    report.abandoned_points += 1;
                }
            }
            report.points.insert(c, kept);
        }
        (data, report)
    }

    /// One benchmark point under the retry policy. Attempt 0 reuses the
    /// historical run id so a fault-free campaign reproduces the exact
    /// noise stream of the pre-fault-injection gather.
    fn measure_with_retry(
        &self,
        c: Component,
        nodes: i64,
        base_run: u64,
        report: &mut GatherReport,
    ) -> Option<f64> {
        let policy = &self.opts.retry;
        let tel = &self.opts.telemetry;
        let component = c.to_string();
        let mut retried = false;
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 {
                let wait = policy.backoff_before(attempt);
                report.backoff_seconds += wait;
                tel.record("gather.backoff_s", wait);
                if !retried {
                    report.retried_points += 1;
                    retried = true;
                }
            }
            report.attempts += 1;
            let run_id = base_run + (attempt as u64) * 1000;
            let t0 = std::time::Instant::now();
            let res = self
                .sim
                .try_component_time(c, nodes, run_id, policy.run_budget_seconds);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let emit = |status: &str, secs: f64| {
                tel.point(
                    "gather.run",
                    &[
                        ("nodes", nodes as f64),
                        ("secs", secs),
                        ("attempt", attempt as f64),
                        ("wall_ms", wall_ms),
                    ],
                    &[("component", &component), ("status", status)],
                );
            };
            match res {
                Ok(secs) if policy.plausible(secs) => {
                    report.succeeded += 1;
                    emit("ok", secs);
                    return Some(secs);
                }
                Ok(secs) => {
                    report.garbage_discarded += 1;
                    emit("garbage", secs);
                }
                Err(BenchFault::Failed { .. }) => {
                    report.failed_runs += 1;
                    emit("failed", f64::NAN);
                }
                Err(BenchFault::Hung {
                    elapsed_seconds, ..
                }) => {
                    report.hung_runs += 1;
                    report.wasted_seconds += elapsed_seconds;
                    emit("hung", elapsed_seconds);
                }
            }
        }
        None
    }

    /// Nearby replacement counts for an irrecoverable benchmark point,
    /// projected onto the component's allowed set and deduplicated
    /// against counts already measured.
    fn substitute_candidates(
        &self,
        c: Component,
        m: i64,
        used: &std::collections::BTreeSet<i64>,
    ) -> Vec<i64> {
        let step = (m / 8).max(1);
        let mut out = Vec::new();
        for delta in [step, -step, 2 * step, -2 * step] {
            let cand = self.project_count(c, (m + delta).max(1));
            if cand >= 1 && !used.contains(&cand) && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }

    /// Step 2: fit the four performance curves. When a
    /// [`WarmStartCache`] is configured, each fit seeds from the
    /// previous scenario's curve and the fitted curves are written back.
    pub fn fit(&self, data: &BenchmarkData) -> Result<FitSet, HslbError> {
        let _span = self.opts.telemetry.span("fit");
        let fits = fit_all_warm(data, &self.opts.fit, self.opts.warm_cache.as_ref())?;
        if self.opts.telemetry.is_enabled() {
            for (c, f) in fits.iter() {
                self.opts.telemetry.point(
                    "fit.component",
                    &[
                        ("r2", f.r_squared),
                        ("points", f.points as f64),
                        ("lm_iterations", f.lm_iterations as f64),
                        ("basin_hits", f.basin_hits as f64),
                        ("starts_run", f.starts_run as f64),
                        ("early_stopped", f64::from(u8::from(f.early_stopped))),
                    ],
                    &[("component", &c.to_string())],
                );
            }
        }
        Ok(fits)
    }

    /// Step 3: solve for the optimal allocation given fitted curves.
    ///
    /// Convex objectives go through the MINLP branch-and-bound; `max-min`
    /// is routed to the enumeration optimizer (see [`Objective`]). This
    /// is the strict, single-rung API: solver limits and deadlines
    /// without an incumbent are errors. [`Self::run`] instead walks the
    /// degradation ladder.
    pub fn solve(&self, fits: &FitSet) -> Result<SolveOutcome, HslbError> {
        if self.opts.objective.is_convex_minlp() {
            self.solve_minlp(fits).map(|(outcome, _)| outcome)
        } else {
            self.solve_exhaustive(fits)
                .map(|res| self.outcome(fits, res.allocation, None))
                .ok_or_else(|| HslbError::Infeasible {
                    detail: format!(
                        "no candidate {} allocation of {} nodes",
                        self.opts.layout, self.opts.target_nodes
                    ),
                })
        }
    }

    /// The enumeration rung, with its candidate accounting forwarded to
    /// the telemetry sink.
    fn solve_exhaustive(&self, fits: &FitSet) -> Option<crate::exhaustive::ExhaustiveResult> {
        let res = self.exhaustive(fits).try_solve(self.opts.objective);
        if let Some(r) = &res {
            self.opts
                .telemetry
                .counter_add("exhaustive.evaluated", r.evaluations as u64);
            self.opts
                .telemetry
                .counter_add("exhaustive.pruned", r.pruned as u64);
        }
        res
    }

    fn exhaustive<'f>(&self, fits: &'f FitSet) -> ExhaustiveOptimizer<'f> {
        let mut opt = ExhaustiveOptimizer::new(fits, self.opts.layout, self.opts.target_nodes);
        opt.ocean_allowed = self.sim.config.ocean_allowed.clone();
        opt.atm_allowed = self.sim.config.atm_allowed.clone();
        opt.floors = crate::layout_model::NodeFloors::from_config(&self.sim.config);
        opt
    }

    /// The MINLP rung. `Ok((outcome, with_gap))` carries whether the
    /// solver stopped at a limit with an unproven gap (best incumbent
    /// accepted, accuracy degraded); errors describe why the rung
    /// produced nothing.
    fn solve_minlp(&self, fits: &FitSet) -> Result<(SolveOutcome, bool), HslbError> {
        let lm = build_layout_model(
            fits,
            &LayoutModelOptions {
                layout: self.opts.layout,
                objective: self.opts.objective,
                total_nodes: self.opts.target_nodes,
                floors: crate::layout_model::NodeFloors::from_config(&self.sim.config),
                ocean_allowed: self.sim.config.ocean_allowed.clone(),
                atm_allowed: self.sim.config.atm_allowed.clone(),
                tsync: self.opts.tsync,
            },
        )?;

        // Level 1 instance audit: branch-and-bound may only claim a
        // global optimum on an instance whose curves certify convex and
        // whose model matches the declared layout's Table I structure. A
        // failed audit is an error here — the ladder catches it and
        // degrades to the exhaustive rung with the audit attached.
        let audit = self.audit_instance(fits, &lm.model);
        self.emit_audit_telemetry(&audit);
        if !audit.passed() {
            return Err(HslbError::AuditRejected {
                audit: Box::new(audit),
            });
        }

        let ir = hslb_minlp::compile(&lm.model)?;
        // Hand the pipeline's sink to the solver unless the caller
        // already wired a dedicated one into the solver options.
        let mut solver = self.opts.solver.clone();
        if !solver.telemetry.is_enabled() {
            solver.telemetry = self.opts.telemetry.clone();
        }
        let mut sol = if solver.threads > 1 {
            hslb_minlp::solve_parallel(&ir, &solver)
        } else {
            hslb_minlp::solve(&ir, &solver)
        };
        sol.stats.audit = Some(hslb_minlp::AuditStamp {
            passed: audit.passed(),
            components: audit.certificate.components.len(),
            violations: audit.violation_count(),
            summary: audit.summary(),
        });
        match sol.status {
            MinlpStatus::Optimal => {
                let allocation = lm.allocation(&sol.x);
                let mut outcome = self.outcome(fits, allocation, Some(sol.stats));
                outcome.audit = Some(audit);
                Ok((outcome, false))
            }
            MinlpStatus::NodeLimitWithIncumbent | MinlpStatus::TimeLimitWithIncumbent => {
                // Best incumbent with an unproven gap — usable, degraded.
                let allocation = lm.allocation(&sol.x);
                let mut outcome = self.outcome(fits, allocation, Some(sol.stats));
                outcome.audit = Some(audit);
                Ok((outcome, true))
            }
            MinlpStatus::Infeasible => Err(HslbError::Infeasible {
                detail: format!(
                    "no feasible {} allocation of {} nodes",
                    self.opts.layout, self.opts.target_nodes
                ),
            }),
            MinlpStatus::NodeLimitNoIncumbent => Err(HslbError::SolverIncomplete {
                detail: format!(
                    "node limit {} reached without an incumbent",
                    self.opts.solver.node_limit
                ),
            }),
            MinlpStatus::TimeLimitNoIncumbent => Err(HslbError::SolverIncomplete {
                detail: format!(
                    "wall-clock deadline {:?} expired without an incumbent",
                    self.opts.solver.time_limit
                ),
            }),
        }
    }

    /// Run the Level 1 instance audit for a generated layout model: the
    /// fitted curves' convexity certificate plus the model
    /// well-formedness checks, against expectations derived from the
    /// pipeline's own configuration.
    fn audit_instance(
        &self,
        fits: &FitSet,
        model: &hslb_model::Model,
    ) -> hslb_audit::InstanceAudit {
        let curves: Vec<(Component, hslb_nlsq::ScalingCurve)> =
            fits.iter().map(|(c, f)| (c, f.curve)).collect();
        let expect = hslb_audit::ModelExpectations {
            layout: self.opts.layout,
            shape: match self.opts.objective {
                Objective::SumTime => hslb_audit::ObjectiveShape::SumTime,
                _ => hslb_audit::ObjectiveShape::MinMax,
            },
            total_nodes: self.opts.target_nodes,
            tsync: self.opts.tsync.is_some(),
            ocean_set: self.sim.config.ocean_allowed.is_some(),
            atm_set: self.sim.config.atm_allowed.is_some(),
        };
        hslb_audit::audit_instance(&curves, model, &expect)
    }

    /// Per-solve audit accounting for the telemetry sink.
    fn emit_audit_telemetry(&self, audit: &hslb_audit::InstanceAudit) {
        let tel = &self.opts.telemetry;
        if !tel.is_enabled() {
            return;
        }
        for c in &audit.certificate.components {
            tel.point(
                "audit.component",
                &[
                    ("passed", f64::from(u8::from(c.passed()))),
                    ("violations", c.violations.len() as f64),
                ],
                &[("component", &c.component.to_string())],
            );
        }
        tel.point(
            "audit.done",
            &[
                ("passed", f64::from(u8::from(audit.passed()))),
                ("violations", audit.violation_count() as f64),
                ("convex_verified", audit.model.convex_verified as f64),
                ("sos_sets", audit.model.sos_sets_checked as f64),
            ],
            &[],
        );
    }

    /// Rungs 1–2 of the degradation ladder (both need fitted curves).
    /// `None` means rung 3 (the fit-free simulated expert) is next;
    /// every fallback taken is appended to `fallbacks`.
    fn solve_ladder(
        &self,
        fits: &FitSet,
        fallbacks: &mut Vec<String>,
        degraded: &mut bool,
    ) -> Option<(SolveOutcome, SolverRung)> {
        let mut rejected_audit = None;
        if self.opts.objective.is_convex_minlp() {
            match self.solve_minlp(fits) {
                Ok((outcome, with_gap)) => {
                    *degraded |= with_gap;
                    return Some((outcome, SolverRung::Minlp));
                }
                Err(e) => {
                    self.opts.telemetry.point(
                        "ladder.fallback",
                        &[],
                        &[("from", "minlp"), ("cause", &e.to_string())],
                    );
                    fallbacks.push(format!("MINLP rung: {e}"));
                    *degraded = true;
                    // A rejected audit rides along to the report: the
                    // exhaustive answer is honest about *why* it is not a
                    // certified global optimum.
                    if let HslbError::AuditRejected { audit } = e {
                        rejected_audit = Some(*audit);
                    }
                }
            }
        }
        match self.solve_exhaustive(fits) {
            Some(res) => {
                let mut outcome = self.outcome(fits, res.allocation, None);
                outcome.audit = rejected_audit;
                Some((outcome, SolverRung::Exhaustive))
            }
            None => {
                self.opts.telemetry.point(
                    "ladder.fallback",
                    &[],
                    &[
                        ("from", "exhaustive"),
                        ("cause", "no feasible candidate allocation"),
                    ],
                );
                fallbacks.push("exhaustive rung: no feasible candidate allocation".into());
                None
            }
        }
    }

    fn outcome(
        &self,
        fits: &FitSet,
        allocation: Allocation,
        solver_stats: Option<hslb_minlp::SolveStats>,
    ) -> SolveOutcome {
        let predicted = hslb_cesm::layout::ComponentTimes {
            lnd: fits.predict(Component::Lnd, allocation.lnd),
            ice: fits.predict(Component::Ice, allocation.ice),
            atm: fits.predict(Component::Atm, allocation.atm),
            ocn: fits.predict(Component::Ocn, allocation.ocn),
        };
        SolveOutcome {
            predicted_total: self.opts.layout.total_time(&predicted),
            allocation,
            predicted,
            solver_stats,
            audit: None,
        }
    }

    /// Step 4: execute the allocation on the simulator (one attempt; the
    /// full pipeline retries, see [`Self::run`]).
    pub fn execute(&self, allocation: &Allocation) -> Result<RunResult, HslbError> {
        self.sim
            .run_case(allocation, self.opts.layout, 0xE0)
            .map_err(|detail| HslbError::Execute { detail })
    }

    /// Execute a coupled run with bounded retries (a valid allocation
    /// can still lose its run to the cluster). Attempt 0 reuses the
    /// historical run id so fault-free behavior is unchanged.
    fn execute_with_retry(
        &self,
        allocation: &Allocation,
        base_run: u64,
    ) -> Result<(RunResult, usize), String> {
        // Coupled runs are the expensive last-mile step: grant a little
        // headroom beyond the benchmark retry budget.
        let attempts = self.opts.retry.max_attempts.max(1) + 2;
        let mut last = String::new();
        for attempt in 0..attempts {
            let run_id = base_run + (attempt as u64) * 0x100;
            match self.sim.run_case(allocation, self.opts.layout, run_id) {
                Ok(run) => return Ok((run, attempt + 1)),
                Err(detail) => last = detail,
            }
        }
        Err(format!("{last} (after {attempts} attempts)"))
    }

    /// The whole pipeline: gather → fit → solve → execute, with an
    /// optional manual-baseline arm for comparison.
    ///
    /// This is the fault-tolerant entry point. Benchmark runs are
    /// retried per the [`RetryPolicy`]; the solve step walks the
    /// degradation ladder — MINLP branch-and-bound, then exhaustive
    /// enumeration over the fitted curves, then (when no curves could be
    /// fitted at all) the simulated-expert heuristic — and the report's
    /// [`ResilienceReport`] records the rung that won, every fallback
    /// reason, and whether accuracy is degraded. A manual arm whose
    /// coupled runs all fail is dropped with a note rather than failing
    /// the experiment. The only errors left are the truly fatal ones:
    /// every ladder rung exhausted, or the final allocation's coupled
    /// run failing every retry.
    pub fn run(&self, manual: Option<Allocation>) -> Result<ExperimentReport, HslbError> {
        self.run_with_artifacts(manual).map(|(report, _)| report)
    }

    /// [`Self::run`], additionally handing back the gathered benchmark
    /// data and the fitted curves it used. The report is bit-identical to
    /// `run`'s — this only exposes the intermediates so a caller (the
    /// tuning service's fit-level cache) can replay the solve step for a
    /// *compatible* request via [`GatherPlan::Reuse`] +
    /// [`HslbOptions::curve_override`] without re-gathering or re-fitting.
    pub fn run_with_artifacts(
        &self,
        manual: Option<Allocation>,
    ) -> Result<(ExperimentReport, PipelineArtifacts), HslbError> {
        let _pipeline = self.opts.telemetry.span("pipeline");
        let (data, gather) = self.gather_resilient();
        let mut fallbacks: Vec<String> = Vec::new();
        let mut degraded = gather.degraded(self.opts.retry.min_points);

        // Fit when possible; a failed fit drops to the fit-free rung. An
        // injected curve set bypasses the fit entirely (see
        // [`HslbOptions::curve_override`]).
        let fits = match &self.opts.curve_override {
            Some(synthetic) => Some(synthetic.clone()),
            None => match self.fit(&data) {
                Ok(f) => Some(f),
                Err(e) => {
                    self.opts.telemetry.point(
                        "ladder.fallback",
                        &[],
                        &[("from", "fit"), ("cause", &e.to_string())],
                    );
                    fallbacks.push(format!("fit rung: {e}"));
                    None
                }
            },
        };

        let solve_span = self.opts.telemetry.span("solve");
        let solved = fits
            .as_ref()
            .and_then(|f| self.solve_ladder(f, &mut fallbacks, &mut degraded));

        let (allocation, solved, rung) = match solved {
            Some((outcome, rung)) => (outcome.allocation, Some(outcome), rung),
            None => {
                // Rung 3: no usable curves — fall back to the simulated
                // expert, which only needs the simulator itself.
                degraded = true;
                let expert = SimulatedExpert {
                    iterations: self.opts.retry.max_attempts.max(1) * 4,
                };
                match expert.try_tune(self.sim, self.opts.target_nodes) {
                    Some((alloc, runs)) => {
                        fallbacks.push(format!(
                            "expert rung: tuned an allocation in {runs} coupled runs"
                        ));
                        (alloc, None, SolverRung::SimulatedExpert)
                    }
                    None => {
                        fallbacks.push("expert rung: every coupled run failed".into());
                        return Err(HslbError::DegradationExhausted { fallbacks });
                    }
                }
            }
        };
        self.opts.telemetry.point(
            "ladder.rung",
            &[("degraded", f64::from(u8::from(degraded)))],
            &[("rung", &rung.to_string())],
        );
        drop(solve_span);

        let execute_span = self.opts.telemetry.span("execute");
        let (actual, execute_attempts) = self
            .execute_with_retry(&allocation, 0xE0)
            .map_err(|detail| HslbError::Execute { detail })?;
        drop(execute_span);

        let manual_arm = match manual {
            Some(alloc) => match self.execute_with_retry(&alloc, 0xA0) {
                Ok((run, _)) => Some(ArmReport {
                    allocation: alloc,
                    predicted: None,
                    predicted_total: None,
                    actual: run.times,
                    actual_total: run.total,
                }),
                Err(detail) => {
                    fallbacks.push(format!("manual arm dropped: {detail}"));
                    None
                }
            },
            None => None,
        };

        let artifacts = PipelineArtifacts {
            data,
            fits: fits.clone(),
        };
        let report = ExperimentReport {
            resolution: self.sim.resolution(),
            layout: self.opts.layout,
            objective: self.opts.objective,
            target_nodes: self.opts.target_nodes,
            fits: fits
                .as_ref()
                .map(|fits| {
                    fits.iter()
                        .map(|(c, f)| (c, f.curve, f.r_squared))
                        .collect()
                })
                .unwrap_or_default(),
            manual: manual_arm,
            hslb: ArmReport {
                allocation,
                predicted: solved.as_ref().map(|s| s.predicted),
                predicted_total: solved.as_ref().map(|s| s.predicted_total),
                actual: actual.times,
                actual_total: actual.total,
            },
            audit: solved.as_ref().and_then(|s| s.audit.clone()),
            solver_stats: solved.and_then(|s| s.solver_stats),
            resilience: Some(ResilienceReport {
                gather,
                rung,
                fallbacks,
                degraded_accuracy: degraded,
                execute_attempts,
            }),
        };
        Ok((report, artifacts))
    }
}

/// Drift-rebalance entry point (ROADMAP item 4, first cut): re-fit
/// `data` — typically previously gathered benchmarks merged with freshly
/// streamed timing samples — warm-started from `prior`'s curves, then
/// re-solve and re-execute under the caller's options.
///
/// The warm start seeds each component's multistart from the prior
/// fitted parameters, so a re-fit of mildly drifted data begins
/// near-converged (the same-basin contract of [`WarmStartCache`]). Any
/// `curve_override` in `opts` is cleared: a rebalance exists precisely
/// to replace stale curves with a fresh fit of the drifted data.
pub fn rebalance(
    sim: &Simulator,
    mut opts: HslbOptions,
    data: BenchmarkData,
    prior: &FitSet,
) -> Result<(ExperimentReport, PipelineArtifacts), HslbError> {
    let total_points: usize = data.components().iter().map(|&c| data.count(c)).sum();
    opts.telemetry
        .point("drift.rebalance", &[("points", total_points as f64)], &[]);
    opts.gather = GatherPlan::Reuse(data);
    opts.curve_override = None;
    let cache = opts.warm_cache.take().unwrap_or_default();
    for (c, fit) in prior.iter() {
        cache.store(c, &fit.curve);
    }
    opts.warm_cache = Some(cache);
    Hslb::new(sim, opts).run_with_artifacts(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_respects_allowed_sets() {
        let sim = Simulator::one_degree(20);
        let h = Hslb::new(&sim, HslbOptions::new(128));
        let data = h.gather();
        assert!(data.covers_optimized(3));
        // Every ocean observation must be an allowed (even/768) count.
        for &(n, _) in data.of(Component::Ocn) {
            let n = n as i64;
            assert!(
                (n % 2 == 0 && n <= 480) || n == 768,
                "ocean benchmarked at disallowed count {n}"
            );
        }
    }

    #[test]
    fn resilient_gather_survives_flaky_runs() {
        use hslb_cesm::FaultSpec;
        let sim = Simulator::one_degree(20).with_faults(FaultSpec::flaky(77, 0.2));
        let h = Hslb::new(&sim, HslbOptions::new(128));
        let (data, report) = h.gather_resilient();
        assert!(!report.is_clean(), "20% fail + 20% hang must leave marks");
        assert!(report.failed_runs + report.hung_runs > 0);
        assert!(
            data.covers_optimized(3),
            "retries must keep the campaign viable: {report}"
        );
        // Deterministic: the same seed reproduces the same campaign.
        let (_, again) = h.gather_resilient();
        assert_eq!(report.attempts, again.attempts);
        assert_eq!(report.failed_runs, again.failed_runs);
    }

    #[test]
    fn clean_gather_report_is_clean_and_counts_points() {
        let sim = Simulator::one_degree(20);
        let h = Hslb::new(&sim, HslbOptions::new(128));
        let (data, report) = h.gather_resilient();
        assert!(report.is_clean());
        assert_eq!(report.failed_runs, 0);
        for c in Component::OPTIMIZED {
            assert_eq!(report.points[&c], data.count(c));
        }
        // The resilient path reproduces the historical gather exactly.
        assert_eq!(data.of(Component::Atm), h.gather().of(Component::Atm));
    }

    #[test]
    fn zero_deadline_falls_back_to_exhaustive_rung() {
        let sim = Simulator::one_degree(22);
        let mut opts = HslbOptions::new(128);
        opts.solver.time_limit = Some(std::time::Duration::ZERO);
        let h = Hslb::new(&sim, opts);
        let report = h.run(None).expect("ladder must rescue the run");
        let res = report.resilience.as_ref().expect("run() always reports");
        assert_eq!(res.rung, crate::resilience::SolverRung::Exhaustive);
        assert!(res.degraded_accuracy);
        assert!(
            res.fallbacks.iter().any(|r| r.contains("deadline")),
            "fallback reasons: {:?}",
            res.fallbacks
        );
        assert!(report.hslb.actual_total.is_finite());
    }

    #[test]
    fn strict_solve_errors_on_zero_deadline() {
        let sim = Simulator::one_degree(22);
        let mut opts = HslbOptions::new(128);
        opts.solver.time_limit = Some(std::time::Duration::ZERO);
        let h = Hslb::new(&sim, opts);
        let data = h.gather();
        let fits = h.fit(&data).unwrap();
        assert!(matches!(
            h.solve(&fits),
            Err(crate::error::HslbError::SolverIncomplete { .. })
        ));
    }

    #[test]
    fn explicit_plan_deduplicates_after_projection() {
        let sim = Simulator::one_degree(21);
        let mut opts = HslbOptions::new(128);
        opts.gather = GatherPlan::Explicit(vec![23, 24, 25, 128]); // ocn projects 23→24? (24 even)
        let h = Hslb::new(&sim, opts);
        let data = h.gather();
        // lnd keeps all 4 distinct counts; ocn collapses 23/24/25 → {24} (23→24? 25→24/26).
        assert_eq!(data.count(Component::Lnd), 4);
        assert!(data.count(Component::Ocn) < 4);
    }
}
