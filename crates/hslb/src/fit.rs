//! Step 2: fit every component's performance curve.

use crate::data::BenchmarkData;
use crate::error::HslbError;
use hslb_cesm::Component;
use hslb_nlsq::{fit_scaling, ScalingCurve, ScalingFit, ScalingFitOptions};
use std::collections::BTreeMap;

/// The fitted curves for the four optimized components, plus fit-quality
/// diagnostics.
#[derive(Debug, Clone)]
pub struct FitSet {
    fits: BTreeMap<Component, ScalingFit>,
}

impl FitSet {
    /// The curve for a component. Panics if the component was not fitted
    /// (construction guarantees the four optimized ones).
    pub fn curve(&self, c: Component) -> ScalingCurve {
        self.fits[&c].curve
    }

    /// Full fit diagnostics for a component.
    pub fn fit(&self, c: Component) -> &ScalingFit {
        &self.fits[&c]
    }

    /// Predicted time of component `c` on `n` nodes.
    pub fn predict(&self, c: Component, n: i64) -> f64 {
        self.curve(c).eval(n as f64)
    }

    /// Worst R² across *measured* components — the paper's headline
    /// fit-quality check ("R² was very close to 1 for each component").
    ///
    /// Synthetic fits (see [`FitSet::from_curves`]) carry no data and are
    /// excluded; `None` means every fit in the set is synthetic, so there
    /// is no measured quality to report. (The old signature returned
    /// `f64::INFINITY` in that case, which sailed straight through
    /// `min_r_squared() > threshold` accuracy gates.)
    pub fn min_r_squared(&self) -> Option<f64> {
        self.fits
            .values()
            .filter(|f| !f.synthetic && f.r_squared.is_finite())
            .map(|f| f.r_squared)
            .fold(None, |acc, r| Some(acc.map_or(r, |m: f64| m.min(r))))
    }

    /// Are any of the fits synthetic (injected curves, no backing data)?
    pub fn has_synthetic(&self) -> bool {
        self.fits.values().any(|f| f.synthetic)
    }

    /// Iterate `(component, fit)` pairs in component order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, &ScalingFit)> {
        self.fits.iter().map(|(&c, f)| (c, f))
    }

    /// Build a fit set directly from known curves (e.g. for what-if
    /// studies over hypothetical hardware).
    ///
    /// All four optimized components must be present — `curve`/`fit`
    /// index by component, so a partial map would panic deep inside the
    /// solve step; reject it here with [`HslbError::IncompleteFitSet`].
    /// The entries are stamped as synthetic (`r_squared = NAN`,
    /// `points = 0`) so downstream accuracy gates can tell them apart
    /// from measured fits.
    pub fn from_curves(curves: BTreeMap<Component, ScalingCurve>) -> Result<Self, HslbError> {
        let missing: Vec<Component> = Component::OPTIMIZED
            .iter()
            .copied()
            .filter(|c| !curves.contains_key(c))
            .collect();
        if !missing.is_empty() {
            return Err(HslbError::IncompleteFitSet { missing });
        }
        let fits = curves
            .into_iter()
            .map(|(c, curve)| (c, ScalingFit::synthetic(curve)))
            .collect();
        Ok(FitSet { fits })
    }
}

/// Fit all four optimized components from benchmark data (Table II's four
/// least-squares problems).
pub fn fit_all(data: &BenchmarkData, opts: &ScalingFitOptions) -> Result<FitSet, HslbError> {
    let mut fits = BTreeMap::new();
    for &c in &Component::OPTIMIZED {
        let fit = fit_scaling(data.of(c), opts)
            .map_err(|source| HslbError::Fit { component: c, source })?;
        fits.insert(c, fit);
    }
    Ok(FitSet { fits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hslb_cesm::{Component, Simulator};

    fn gather(sim: &Simulator, counts: &[i64]) -> BenchmarkData {
        BenchmarkData::from_points(&sim.benchmark_all(counts))
    }

    #[test]
    fn fits_simulated_one_degree_data_with_high_r2() {
        let sim = Simulator::one_degree(5);
        let data = gather(&sim, &[16, 64, 256, 1024, 2048]);
        let fits = fit_all(&data, &ScalingFitOptions::default()).unwrap();
        // All components fit well; ice is the weakest but still decent.
        let min_r2 = fits.min_r_squared().expect("measured fits");
        assert!(min_r2 > 0.95, "min R² = {min_r2}");
        assert!(fits.fit(Component::Atm).r_squared > 0.99);
        assert!(!fits.has_synthetic());
    }

    #[test]
    fn predictions_interpolate_the_truth() {
        let sim = Simulator::one_degree(6);
        let data = gather(&sim, &[16, 48, 128, 512, 2048]);
        let fits = fit_all(&data, &ScalingFitOptions::default()).unwrap();
        for &c in &Component::OPTIMIZED {
            for n in [32i64, 200, 1000] {
                let pred = fits.predict(c, n);
                let truth = sim.truth(c, n);
                assert!(
                    (pred - truth).abs() / truth < 0.15,
                    "{c}@{n}: pred {pred} vs truth {truth}"
                );
            }
        }
    }

    #[test]
    fn missing_component_data_is_a_fit_error() {
        let mut data = BenchmarkData::new();
        data.push(Component::Atm, 104.0, 306.9);
        data.push(Component::Atm, 1664.0, 62.0);
        let err = fit_all(&data, &ScalingFitOptions::default());
        assert!(matches!(err, Err(HslbError::Fit { .. })));
    }

    fn flat_curves() -> BTreeMap<Component, ScalingCurve> {
        Component::OPTIMIZED
            .iter()
            .map(|&c| {
                (
                    c,
                    ScalingCurve {
                        a: 100.0,
                        b: 0.0,
                        c: 1.0,
                        d: 1.0,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn from_curves_builds_synthetic_set() {
        let fits = FitSet::from_curves(flat_curves()).unwrap();
        assert_eq!(fits.predict(Component::Atm, 100), 2.0);
        // Regression: synthetic fits used to be stamped with fake-perfect
        // diagnostics (R² = 1.0, points = 0) that accuracy gates could not
        // distinguish from real fits. They must now be flagged and carry
        // no measured quality.
        assert!(fits.has_synthetic());
        assert_eq!(fits.min_r_squared(), None);
        let atm = fits.fit(Component::Atm);
        assert!(atm.synthetic);
        assert!(atm.r_squared.is_nan());
        assert_eq!(atm.points, 0);
    }

    #[test]
    fn from_curves_rejects_partial_maps() {
        // Regression: a map missing a component used to construct fine and
        // then panic on the BTreeMap index inside `curve`/`fit` during the
        // solve step. Construction must fail instead.
        let mut curves = flat_curves();
        curves.remove(&Component::Ocn);
        curves.remove(&Component::Ice);
        match FitSet::from_curves(curves) {
            Err(HslbError::IncompleteFitSet { missing }) => {
                // Reported in Component::OPTIMIZED order.
                assert_eq!(missing, vec![Component::Ice, Component::Ocn]);
            }
            other => panic!("expected IncompleteFitSet, got {other:?}"),
        }
    }

    #[test]
    fn min_r_squared_is_none_when_nothing_is_measured() {
        // Regression: the empty/synthetic case used to fold to
        // f64::INFINITY, which passes any `> threshold` accuracy gate.
        let fits = FitSet::from_curves(flat_curves()).unwrap();
        assert_eq!(fits.min_r_squared(), None);
    }
}
