//! Step 2: fit every component's performance curve.

use crate::data::BenchmarkData;
use crate::error::HslbError;
use hslb_cesm::{Allocation, Component, Layout};
use hslb_nlsq::{fit_scaling, ScalingCurve, ScalingFit, ScalingFitOptions};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The fitted curves for the four optimized components, plus fit-quality
/// diagnostics.
#[derive(Debug, Clone)]
pub struct FitSet {
    fits: BTreeMap<Component, ScalingFit>,
}

impl FitSet {
    /// The curve for a component, or [`HslbError::MissingFit`] if that
    /// component was never fitted (the coupler, say — only the four
    /// optimized components carry curves).
    pub fn curve(&self, c: Component) -> Result<ScalingCurve, HslbError> {
        self.fits
            .get(&c)
            .map(|f| f.curve)
            .ok_or(HslbError::MissingFit { component: c })
    }

    /// Full fit diagnostics for a component, or
    /// [`HslbError::MissingFit`] if it was never fitted.
    pub fn fit(&self, c: Component) -> Result<&ScalingFit, HslbError> {
        self.fits
            .get(&c)
            .ok_or(HslbError::MissingFit { component: c })
    }

    /// The curve for one of the four *optimized* components, which
    /// construction ([`fit_all`]/[`FitSet::from_curves`]) guarantees are
    /// present. For arbitrary components use the checked [`FitSet::curve`].
    #[allow(clippy::expect_used)] // construction invariant, see doc
    pub fn optimized_curve(&self, c: Component) -> ScalingCurve {
        self.fits
            .get(&c)
            .map(|f| f.curve)
            .expect("construction guarantees the four optimized components")
    }

    /// Fit diagnostics for one of the four optimized components (see
    /// [`FitSet::optimized_curve`] for the contract).
    #[allow(clippy::expect_used)] // construction invariant, see doc
    pub fn optimized_fit(&self, c: Component) -> &ScalingFit {
        self.fits
            .get(&c)
            .expect("construction guarantees the four optimized components")
    }

    /// Predicted time of component `c` on `n` nodes.
    pub fn predict(&self, c: Component, n: i64) -> f64 {
        self.optimized_curve(c).eval(n as f64)
    }

    /// Predicted coupled total of an allocation under `layout` — the
    /// layout composition rules of §III-D (concurrent groups take the
    /// max, sequential groups the sum). Shared by post-solve tuning and
    /// the objective ablations so the composition logic lives once.
    pub fn predicted_total(&self, layout: Layout, a: &Allocation) -> f64 {
        let (ice, lnd) = (
            self.predict(Component::Ice, a.ice),
            self.predict(Component::Lnd, a.lnd),
        );
        let (atm, ocn) = (
            self.predict(Component::Atm, a.atm),
            self.predict(Component::Ocn, a.ocn),
        );
        match layout {
            Layout::Hybrid => (ice.max(lnd) + atm).max(ocn),
            Layout::SequentialWithOcean => (ice + lnd + atm).max(ocn),
            Layout::FullySequential => ice + lnd + atm + ocn,
        }
    }

    /// Worst R² across *measured* components — the paper's headline
    /// fit-quality check ("R² was very close to 1 for each component").
    ///
    /// Synthetic fits (see [`FitSet::from_curves`]) carry no data and are
    /// excluded; `None` means every fit in the set is synthetic, so there
    /// is no measured quality to report. (The old signature returned
    /// `f64::INFINITY` in that case, which sailed straight through
    /// `min_r_squared() > threshold` accuracy gates.)
    pub fn min_r_squared(&self) -> Option<f64> {
        self.fits
            .values()
            .filter(|f| !f.synthetic && f.r_squared.is_finite())
            .map(|f| f.r_squared)
            .fold(None, |acc, r| Some(acc.map_or(r, |m: f64| m.min(r))))
    }

    /// Are any of the fits synthetic (injected curves, no backing data)?
    pub fn has_synthetic(&self) -> bool {
        self.fits.values().any(|f| f.synthetic)
    }

    /// Iterate `(component, fit)` pairs in component order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, &ScalingFit)> {
        self.fits.iter().map(|(&c, f)| (c, f))
    }

    /// Build a fit set directly from known curves (e.g. for what-if
    /// studies over hypothetical hardware).
    ///
    /// All four optimized components must be present — `curve`/`fit`
    /// index by component, so a partial map would panic deep inside the
    /// solve step; reject it here with [`HslbError::IncompleteFitSet`].
    /// The entries are stamped as synthetic (`r_squared = NAN`,
    /// `points = 0`) so downstream accuracy gates can tell them apart
    /// from measured fits.
    pub fn from_curves(curves: BTreeMap<Component, ScalingCurve>) -> Result<Self, HslbError> {
        let missing: Vec<Component> = Component::OPTIMIZED
            .iter()
            .copied()
            .filter(|c| !curves.contains_key(c))
            .collect();
        if !missing.is_empty() {
            return Err(HslbError::IncompleteFitSet { missing });
        }
        let fits = curves
            .into_iter()
            .map(|(c, curve)| (c, ScalingFit::synthetic(curve)))
            .collect();
        Ok(FitSet { fits })
    }

    /// Rebuild a fit set from complete [`ScalingFit`] records —
    /// diagnostics and all. This is the restore path for persisted fits
    /// (the tuning service's crash-safe cache snapshot): unlike
    /// [`FitSet::from_curves`], which stamps entries synthetic with
    /// `r_squared = NAN`, round-tripping measured fits through
    /// `from_fits` preserves `min_r_squared` and every other diagnostic,
    /// so a solve replayed from a restored set stays bit-identical to one
    /// replayed from the live set. The same completeness check applies:
    /// all four optimized components must be present.
    pub fn from_fits(fits: BTreeMap<Component, ScalingFit>) -> Result<Self, HslbError> {
        let missing: Vec<Component> = Component::OPTIMIZED
            .iter()
            .copied()
            .filter(|c| !fits.contains_key(c))
            .collect();
        if !missing.is_empty() {
            return Err(HslbError::IncompleteFitSet { missing });
        }
        Ok(FitSet { fits })
    }
}

/// One warm-start entry: the fitted parameters plus an LRU tick.
#[derive(Debug, Clone, Copy)]
struct WarmEntry {
    params: [f64; 4],
    last_used: u64,
}

#[derive(Debug, Default)]
struct WarmState {
    /// Entries keyed by `(scope, component)`. The scope names the system
    /// the fit belongs to (machine + resolution, say); the legacy
    /// single-system API uses the empty scope.
    entries: BTreeMap<(String, Component), WarmEntry>,
    /// Monotonic access clock for LRU ordering.
    tick: u64,
    /// `None` = unbounded (the historical behavior).
    capacity: Option<usize>,
    /// Entries dropped by the eviction policy (diagnostic only).
    evictions: u64,
}

impl WarmState {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Shared warm-start state for repeated fits of the *same machine and
/// resolution*: each component's last fitted curve seeds the next fit's
/// start 0, so a re-fit on fresh (or identical) data of the same system
/// begins near-converged and the early-stop policy confirms the basin in
/// a handful of LM iterations.
///
/// Unlike the early-stop policy — which is *exactly* invariant (the
/// fitted curves are bit-identical with it on or off) — a warm start may
/// move the fitted curve within the basin tolerance: the cached
/// parameters replace the caller's start 0, which is also the
/// residual-scale reference point and the index-0 tie-break of the
/// multistart, so a warm re-fit of identical data is guaranteed to land
/// in the same basin (tests assert 1e-4 relative agreement on
/// predictions) but not to reproduce the cold fit bit-for-bit.
///
/// The handle is cheap to clone (shared state behind an `Arc`). Entries
/// are keyed by a *scope* string naming the system they came from
/// ([`WarmStartCache::scoped`]); the plain [`WarmStartCache::get`] /
/// [`WarmStartCache::store`] API reads and writes the handle's own scope
/// (empty for a fresh cache), so single-system callers behave exactly as
/// before. A multi-tenant caller — the tuning service, one scope per
/// machine/resolution — bounds the cache with
/// [`WarmStartCache::with_capacity`]: inserts beyond the capacity evict
/// the least-recently-used entry. Eviction is safe by construction: a
/// missing warm start only means the next fit of that scope runs cold,
/// which is the same-basin contract warm starts already carry.
#[derive(Debug, Clone, Default)]
pub struct WarmStartCache {
    inner: Arc<Mutex<WarmState>>,
    /// The scope this handle reads and writes by default.
    scope: String,
}

impl WarmStartCache {
    /// An empty, unbounded cache; the first `fit_all_warm` through it
    /// runs cold.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` entries across all
    /// scopes; inserts beyond that evict the least-recently-used entry.
    /// A capacity of 0 caches nothing (every fit runs cold).
    pub fn with_capacity(capacity: usize) -> Self {
        WarmStartCache {
            inner: Arc::new(Mutex::new(WarmState {
                capacity: Some(capacity),
                ..WarmState::default()
            })),
            scope: String::new(),
        }
    }

    /// A handle sharing this cache's storage (and capacity) whose
    /// `get`/`store` operate on `scope` instead of this handle's scope.
    pub fn scoped(&self, scope: &str) -> WarmStartCache {
        WarmStartCache {
            inner: Arc::clone(&self.inner),
            scope: scope.to_string(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WarmState> {
        // A poisoned mutex only means another thread panicked mid-store;
        // warm starts are advisory, so the surviving state is still good.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The last fitted parameters for `c` in this handle's scope, if they
    /// are still resident. A hit refreshes the entry's recency.
    pub fn get(&self, c: Component) -> Option<[f64; 4]> {
        let mut st = self.lock();
        let tick = st.touch();
        let entry = st.entries.get_mut(&(self.scope.clone(), c))?;
        entry.last_used = tick;
        Some(entry.params)
    }

    /// Record `curve` as the warm start for future fits of `c` in this
    /// handle's scope, evicting the least-recently-used entry if the
    /// cache is over capacity.
    pub fn store(&self, c: Component, curve: &ScalingCurve) {
        let mut st = self.lock();
        if st.capacity == Some(0) {
            return;
        }
        let tick = st.touch();
        st.entries.insert(
            (self.scope.clone(), c),
            WarmEntry {
                params: [curve.a, curve.b, curve.c, curve.d],
                last_used: tick,
            },
        );
        while st.capacity.is_some_and(|cap| st.entries.len() > cap) {
            let Some(oldest) = st
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            st.entries.remove(&oldest);
            st.evictions += 1;
        }
    }

    /// How many warm starts are resident, across all scopes.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Is the cache still cold?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.lock().capacity
    }

    /// How many entries the eviction policy has dropped so far.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }

    /// The scopes currently holding at least one entry, in sorted order.
    pub fn scopes(&self) -> Vec<String> {
        let st = self.lock();
        let mut out: Vec<String> = st.entries.keys().map(|(s, _)| s.clone()).collect();
        out.dedup();
        out
    }
}

/// Fit all four optimized components from benchmark data (Table II's four
/// least-squares problems).
pub fn fit_all(data: &BenchmarkData, opts: &ScalingFitOptions) -> Result<FitSet, HslbError> {
    fit_all_warm(data, opts, None)
}

/// [`fit_all`] with an optional [`WarmStartCache`]: stored curves seed
/// each component's start 0, and the fitted curves are written back for
/// the next round.
pub fn fit_all_warm(
    data: &BenchmarkData,
    opts: &ScalingFitOptions,
    cache: Option<&WarmStartCache>,
) -> Result<FitSet, HslbError> {
    let mut fits = BTreeMap::new();
    for &c in &Component::OPTIMIZED {
        let component_opts = ScalingFitOptions {
            warm_start: cache.and_then(|w| w.get(c)).or(opts.warm_start),
            ..opts.clone()
        };
        let fit = fit_scaling(data.of(c), &component_opts).map_err(|source| HslbError::Fit {
            component: c,
            source,
        })?;
        if let Some(w) = cache {
            w.store(c, &fit.curve);
        }
        fits.insert(c, fit);
    }
    Ok(FitSet { fits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hslb_cesm::{Component, Simulator};

    fn gather(sim: &Simulator, counts: &[i64]) -> BenchmarkData {
        BenchmarkData::from_points(&sim.benchmark_all(counts))
    }

    #[test]
    fn fits_simulated_one_degree_data_with_high_r2() {
        let sim = Simulator::one_degree(5);
        let data = gather(&sim, &[16, 64, 256, 1024, 2048]);
        let fits = fit_all(&data, &ScalingFitOptions::default()).unwrap();
        // All components fit well; ice is the weakest but still decent.
        let min_r2 = fits.min_r_squared().expect("measured fits");
        assert!(min_r2 > 0.95, "min R² = {min_r2}");
        assert!(fits.fit(Component::Atm).unwrap().r_squared > 0.99);
        assert!(!fits.has_synthetic());
    }

    #[test]
    fn predictions_interpolate_the_truth() {
        let sim = Simulator::one_degree(6);
        let data = gather(&sim, &[16, 48, 128, 512, 2048]);
        let fits = fit_all(&data, &ScalingFitOptions::default()).unwrap();
        for &c in &Component::OPTIMIZED {
            for n in [32i64, 200, 1000] {
                let pred = fits.predict(c, n);
                let truth = sim.truth(c, n);
                assert!(
                    (pred - truth).abs() / truth < 0.15,
                    "{c}@{n}: pred {pred} vs truth {truth}"
                );
            }
        }
    }

    #[test]
    fn missing_component_data_is_a_fit_error() {
        let mut data = BenchmarkData::new();
        data.push(Component::Atm, 104.0, 306.9);
        data.push(Component::Atm, 1664.0, 62.0);
        let err = fit_all(&data, &ScalingFitOptions::default());
        assert!(matches!(err, Err(HslbError::Fit { .. })));
    }

    fn flat_curves() -> BTreeMap<Component, ScalingCurve> {
        Component::OPTIMIZED
            .iter()
            .map(|&c| {
                (
                    c,
                    ScalingCurve {
                        a: 100.0,
                        b: 0.0,
                        c: 1.0,
                        d: 1.0,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn from_curves_builds_synthetic_set() {
        let fits = FitSet::from_curves(flat_curves()).unwrap();
        assert_eq!(fits.predict(Component::Atm, 100), 2.0);
        // Regression: synthetic fits used to be stamped with fake-perfect
        // diagnostics (R² = 1.0, points = 0) that accuracy gates could not
        // distinguish from real fits. They must now be flagged and carry
        // no measured quality.
        assert!(fits.has_synthetic());
        assert_eq!(fits.min_r_squared(), None);
        let atm = fits.fit(Component::Atm).unwrap();
        assert!(atm.synthetic);
        assert!(atm.r_squared.is_nan());
        assert_eq!(atm.points, 0);
    }

    #[test]
    fn from_curves_rejects_partial_maps() {
        // Regression: a map missing a component used to construct fine and
        // then panic on the BTreeMap index inside `curve`/`fit` during the
        // solve step. Construction must fail instead.
        let mut curves = flat_curves();
        curves.remove(&Component::Ocn);
        curves.remove(&Component::Ice);
        match FitSet::from_curves(curves) {
            Err(HslbError::IncompleteFitSet { missing }) => {
                // Reported in Component::OPTIMIZED order.
                assert_eq!(missing, vec![Component::Ice, Component::Ocn]);
            }
            other => panic!("expected IncompleteFitSet, got {other:?}"),
        }
    }

    #[test]
    fn unfitted_component_is_an_error_not_a_panic() {
        // Regression: `curve`/`fit` used to index the BTreeMap directly,
        // so asking about the coupler (never optimized, never fitted)
        // panicked deep inside what-if studies. It must be a typed error.
        let fits = FitSet::from_curves(flat_curves()).unwrap();
        match fits.curve(Component::Cpl) {
            Err(HslbError::MissingFit { component }) => assert_eq!(component, Component::Cpl),
            other => panic!("expected MissingFit, got {other:?}"),
        }
        assert!(matches!(
            fits.fit(Component::Cpl),
            Err(HslbError::MissingFit { .. })
        ));
        // The optimized components remain available through both paths.
        assert!(fits.curve(Component::Atm).is_ok());
        assert_eq!(
            fits.optimized_curve(Component::Atm),
            fits.curve(Component::Atm).unwrap()
        );
    }

    #[test]
    fn warm_start_cache_round_trips_fitted_curves() {
        let sim = Simulator::one_degree(5);
        let data = gather(&sim, &[16, 64, 256, 1024, 2048]);
        let cache = WarmStartCache::new();
        assert!(cache.is_empty());
        let cold = fit_all_warm(&data, &ScalingFitOptions::default(), Some(&cache)).unwrap();
        assert_eq!(cache.len(), Component::OPTIMIZED.len());
        // A re-fit of the same data from the cached warm starts lands in
        // the same basin: predictions agree tightly with the cold fit.
        let warm = fit_all_warm(&data, &ScalingFitOptions::default(), Some(&cache)).unwrap();
        for &c in &Component::OPTIMIZED {
            for n in [16i64, 128, 1024] {
                let (p_cold, p_warm) = (cold.predict(c, n), warm.predict(c, n));
                assert!(
                    (p_cold - p_warm).abs() <= 1e-4 * p_cold.abs(),
                    "{c}@{n}: cold {p_cold} vs warm {p_warm}"
                );
            }
        }
    }

    #[test]
    fn warm_start_cache_evicts_least_recently_used() {
        let curve = ScalingCurve {
            a: 1.0,
            b: 2.0,
            c: 1.5,
            d: 0.5,
        };
        let cache = WarmStartCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        let (a, b, c) = (cache.scoped("a"), cache.scoped("b"), cache.scoped("c"));
        a.store(Component::Atm, &curve);
        b.store(Component::Atm, &curve);
        // Touch "a" so "b" becomes the least recently used...
        assert!(a.get(Component::Atm).is_some());
        c.store(Component::Atm, &curve);
        // ...and the third scope's insert evicts "b", not "a".
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(a.get(Component::Atm).is_some());
        assert!(b.get(Component::Atm).is_none());
        assert!(c.get(Component::Atm).is_some());
        assert_eq!(cache.scopes(), vec!["a".to_string(), "c".to_string()]);
    }

    #[test]
    fn zero_capacity_cache_fits_bit_identical_to_cold() {
        // A capacity-0 cache evicts everything immediately, so every fit
        // runs cold: the fitted curves must be bit-identical to fit_all
        // with no cache at all. This is the strongest form of "eviction
        // never changes fit results".
        let sim = Simulator::one_degree(5);
        let data = gather(&sim, &[16, 64, 256, 1024, 2048]);
        let cold = fit_all(&data, &ScalingFitOptions::default()).unwrap();
        let evicted = WarmStartCache::with_capacity(0);
        let bounded = fit_all_warm(&data, &ScalingFitOptions::default(), Some(&evicted)).unwrap();
        assert!(evicted.is_empty(), "capacity 0 must cache nothing");
        for &c in &Component::OPTIMIZED {
            let (cc, bc) = (cold.fit(c).unwrap().curve, bounded.fit(c).unwrap().curve);
            assert_eq!(cc.a.to_bits(), bc.a.to_bits(), "{c}: a");
            assert_eq!(cc.b.to_bits(), bc.b.to_bits(), "{c}: b");
            assert_eq!(cc.c.to_bits(), bc.c.to_bits(), "{c}: c");
            assert_eq!(cc.d.to_bits(), bc.d.to_bits(), "{c}: d");
        }
    }

    #[test]
    fn evicted_warm_start_stays_in_the_cold_basin() {
        // Mid-capacity: some components keep their warm start, others are
        // evicted and re-fit cold. Either way every prediction stays in
        // the cold fit's basin (the existing warm-start contract).
        let sim = Simulator::one_degree(5);
        let data = gather(&sim, &[16, 64, 256, 1024, 2048]);
        let cold = fit_all(&data, &ScalingFitOptions::default()).unwrap();
        let cache = WarmStartCache::with_capacity(2);
        let _first = fit_all_warm(&data, &ScalingFitOptions::default(), Some(&cache)).unwrap();
        assert_eq!(cache.len(), 2, "two of four entries must have survived");
        assert_eq!(cache.evictions(), 2);
        let warm = fit_all_warm(&data, &ScalingFitOptions::default(), Some(&cache)).unwrap();
        for &c in &Component::OPTIMIZED {
            for n in [16i64, 128, 1024] {
                let (p_cold, p_warm) = (cold.predict(c, n), warm.predict(c, n));
                assert!(
                    (p_cold - p_warm).abs() <= 1e-4 * p_cold.abs(),
                    "{c}@{n}: cold {p_cold} vs warm {p_warm}"
                );
            }
        }
    }

    #[test]
    fn scoped_handles_are_isolated_but_share_storage() {
        let curve = ScalingCurve {
            a: 3.0,
            b: 1.0,
            c: 2.0,
            d: 0.0,
        };
        let cache = WarmStartCache::new();
        cache.scoped("intrepid/1deg").store(Component::Ocn, &curve);
        // The default scope sees nothing...
        assert!(cache.get(Component::Ocn).is_none());
        // ...but a second handle to the same scope sees the entry.
        let again = cache.scoped("intrepid/1deg");
        assert_eq!(again.get(Component::Ocn), Some([3.0, 1.0, 2.0, 0.0]));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn predicted_total_matches_manual_composition() {
        use hslb_cesm::{Allocation, Layout};
        let fits = FitSet::from_curves(flat_curves()).unwrap();
        let a = Allocation {
            lnd: 10,
            ice: 20,
            atm: 30,
            ocn: 40,
        };
        let (ti, tl) = (
            fits.predict(Component::Ice, 20),
            fits.predict(Component::Lnd, 10),
        );
        let (ta, to) = (
            fits.predict(Component::Atm, 30),
            fits.predict(Component::Ocn, 40),
        );
        assert_eq!(
            fits.predicted_total(Layout::Hybrid, &a),
            (ti.max(tl) + ta).max(to)
        );
        assert_eq!(
            fits.predicted_total(Layout::SequentialWithOcean, &a),
            (ti + tl + ta).max(to)
        );
        assert_eq!(
            fits.predicted_total(Layout::FullySequential, &a),
            ti + tl + ta + to
        );
    }

    #[test]
    fn min_r_squared_is_none_when_nothing_is_measured() {
        // Regression: the empty/synthetic case used to fold to
        // f64::INFINITY, which passes any `> threshold` accuracy gate.
        let fits = FitSet::from_curves(flat_curves()).unwrap();
        assert_eq!(fits.min_r_squared(), None);
    }
}
