//! Step 2: fit every component's performance curve.

use crate::data::BenchmarkData;
use crate::error::HslbError;
use hslb_cesm::Component;
use hslb_nlsq::{fit_scaling, ScalingCurve, ScalingFit, ScalingFitOptions};
use std::collections::BTreeMap;

/// The fitted curves for the four optimized components, plus fit-quality
/// diagnostics.
#[derive(Debug, Clone)]
pub struct FitSet {
    fits: BTreeMap<Component, ScalingFit>,
}

impl FitSet {
    /// The curve for a component. Panics if the component was not fitted
    /// (construction guarantees the four optimized ones).
    pub fn curve(&self, c: Component) -> ScalingCurve {
        self.fits[&c].curve
    }

    /// Full fit diagnostics for a component.
    pub fn fit(&self, c: Component) -> &ScalingFit {
        &self.fits[&c]
    }

    /// Predicted time of component `c` on `n` nodes.
    pub fn predict(&self, c: Component, n: i64) -> f64 {
        self.curve(c).eval(n as f64)
    }

    /// Worst R² across components — the paper's headline fit-quality
    /// check ("R² was very close to 1 for each component").
    pub fn min_r_squared(&self) -> f64 {
        self.fits
            .values()
            .map(|f| f.r_squared)
            .fold(f64::INFINITY, f64::min)
    }

    /// Iterate `(component, fit)` pairs in component order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, &ScalingFit)> {
        self.fits.iter().map(|(&c, f)| (c, f))
    }

    /// Build a fit set directly from known curves (e.g. for what-if
    /// studies over hypothetical hardware).
    pub fn from_curves(curves: BTreeMap<Component, ScalingCurve>) -> Self {
        let fits = curves
            .into_iter()
            .map(|(c, curve)| {
                (
                    c,
                    ScalingFit {
                        curve,
                        r_squared: 1.0,
                        rmse: 0.0,
                        sse: 0.0,
                        points: 0,
                    },
                )
            })
            .collect();
        FitSet { fits }
    }
}

/// Fit all four optimized components from benchmark data (Table II's four
/// least-squares problems).
pub fn fit_all(data: &BenchmarkData, opts: &ScalingFitOptions) -> Result<FitSet, HslbError> {
    let mut fits = BTreeMap::new();
    for &c in &Component::OPTIMIZED {
        let fit = fit_scaling(data.of(c), opts)
            .map_err(|source| HslbError::Fit { component: c, source })?;
        fits.insert(c, fit);
    }
    Ok(FitSet { fits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hslb_cesm::{Component, Simulator};

    fn gather(sim: &Simulator, counts: &[i64]) -> BenchmarkData {
        BenchmarkData::from_points(&sim.benchmark_all(counts))
    }

    #[test]
    fn fits_simulated_one_degree_data_with_high_r2() {
        let sim = Simulator::one_degree(5);
        let data = gather(&sim, &[16, 64, 256, 1024, 2048]);
        let fits = fit_all(&data, &ScalingFitOptions::default()).unwrap();
        // All components fit well; ice is the weakest but still decent.
        assert!(fits.min_r_squared() > 0.95, "min R² = {}", fits.min_r_squared());
        assert!(fits.fit(Component::Atm).r_squared > 0.99);
    }

    #[test]
    fn predictions_interpolate_the_truth() {
        let sim = Simulator::one_degree(6);
        let data = gather(&sim, &[16, 48, 128, 512, 2048]);
        let fits = fit_all(&data, &ScalingFitOptions::default()).unwrap();
        for &c in &Component::OPTIMIZED {
            for n in [32i64, 200, 1000] {
                let pred = fits.predict(c, n);
                let truth = sim.truth(c, n);
                assert!(
                    (pred - truth).abs() / truth < 0.15,
                    "{c}@{n}: pred {pred} vs truth {truth}"
                );
            }
        }
    }

    #[test]
    fn missing_component_data_is_a_fit_error() {
        let mut data = BenchmarkData::new();
        data.push(Component::Atm, 104.0, 306.9);
        data.push(Component::Atm, 1664.0, 62.0);
        let err = fit_all(&data, &ScalingFitOptions::default());
        assert!(matches!(err, Err(HslbError::Fit { .. })));
    }

    #[test]
    fn from_curves_builds_synthetic_set() {
        let curves: BTreeMap<_, _> = Component::OPTIMIZED
            .iter()
            .map(|&c| {
                (
                    c,
                    ScalingCurve {
                        a: 100.0,
                        b: 0.0,
                        c: 1.0,
                        d: 1.0,
                    },
                )
            })
            .collect();
        let fits = FitSet::from_curves(curves);
        assert_eq!(fits.predict(Component::Atm, 100), 2.0);
        assert_eq!(fits.min_r_squared(), 1.0);
    }
}
