//! The "manual" (human expert) baselines.
//!
//! §IV: "The manual process has a similar first step as the HSLB, namely
//! generating some scaling curves for each component. Thereafter, the
//! manual tuning and load balance testing is done by hand, sequentially,
//! until a reasonable layout is obtained. This can take five to ten
//! iterations which involves building the model, submitting to a queue,
//! and waiting."
//!
//! Two baselines are provided:
//!
//! * [`paper_manual_allocation`] — replay of the allocations the paper's
//!   experts actually chose (Table III "Manual" columns), run through the
//!   simulator; this is what the Table III reproduction compares against;
//! * [`SimulatedExpert`] — a procedural stand-in for the human loop, used
//!   by ablations at node counts the paper does not report.

use hslb_cesm::calib;
use hslb_cesm::{Allocation, Layout, Resolution, Simulator};

/// The expert allocation the paper reports for a `(resolution, N)`
/// experiment, if any.
pub fn paper_manual_allocation(r: Resolution, target_nodes: i64) -> Option<Allocation> {
    calib::paper_table3()
        .into_iter()
        .find(|e| e.resolution == r && e.target_nodes == target_nodes && e.manual_alloc.is_some())
        .and_then(|e| e.manual_alloc)
        .map(Allocation::from_table_order)
}

/// A procedural expert: looks at two-point scaling curves, splits the
/// machine, then iterates run-adjust-run a handful of times like a human
/// would.
#[derive(Debug, Clone)]
pub struct SimulatedExpert {
    /// Tuning iterations (the paper's "five to ten").
    pub iterations: usize,
}

impl Default for SimulatedExpert {
    fn default() -> Self {
        SimulatedExpert { iterations: 7 }
    }
}

impl SimulatedExpert {
    /// Produce an allocation for layout 1 on `n` nodes by iterative manual
    /// tuning against the simulator. Returns the best allocation found and
    /// the number of (expensive) coupled runs spent.
    ///
    /// Panics when every coupled run fails (a fully hostile cluster);
    /// fault-tolerant callers should use [`Self::try_tune`].
    #[allow(clippy::expect_used)] // panicking wrapper, documented above
    pub fn tune(&self, sim: &Simulator, n: i64) -> (Allocation, usize) {
        self.try_tune(sim, n)
            .expect("every coupled run failed (use try_tune on the fault path)")
    }

    /// Fallible variant of [`Self::tune`]: `None` when not a single
    /// coupled run succeeded, which under fault injection is a real
    /// outcome rather than a bug.
    pub fn try_tune(&self, sim: &Simulator, n: i64) -> Option<(Allocation, usize)> {
        let allowed_ocn = sim.config.ocean_allowed.clone();
        let allowed_atm = sim.config.atm_allowed.clone();
        let pick_ocn = |target: i64| -> i64 {
            match &allowed_ocn {
                Some(list) => list
                    .iter()
                    .copied()
                    .filter(|&v| v <= n - 2)
                    .min_by_key(|&v| (v - target).abs())
                    .unwrap_or(2),
                None => target.clamp(2, n - 2),
            }
        };
        let pick_atm = |target: i64, cap: i64| -> i64 {
            match &allowed_atm {
                Some(list) => list
                    .iter()
                    .copied()
                    .filter(|&v| v <= cap)
                    .min_by_key(|&v| (v - target).abs())
                    .unwrap_or(cap.max(2)),
                None => target.clamp(2, cap),
            }
        };

        // Initial guess from rough workload ratios: the human looks at the
        // scaling plots and eyeballs ~20 % of the machine for the ocean.
        let mut ocn = pick_ocn(n / 5);
        let mut runs = 0usize;
        let mut best: Option<(f64, Allocation)> = None;

        for it in 0..self.iterations.max(1) {
            let atm = pick_atm(n - ocn, n - ocn);
            // Ice gets the lion's share of the atm group: sea ice scales
            // worse than land, everyone knows that.
            let ice = (atm * 4) / 5;
            let lnd = (atm - ice).max(1);
            let alloc = Allocation {
                lnd,
                ice: ice.max(1),
                atm,
                ocn,
            };
            let Ok(run) = sim.run_case(&alloc, Layout::Hybrid, it as u64) else {
                // Invalid guess (allowed-set mismatch): nudge the ocean.
                ocn = pick_ocn(ocn + 2);
                continue;
            };
            runs += 1;
            if best.as_ref().is_none_or(|(b, _)| run.total < *b) {
                best = Some((run.total, alloc));
            }
            // Adjust like a human reading the timing table: grow whichever
            // side of the max() dominates.
            let atm_side = run.times.ice.max(run.times.lnd) + run.times.atm;
            if run.times.ocn > atm_side * 1.02 {
                ocn = pick_ocn(ocn + (n / 16).max(1));
            } else if run.times.ocn < atm_side * 0.98 {
                ocn = pick_ocn(ocn - (n / 16).max(1));
            } else {
                break; // balanced enough; the human stops here
            }
        }
        let (_, alloc) = best?;
        Some((alloc, runs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_allocations_replay() {
        let a = paper_manual_allocation(Resolution::OneDegree, 128).unwrap();
        assert_eq!(
            a,
            Allocation {
                lnd: 24,
                ice: 80,
                atm: 104,
                ocn: 24
            }
        );
        assert!(paper_manual_allocation(Resolution::OneDegree, 999).is_none());
        // Unconstrained experiments have no manual column.
        let eighth = paper_manual_allocation(Resolution::EighthDegree, 8192).unwrap();
        assert_eq!(eighth.atm, 5836);
    }

    #[test]
    fn simulated_expert_produces_valid_allocation() {
        let sim = Simulator::one_degree(9);
        let (alloc, runs) = SimulatedExpert::default().tune(&sim, 128);
        assert!((1..=10).contains(&runs), "expert used {runs} runs");
        assert!(sim.run_case(&alloc, Layout::Hybrid, 99).is_ok());
    }

    #[test]
    fn try_tune_survives_a_hostile_cluster() {
        use hslb_cesm::FaultSpec;
        // Every coupled run fails: no allocation can be produced, but the
        // outcome is a None, not a panic.
        let spec = FaultSpec {
            fail_rate: 1.0,
            ..FaultSpec::flaky(1, 0.0)
        };
        let sim = Simulator::one_degree(9).with_faults(spec);
        assert!(SimulatedExpert::default().try_tune(&sim, 128).is_none());
    }

    #[test]
    fn simulated_expert_is_reasonable_but_beatable() {
        // The expert should land within 2× of the paper's manual total at
        // 1°/128 — sane, but leaving room for HSLB to win.
        let sim = Simulator::one_degree(10);
        let (alloc, _) = SimulatedExpert::default().tune(&sim, 128);
        let run = sim.run_case(&alloc, Layout::Hybrid, 50).unwrap();
        assert!(
            run.total < 2.0 * 416.0,
            "expert total {} looks broken",
            run.total
        );
    }
}
