//! Table III-style experiment reports.

use crate::objective::Objective;
use crate::resilience::ResilienceReport;
use hslb_cesm::layout::ComponentTimes;
use hslb_cesm::{Allocation, Component, Layout, Resolution};
use hslb_nlsq::ScalingCurve;

/// One arm of an experiment (manual or HSLB): allocation plus timings.
#[derive(Debug, Clone)]
pub struct ArmReport {
    pub allocation: Allocation,
    /// Fitted-curve predictions (HSLB arm only).
    pub predicted: Option<ComponentTimes>,
    pub predicted_total: Option<f64>,
    /// Measured (simulated) times.
    pub actual: ComponentTimes,
    pub actual_total: f64,
}

/// A full experiment: one Table III panel.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    pub resolution: Resolution,
    pub layout: Layout,
    pub objective: Objective,
    pub target_nodes: i64,
    /// `(component, fitted curve, R²)` triples from the fit step.
    pub fits: Vec<(Component, ScalingCurve, f64)>,
    pub manual: Option<ArmReport>,
    pub hslb: ArmReport,
    /// The pre-solve instance audit: passing when the MINLP rung ran,
    /// failing when a rejected instance degraded to the exhaustive rung,
    /// `None` when no MINLP was attempted at all.
    pub audit: Option<hslb_audit::InstanceAudit>,
    pub solver_stats: Option<hslb_minlp::SolveStats>,
    /// How the pipeline weathered faults: gather accounting, the ladder
    /// rung that produced the allocation, fallback reasons. `None` for
    /// reports built outside [`crate::pipeline::Hslb::run`].
    pub resilience: Option<ResilienceReport>,
}

impl ExperimentReport {
    /// Percent improvement of HSLB actual total over the manual actual
    /// total (positive = HSLB faster); `None` without a manual arm.
    pub fn improvement_over_manual_pct(&self) -> Option<f64> {
        let manual = self.manual.as_ref()?;
        hslb_numerics::stats::improvement_pct(manual.actual_total, self.hslb.actual_total)
    }

    /// Relative |predicted − actual| / actual of the HSLB total.
    pub fn prediction_error_pct(&self) -> Option<f64> {
        let p = self.hslb.predicted_total?;
        Some(100.0 * (p - self.hslb.actual_total).abs() / self.hslb.actual_total)
    }

    /// Whether this experiment's allocation is a *certified* global
    /// optimum: the MINLP rung produced it, nothing degraded along the
    /// way, and the instance audit passed. An exhaustive- or expert-rung
    /// answer, a gap-limited incumbent, or an unaudited solve never
    /// qualifies — the paper's optimality claim is only as good as the
    /// convexity assumptions the audit verifies.
    pub fn global_optimum(&self) -> bool {
        let on_minlp_rung = match &self.resilience {
            Some(res) => res.rung == crate::resilience::SolverRung::Minlp && !res.degraded_accuracy,
            // Reports built outside `run()` (the strict `solve()` API)
            // carry solver stats only when the MINLP produced the answer.
            None => self.solver_stats.is_some(),
        };
        on_minlp_rung && self.audit.as_ref().is_some_and(|a| a.passed())
    }

    /// Worst fit R² across components; `None` when no component carries a
    /// finite measured R² (e.g. every fit was synthetic).
    pub fn min_r_squared(&self) -> Option<f64> {
        self.fits
            .iter()
            .map(|&(_, _, r2)| r2)
            .filter(|r2| r2.is_finite())
            .fold(None, |acc, r| Some(acc.map_or(r, |m: f64| m.min(r))))
    }
}

impl std::fmt::Display for ExperimentReport {
    /// Renders one panel in the visual format of the paper's Table III.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}, {} nodes, {} ({})",
            self.resolution, self.target_nodes, self.layout, self.objective
        )?;
        writeln!(
            f,
            "{:<12} {:>9} {:>12} {:>12} {:>12} {:>12}",
            "components", "# nodes", "Manual t/s", "# nodes", "Pred t/s", "Actual t/s"
        )?;
        for c in [
            Component::Lnd,
            Component::Ice,
            Component::Atm,
            Component::Ocn,
        ] {
            let (mn, mt) = match &self.manual {
                Some(m) => (
                    format!("{}", m.allocation.get(c)),
                    format!("{:.3}", m.actual.get(c)),
                ),
                None => ("-".to_string(), "-".to_string()),
            };
            let pred = self
                .hslb
                .predicted
                .map_or("-".to_string(), |p| format!("{:.3}", p.get(c)));
            writeln!(
                f,
                "{:<12} {:>9} {:>12} {:>12} {:>12} {:>12.3}",
                c.label(),
                mn,
                mt,
                self.hslb.allocation.get(c),
                pred,
                self.hslb.actual.get(c)
            )?;
        }
        let manual_total = self
            .manual
            .as_ref()
            .map_or("-".to_string(), |m| format!("{:.3}", m.actual_total));
        let pred_total = self
            .hslb
            .predicted_total
            .map_or("-".to_string(), |t| format!("{t:.3}"));
        writeln!(
            f,
            "{:<12} {:>9} {:>12} {:>12} {:>12} {:>12.3}",
            "Total time", "", manual_total, "", pred_total, self.hslb.actual_total
        )?;
        if let Some(gain) = self.improvement_over_manual_pct() {
            writeln!(f, "HSLB vs manual: {gain:+.1}%")?;
        }
        if let Some(audit) = &self.audit {
            writeln!(
                f,
                "optimality: {}",
                if self.global_optimum() {
                    "certified global optimum"
                } else {
                    "NOT certified (see audit)"
                }
            )?;
            if !audit.passed() {
                write!(f, "{audit}")?;
            }
        }
        // Only surface the resilience block when something happened — a
        // clean run keeps the paper's table shape untouched.
        if let Some(res) = &self.resilience {
            if res.degraded_accuracy || !res.fallbacks.is_empty() || !res.gather.is_clean() {
                write!(f, "{res}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report(manual_total: Option<f64>, hslb_total: f64) -> ExperimentReport {
        let times = ComponentTimes {
            lnd: 1.0,
            ice: 2.0,
            atm: 3.0,
            ocn: 4.0,
        };
        let alloc = Allocation {
            lnd: 10,
            ice: 20,
            atm: 30,
            ocn: 40,
        };
        ExperimentReport {
            resolution: Resolution::OneDegree,
            layout: Layout::Hybrid,
            objective: Objective::MinMax,
            target_nodes: 128,
            fits: vec![],
            manual: manual_total.map(|t| ArmReport {
                allocation: alloc,
                predicted: None,
                predicted_total: None,
                actual: times,
                actual_total: t,
            }),
            hslb: ArmReport {
                allocation: alloc,
                predicted: Some(times),
                predicted_total: Some(hslb_total * 0.98),
                actual: times,
                actual_total: hslb_total,
            },
            audit: None,
            solver_stats: None,
            resilience: None,
        }
    }

    #[test]
    fn improvement_math() {
        let r = dummy_report(Some(100.0), 75.0);
        assert!((r.improvement_over_manual_pct().unwrap() - 25.0).abs() < 1e-12);
        assert!(dummy_report(None, 75.0)
            .improvement_over_manual_pct()
            .is_none());
    }

    #[test]
    fn prediction_error_math() {
        let r = dummy_report(None, 100.0);
        assert!((r.prediction_error_pct().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_shows_paper_table_shape() {
        let shown = format!("{}", dummy_report(Some(100.0), 75.0));
        assert!(shown.contains("components"));
        assert!(shown.contains("Total time"));
        assert!(shown.contains("lnd"));
        assert!(shown.contains("+25.0%"));
    }
}
