//! Cost-efficiency analysis (§IV-C).
//!
//! "Another important HSLB application may be the prediction of the
//! optimal nodes to run a job. The definition of optimal depends on the
//! goal; it could be a cost-efficient goal where nodes are increased until
//! scaling is reduced to a predefined limit or it could be the shortest
//! time to solution." This module prices allocations in core-hours and
//! builds the cost/time frontier a facility user would consult before
//! requesting an INCITE-scale allocation.

use crate::exhaustive::ExhaustiveOptimizer;
use crate::fit::FitSet;
use crate::objective::Objective;
use hslb_cesm::{Layout, Machine};

/// One point of the cost/time frontier.
#[derive(Debug, Clone, Copy)]
pub struct FrontierPoint {
    /// Total nodes allocated to the job.
    pub nodes: i64,
    /// Predicted coupled time for the benchmark-length run, seconds.
    pub time_s: f64,
    /// Core-hours charged for that run (whole job allocation × duration).
    pub core_hours: f64,
    /// Speedup relative to the smallest frontier point.
    pub speedup: f64,
    /// Parallel efficiency relative to the smallest frontier point.
    pub efficiency: f64,
}

/// Core-hours to run for `seconds` on `nodes` nodes of `machine` —
/// facilities charge for the whole reservation, not the busy fraction.
pub fn core_hours(machine: &Machine, nodes: i64, seconds: f64) -> f64 {
    (nodes * machine.cores_per_node as i64) as f64 * seconds / 3600.0
}

/// Compute the cost/time frontier over doubling node counts, using the
/// fitted curves and the (near-)exact enumeration optimizer at each size.
///
/// # Examples
///
/// ```
/// use hslb::cost;
/// use hslb::FitSet;
/// use hslb_cesm::{Component, Layout, Machine};
/// use hslb_nlsq::ScalingCurve;
/// use std::collections::BTreeMap;
///
/// let mk = |a: f64, d: f64| ScalingCurve { a, b: 0.0, c: 1.0, d };
/// let fits = FitSet::from_curves(BTreeMap::from([
///     (Component::Ice, mk(8000.0, 2.0)),
///     (Component::Lnd, mk(1500.0, 1.0)),
///     (Component::Atm, mk(30000.0, 10.0)),
///     (Component::Ocn, mk(9000.0, 5.0)),
/// ])).unwrap();
/// let f = cost::frontier(&fits, &Machine::intrepid(), Layout::Hybrid, 64, 1024);
/// assert_eq!(f.len(), 5); // 64, 128, 256, 512, 1024
/// assert!(f.last().unwrap().time_s < f[0].time_s);
/// ```
pub fn frontier(
    fits: &FitSet,
    machine: &Machine,
    layout: Layout,
    min_nodes: i64,
    max_nodes: i64,
) -> Vec<FrontierPoint> {
    assert!(min_nodes >= 4, "need at least 4 nodes");
    let mut out = Vec::new();
    let mut n = min_nodes;
    let mut base: Option<(i64, f64)> = None;
    while n <= max_nodes.min(machine.nodes) {
        let time_s = ExhaustiveOptimizer::new(fits, layout, n)
            .solve(Objective::MinMax)
            .objective;
        let (n0, t0) = *base.get_or_insert((n, time_s));
        let speedup = t0 / time_s;
        let ideal = n as f64 / n0 as f64;
        out.push(FrontierPoint {
            nodes: n,
            time_s,
            core_hours: core_hours(machine, n, time_s),
            speedup,
            efficiency: speedup / ideal,
        });
        n *= 2;
    }
    out
}

/// The cheapest frontier point whose time beats `deadline_s`, if any —
/// "minimal cost subject to a throughput requirement".
pub fn cheapest_within_deadline(
    frontier: &[FrontierPoint],
    deadline_s: f64,
) -> Option<FrontierPoint> {
    frontier
        .iter()
        .filter(|p| p.time_s <= deadline_s)
        .min_by(|a, b| hslb_numerics::float::cmp_f64(a.core_hours, b.core_hours))
        .copied()
}

/// The largest size still meeting an efficiency floor — the paper's
/// "nodes are increased until scaling is reduced to a predefined limit".
pub fn largest_efficient(frontier: &[FrontierPoint], min_efficiency: f64) -> Option<FrontierPoint> {
    frontier
        .iter()
        .filter(|p| p.efficiency >= min_efficiency)
        .max_by_key(|p| p.nodes)
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hslb_cesm::Component;
    use hslb_nlsq::ScalingCurve;
    use std::collections::BTreeMap;

    fn toy_fits() -> FitSet {
        let mk = |a: f64, d: f64| ScalingCurve {
            a,
            b: 0.0,
            c: 1.0,
            d,
        };
        FitSet::from_curves(BTreeMap::from([
            (Component::Ice, mk(8_000.0, 2.0)),
            (Component::Lnd, mk(1_500.0, 1.0)),
            (Component::Atm, mk(30_000.0, 10.0)),
            (Component::Ocn, mk(9_000.0, 5.0)),
        ]))
        .unwrap()
    }

    #[test]
    fn core_hours_formula() {
        let m = Machine::intrepid(); // 4 cores/node
        assert!((core_hours(&m, 128, 3600.0) - 512.0).abs() < 1e-9);
    }

    #[test]
    fn frontier_time_decreases_cost_increases_eventually() {
        let fits = toy_fits();
        let f = frontier(&fits, &Machine::intrepid(), Layout::Hybrid, 64, 4096);
        assert!(f.len() >= 6);
        assert!(f.windows(2).all(|w| w[1].time_s <= w[0].time_s + 1e-9));
        // Efficiency is non-increasing on these curves; the last doubling
        // must be less efficient than the first.
        assert!(f.last().unwrap().efficiency < f[1].efficiency + 1e-9);
        // With a serial floor, big sizes cost more core-hours per run.
        assert!(f.last().unwrap().core_hours > f[0].core_hours);
    }

    #[test]
    fn deadline_picker_prefers_cheapest() {
        let fits = toy_fits();
        let f = frontier(&fits, &Machine::intrepid(), Layout::Hybrid, 64, 4096);
        let loose = cheapest_within_deadline(&f, f[0].time_s + 1.0).unwrap();
        assert_eq!(loose.nodes, f[0].nodes, "loose deadline → cheapest size");
        let tight = cheapest_within_deadline(&f, f.last().unwrap().time_s * 1.05).unwrap();
        assert!(tight.nodes > loose.nodes, "tight deadline forces scale-up");
        assert!(cheapest_within_deadline(&f, 0.001).is_none());
    }

    #[test]
    fn efficiency_floor_picks_a_knee() {
        let fits = toy_fits();
        let f = frontier(&fits, &Machine::intrepid(), Layout::Hybrid, 64, 16_384);
        let knee = largest_efficient(&f, 0.7).unwrap();
        assert!(knee.nodes < 16_384, "floor must bind before the max size");
        assert!(knee.efficiency >= 0.7);
    }
}
