//! Fault-tolerance policy and reporting for the pipeline.
//!
//! A real gather campaign runs on a shared machine: jobs die in the
//! queue, hang past their wall-clock budget, or come back with mangled
//! timer output. The paper's workflow quietly assumes all D×4 benchmark
//! runs succeed; this module makes the failure handling explicit so a
//! single lost run costs a retry, not the campaign:
//!
//! * [`RetryPolicy`] — per-run budget, bounded retries with exponential
//!   backoff, the paper's D ≥ 4 minimum-points rule, and a plausibility
//!   window that rejects garbage timings;
//! * [`GatherReport`] — what the campaign actually cost: attempts,
//!   failures, hangs, discarded garbage, substituted and abandoned
//!   points;
//! * [`SolverRung`] / [`ResilienceReport`] — which rung of the
//!   degradation ladder (MINLP → exhaustive enumeration → simulated
//!   expert) produced the allocation, and why any fallback was taken.

use hslb_cesm::Component;
use std::collections::BTreeMap;

/// Retry/backoff policy for benchmark and coupled runs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts per benchmark point, including the first (≥ 1).
    pub max_attempts: usize,
    /// Simulated queue backoff before the first retry; doubles each
    /// retry after that.
    pub backoff_base_seconds: f64,
    /// Backoff ceiling.
    pub backoff_cap_seconds: f64,
    /// Wall-clock budget per benchmark run (`None` = wait forever). A
    /// run that exceeds it counts as hung and is retried.
    pub run_budget_seconds: Option<f64>,
    /// Minimum benchmark points per component before accuracy is
    /// considered degraded — the paper's "at least greater than four
    /// for each component" (§III-C).
    pub min_points: usize,
    /// `(lo, hi)` exclusive plausibility window in seconds; timings
    /// outside it are treated as corrupt output and discarded.
    pub plausible_seconds: (f64, f64),
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_seconds: 30.0,
            backoff_cap_seconds: 480.0,
            run_budget_seconds: None,
            min_points: 4,
            plausible_seconds: (1e-3, 1e5),
        }
    }
}

impl RetryPolicy {
    /// Backoff slept before attempt `attempt` (0-based; the first
    /// attempt waits nothing).
    pub fn backoff_before(&self, attempt: usize) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        let factor = 2f64.powi(attempt.saturating_sub(1).min(30) as i32);
        (self.backoff_base_seconds * factor).min(self.backoff_cap_seconds)
    }

    /// True when a reported timing is physically plausible.
    pub fn plausible(&self, seconds: f64) -> bool {
        let (lo, hi) = self.plausible_seconds;
        seconds.is_finite() && seconds > lo && seconds < hi
    }
}

/// Accounting of one gather campaign under faults.
#[derive(Debug, Clone, Default)]
pub struct GatherReport {
    /// Benchmark runs launched (including retries and substitutions).
    pub attempts: usize,
    /// Runs that returned a usable timing.
    pub succeeded: usize,
    /// Runs that failed outright.
    pub failed_runs: usize,
    /// Runs killed at the wall-clock budget.
    pub hung_runs: usize,
    /// Timings rejected by the plausibility window.
    pub garbage_discarded: usize,
    /// Points that needed at least one retry.
    pub retried_points: usize,
    /// Points recovered at a replacement node count after every attempt
    /// at the planned count failed.
    pub substituted_points: usize,
    /// Points given up on entirely.
    pub abandoned_points: usize,
    /// Total simulated backoff time spent waiting between retries.
    pub backoff_seconds: f64,
    /// Wall-clock burned by hung runs before they were killed.
    pub wasted_seconds: f64,
    /// Usable points per component after the campaign.
    pub points: BTreeMap<Component, usize>,
}

impl GatherReport {
    /// True when no fault of any kind was observed.
    pub fn is_clean(&self) -> bool {
        self.failed_runs == 0
            && self.hung_runs == 0
            && self.garbage_discarded == 0
            && self.substituted_points == 0
            && self.abandoned_points == 0
    }

    /// Fewest usable points across the optimized components.
    pub fn min_component_points(&self) -> usize {
        Component::OPTIMIZED
            .iter()
            .map(|c| self.points.get(c).copied().unwrap_or(0))
            .min()
            .unwrap_or(0)
    }

    /// True when every optimized component kept at least `d` points.
    pub fn meets_minimum(&self, d: usize) -> bool {
        self.min_component_points() >= d
    }

    /// True when the campaign lost data the fit will feel: a point was
    /// substituted or abandoned, or a component fell below `min_points`.
    pub fn degraded(&self, min_points: usize) -> bool {
        self.substituted_points > 0 || self.abandoned_points > 0 || !self.meets_minimum(min_points)
    }
}

impl std::fmt::Display for GatherReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} attempts, {} ok, {} failed, {} hung, {} garbage; \
             {} retried, {} substituted, {} abandoned",
            self.attempts,
            self.succeeded,
            self.failed_runs,
            self.hung_runs,
            self.garbage_discarded,
            self.retried_points,
            self.substituted_points,
            self.abandoned_points
        )
    }
}

/// Which rung of the degradation ladder produced the allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverRung {
    /// The paper's MINLP branch-and-bound (rung 1, full accuracy).
    Minlp,
    /// Exhaustive enumeration over the fitted curves (rung 2 — also the
    /// normal route for nonconvex objectives).
    Exhaustive,
    /// The simulated-expert manual heuristic, used when no fitted
    /// curves are available at all (rung 3).
    SimulatedExpert,
}

impl std::fmt::Display for SolverRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverRung::Minlp => write!(f, "MINLP branch-and-bound"),
            SolverRung::Exhaustive => write!(f, "exhaustive enumeration"),
            SolverRung::SimulatedExpert => write!(f, "simulated expert"),
        }
    }
}

/// How the pipeline weathered a run: the gather accounting, the ladder
/// rung that won, and every fallback taken on the way down.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    pub gather: GatherReport,
    pub rung: SolverRung,
    /// Human-readable reasons for each fallback, in the order taken
    /// (empty on the happy path).
    pub fallbacks: Vec<String>,
    /// True when the reported allocation should not be trusted as
    /// optimal: the gather lost points, the solver stopped at a limit
    /// with a gap, or a ladder fallback was taken.
    pub degraded_accuracy: bool,
    /// Coupled-run attempts spent executing the final allocation.
    pub execute_attempts: usize,
}

impl std::fmt::Display for ResilienceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "gather: {}", self.gather)?;
        writeln!(
            f,
            "solver rung: {}{}",
            self.rung,
            if self.degraded_accuracy {
                " (degraded accuracy)"
            } else {
                ""
            }
        )?;
        for reason in &self.fallbacks {
            writeln!(f, "fallback: {reason}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_before(0), 0.0);
        assert_eq!(p.backoff_before(1), 30.0);
        assert_eq!(p.backoff_before(2), 60.0);
        assert_eq!(p.backoff_before(3), 120.0);
        assert_eq!(p.backoff_before(10), 480.0, "must hit the cap");
    }

    #[test]
    fn plausibility_window_rejects_garbage_shapes() {
        let p = RetryPolicy::default();
        assert!(p.plausible(306.9));
        assert!(p.plausible(0.5));
        assert!(!p.plausible(0.0));
        assert!(!p.plausible(-306.9));
        assert!(!p.plausible(306.9e7));
        assert!(!p.plausible(306.9e-8));
        assert!(!p.plausible(f64::NAN));
        assert!(!p.plausible(f64::INFINITY));
    }

    #[test]
    fn gather_report_degradation_logic() {
        let mut r = GatherReport::default();
        for c in Component::OPTIMIZED {
            r.points.insert(c, 5);
        }
        assert!(r.is_clean());
        assert!(r.meets_minimum(4));
        assert!(!r.degraded(4));

        r.garbage_discarded = 2; // noisy but nothing lost
        assert!(!r.is_clean());
        assert!(!r.degraded(4));

        r.points.insert(Component::Ice, 3); // below the paper's D ≥ 4
        assert!(r.degraded(4));
        assert_eq!(r.min_component_points(), 3);

        let mut r2 = GatherReport::default();
        for c in Component::OPTIMIZED {
            r2.points.insert(c, 5);
        }
        r2.substituted_points = 1;
        assert!(r2.degraded(4), "substitution alone marks degradation");
    }

    #[test]
    fn displays_are_informative() {
        let rep = ResilienceReport {
            gather: GatherReport::default(),
            rung: SolverRung::Exhaustive,
            fallbacks: vec!["solver hit its deadline".into()],
            degraded_accuracy: true,
            execute_attempts: 2,
        };
        let s = format!("{rep}");
        assert!(s.contains("exhaustive enumeration"));
        assert!(s.contains("degraded accuracy"));
        assert!(s.contains("deadline"));
        assert_eq!(format!("{}", SolverRung::Minlp), "MINLP branch-and-bound");
    }
}
