//! Benchmark data containers (the output of the gather step).

use hslb_cesm::{BenchPoint, Component};
use std::collections::BTreeMap;

/// Benchmark observations grouped per component.
#[derive(Debug, Clone, Default)]
pub struct BenchmarkData {
    points: BTreeMap<Component, Vec<(f64, f64)>>,
}

impl BenchmarkData {
    /// Empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest simulator benchmark points.
    pub fn from_points(points: &[BenchPoint]) -> Self {
        let mut d = Self::new();
        for p in points {
            d.push(p.component, p.nodes as f64, p.seconds);
        }
        d
    }

    /// Add one observation.
    pub fn push(&mut self, c: Component, nodes: f64, seconds: f64) {
        self.points.entry(c).or_default().push((nodes, seconds));
    }

    /// Observations for one component (empty slice when none).
    pub fn of(&self, c: Component) -> &[(f64, f64)] {
        self.points.get(&c).map_or(&[], |v| v.as_slice())
    }

    /// Components present.
    pub fn components(&self) -> Vec<Component> {
        self.points.keys().copied().collect()
    }

    /// Number of observations for a component.
    pub fn count(&self, c: Component) -> usize {
        self.of(c).len()
    }

    /// True when every optimized component has at least `d` points — the
    /// paper's "at least greater than four for each component" guidance.
    pub fn covers_optimized(&self, d: usize) -> bool {
        Component::OPTIMIZED.iter().all(|&c| self.count(c) >= d)
    }

    /// Merge another dataset into this one (e.g. reusing prior benchmark
    /// archives, §III-F: "the data gathering step can be avoided
    /// altogether if reliable benchmarks are already available").
    pub fn merge(&mut self, other: &BenchmarkData) {
        for (&c, pts) in &other.points {
            self.points.entry(c).or_default().extend_from_slice(pts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_and_counting() {
        let mut d = BenchmarkData::new();
        d.push(Component::Atm, 104.0, 306.9);
        d.push(Component::Atm, 1664.0, 62.0);
        d.push(Component::Ocn, 24.0, 362.7);
        assert_eq!(d.count(Component::Atm), 2);
        assert_eq!(d.count(Component::Ocn), 1);
        assert_eq!(d.count(Component::Ice), 0);
        assert!(!d.covers_optimized(1));
        assert_eq!(d.components(), vec![Component::Atm, Component::Ocn]);
    }

    #[test]
    fn from_points_round_trip() {
        let pts = vec![
            BenchPoint {
                component: Component::Ice,
                nodes: 80,
                seconds: 109.0,
            },
            BenchPoint {
                component: Component::Ice,
                nodes: 1280,
                seconds: 17.9,
            },
        ];
        let d = BenchmarkData::from_points(&pts);
        assert_eq!(d.of(Component::Ice), &[(80.0, 109.0), (1280.0, 17.9)]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = BenchmarkData::new();
        a.push(Component::Lnd, 24.0, 63.8);
        let mut b = BenchmarkData::new();
        b.push(Component::Lnd, 384.0, 5.8);
        b.push(Component::Atm, 104.0, 306.9);
        a.merge(&b);
        assert_eq!(a.count(Component::Lnd), 2);
        assert_eq!(a.count(Component::Atm), 1);
    }
}
