//! Post-solve sweet-spot tuning.
//!
//! Table III's final entry notes: "That tuned actual node allocation …
//! was chosen based on the HSLB predicted nodes but adjusting node counts
//! toward known component sweet spots." The MINLP sees only the fitted
//! curves; real components also prefer counts that tile their grids
//! evenly. This module snaps an optimal allocation toward those counts
//! while re-validating the layout constraints — and, because snapping can
//! shift the balance, re-optimizes the ice/land split inside the snapped
//! atmosphere group.

use crate::fit::FitSet;
use hslb_cesm::{sweetspot, Allocation, Component, Layout, Resolution};

/// Result of sweet-spot tuning.
#[derive(Debug, Clone, Copy)]
pub struct TunedAllocation {
    pub allocation: Allocation,
    /// Predicted time of the tuned allocation under the fitted curves.
    pub predicted_total: f64,
    /// How many components moved off the solver's counts.
    pub adjustments: usize,
}

/// Snap `alloc` toward sweet spots for `resolution` under `layout` on
/// `total_nodes` nodes, keeping the result feasible.
///
/// Snapping order matters: ocean first (it owns its node block), then the
/// atmosphere into the remaining budget, then ice/land re-split inside
/// the atmosphere group with the fitted curves.
pub fn snap_to_sweet_spots(
    fits: &FitSet,
    resolution: Resolution,
    layout: Layout,
    total_nodes: i64,
    alloc: &Allocation,
) -> TunedAllocation {
    let mut tuned = *alloc;
    let mut adjustments = 0usize;

    // Ocean: snap within the machine.
    let ocn = sweetspot::snap(resolution, Component::Ocn, tuned.ocn, total_nodes - 2);
    if ocn != tuned.ocn {
        adjustments += 1;
        tuned.ocn = ocn;
    }

    // Atmosphere: snap into the remaining budget (layout 1/2 share it).
    let atm_cap = match layout {
        Layout::Hybrid | Layout::SequentialWithOcean => total_nodes - tuned.ocn,
        Layout::FullySequential => total_nodes,
    };
    let atm = sweetspot::snap(resolution, Component::Atm, tuned.atm.min(atm_cap), atm_cap);
    if atm != tuned.atm {
        adjustments += 1;
        tuned.atm = atm;
    }

    // Ice/land: re-split the (possibly changed) atmosphere group
    // optimally, then snap ice and give land the remainder.
    if layout == Layout::Hybrid {
        let budget = tuned.atm;
        let f = |ni: i64| {
            fits.predict(Component::Ice, ni)
                .max(fits.predict(Component::Lnd, budget - ni))
        };
        let (ni, _) = hslb_numerics::scalar::integer_ternary_min(f, 1, budget - 1);
        let ice = sweetspot::snap(resolution, Component::Ice, ni, budget - 1);
        let lnd = budget - ice;
        if ice != alloc.ice {
            adjustments += 1;
        }
        if lnd != alloc.lnd {
            adjustments += 1;
        }
        tuned.ice = ice;
        tuned.lnd = lnd.max(1);
    } else {
        let cap = atm_cap;
        let ice = sweetspot::snap(resolution, Component::Ice, tuned.ice.min(cap), cap);
        let lnd = sweetspot::snap(resolution, Component::Lnd, tuned.lnd.min(cap), cap);
        if ice != tuned.ice {
            adjustments += 1;
        }
        if lnd != tuned.lnd {
            adjustments += 1;
        }
        tuned.ice = ice;
        tuned.lnd = lnd;
    }

    debug_assert!(
        layout.check(&tuned, total_nodes).is_none(),
        "tuning produced an invalid allocation: {tuned}"
    );

    TunedAllocation {
        allocation: tuned,
        predicted_total: fits.predicted_total(layout, &tuned),
        adjustments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hslb_nlsq::ScalingCurve;
    use std::collections::BTreeMap;

    fn fits() -> FitSet {
        let mk = |a: f64, d: f64| ScalingCurve {
            a,
            b: 0.0,
            c: 1.0,
            d,
        };
        FitSet::from_curves(BTreeMap::from([
            (Component::Ice, mk(8_000.0, 2.0)),
            (Component::Lnd, mk(1_500.0, 1.0)),
            (Component::Atm, mk(30_000.0, 10.0)),
            (Component::Ocn, mk(9_000.0, 5.0)),
        ]))
        .unwrap()
    }

    #[test]
    fn snapping_respects_layout_constraints() {
        let raw = Allocation {
            lnd: 299,
            ice: 22_657,
            atm: 22_956,
            ocn: 9_811, // not a multiple of 4 → snaps
        };
        let tuned = snap_to_sweet_spots(
            &fits(),
            Resolution::EighthDegree,
            Layout::Hybrid,
            32_768,
            &raw,
        );
        let a = tuned.allocation;
        assert!(Layout::Hybrid.check(&a, 32_768).is_none());
        assert_eq!(a.ocn % 4, 0, "ocean snapped to a sweet spot");
        assert_eq!(a.atm % 8, 0, "atmosphere snapped to a sweet spot");
        assert!(tuned.adjustments >= 2);
    }

    #[test]
    fn already_sweet_allocations_are_untouched_in_ocn_atm() {
        let raw = Allocation {
            lnd: 300,
            ice: 20_588,
            atm: 20_888, // multiple of 8, fits the post-ocn budget
            ocn: 11_880, // multiple of 4
        };
        let tuned = snap_to_sweet_spots(
            &fits(),
            Resolution::EighthDegree,
            Layout::Hybrid,
            32_768,
            &raw,
        );
        assert_eq!(tuned.allocation.ocn, 11_880);
        assert_eq!(tuned.allocation.atm, 20_888);
    }

    #[test]
    fn predicted_total_is_reported_for_the_tuned_point() {
        let raw = Allocation {
            lnd: 38,
            ice: 400,
            atm: 438,
            ocn: 74,
        };
        let tuned = snap_to_sweet_spots(&fits(), Resolution::OneDegree, Layout::Hybrid, 512, &raw);
        assert!(tuned.predicted_total.is_finite());
        assert!(tuned.predicted_total > 0.0);
    }
}
