//! Expression AST with evaluation and differentiation entry points.

use crate::model::VarId;

/// A scalar expression over model variables.
///
/// The node set is exactly what the paper's models need: affine
/// combinations, products, quotients and real powers (the performance
/// function is `a/n + b·n^c + d`). Powers take a *constant* exponent;
/// bases are expected positive when the exponent is non-integral (node
/// counts are ≥ 1 in every model, so this holds by construction).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant.
    Const(f64),
    /// A model variable.
    Var(VarId),
    /// Sum of subexpressions.
    Sum(Vec<Expr>),
    /// Product of subexpressions.
    Prod(Vec<Expr>),
    /// `base ^ exponent` with a constant exponent.
    Pow(Box<Expr>, f64),
    /// Negation.
    Neg(Box<Expr>),
    /// Quotient.
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Constant constructor (reads better than `Expr::Const` in models).
    pub fn c(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// Variable constructor.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// `self ^ p` with constant exponent.
    pub fn pow(self, p: f64) -> Expr {
        Expr::Pow(Box::new(self), p)
    }

    /// `1 / self`.
    pub fn recip(self) -> Expr {
        Expr::Div(Box::new(Expr::Const(1.0)), Box::new(self))
    }

    /// Evaluate at the point `x` (indexed by `VarId`).
    pub fn eval(&self, x: &[f64]) -> f64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Var(i) => x[*i],
            Expr::Sum(terms) => terms.iter().map(|t| t.eval(x)).sum(),
            Expr::Prod(factors) => factors.iter().map(|f| f.eval(x)).product(),
            Expr::Pow(base, p) => base.eval(x).powf(*p),
            Expr::Neg(e) => -e.eval(x),
            Expr::Div(a, b) => a.eval(x) / b.eval(x),
        }
    }

    /// Evaluate value and gradient at `x` via forward-mode automatic
    /// differentiation. The gradient has `x.len()` entries.
    pub fn eval_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        crate::ad::eval_grad(self, x)
    }

    /// Collect the set of variables appearing in the expression, sorted
    /// and deduplicated.
    pub fn variables(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(i) => out.push(*i),
            Expr::Sum(ts) => ts.iter().for_each(|t| t.collect_vars(out)),
            Expr::Prod(fs) => fs.iter().for_each(|f| f.collect_vars(out)),
            Expr::Pow(b, _) => b.collect_vars(out),
            Expr::Neg(e) => e.collect_vars(out),
            Expr::Div(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Attempt to view the expression as affine; `None` when any nonlinear
    /// node is reachable. Constant folding is applied along the way, so
    /// e.g. `Prod[Const(2), Var(0)]` is linear.
    pub fn as_linear(&self) -> Option<crate::linear::LinExpr> {
        crate::linear::extract(self)
    }

    /// True when [`Expr::as_linear`] succeeds.
    pub fn is_linear(&self) -> bool {
        self.as_linear().is_some()
    }

    /// Render with variable names supplied by `name`.
    pub fn display_with<'a>(&'a self, name: &'a dyn Fn(VarId) -> String) -> ExprDisplay<'a> {
        ExprDisplay { expr: self, name }
    }
}

/// Helper for rendering expressions with model-provided variable names.
pub struct ExprDisplay<'a> {
    expr: &'a Expr,
    name: &'a dyn Fn(VarId) -> String,
}

impl std::fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_expr(self.expr, self.name, f, 0)
    }
}

fn fmt_expr(
    e: &Expr,
    name: &dyn Fn(VarId) -> String,
    f: &mut std::fmt::Formatter<'_>,
    prec: u8,
) -> std::fmt::Result {
    match e {
        Expr::Const(v) => write!(f, "{v}"),
        Expr::Var(i) => write!(f, "{}", name(*i)),
        Expr::Sum(ts) => {
            if prec > 0 {
                write!(f, "(")?;
            }
            for (k, t) in ts.iter().enumerate() {
                if k > 0 {
                    write!(f, " + ")?;
                }
                fmt_expr(t, name, f, 1)?;
            }
            if prec > 0 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Expr::Prod(fs) => {
            for (k, t) in fs.iter().enumerate() {
                if k > 0 {
                    write!(f, "*")?;
                }
                fmt_expr(t, name, f, 2)?;
            }
            Ok(())
        }
        Expr::Pow(b, p) => {
            fmt_expr(b, name, f, 3)?;
            write!(f, "^{p}")
        }
        Expr::Neg(e) => {
            write!(f, "-")?;
            fmt_expr(e, name, f, 3)
        }
        Expr::Div(a, b) => {
            fmt_expr(a, name, f, 2)?;
            write!(f, "/")?;
            fmt_expr(b, name, f, 3)
        }
    }
}

// ---- operator overloads (Expr ∘ Expr, Expr ∘ f64, f64 ∘ Expr) ----

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        match (self, rhs) {
            (Expr::Sum(mut a), Expr::Sum(b)) => {
                a.extend(b);
                Expr::Sum(a)
            }
            (Expr::Sum(mut a), b) => {
                a.push(b);
                Expr::Sum(a)
            }
            (a, Expr::Sum(mut b)) => {
                b.insert(0, a);
                Expr::Sum(b)
            }
            (a, b) => Expr::Sum(vec![a, b]),
        }
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    // a − b is represented as a + (−b) on purpose: Neg is a first-class
    // IR node and downstream passes only need to handle Add.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Expr) -> Expr {
        self + Expr::Neg(Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Prod(vec![self, rhs])
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

impl std::ops::Add<f64> for Expr {
    type Output = Expr;
    fn add(self, rhs: f64) -> Expr {
        self + Expr::Const(rhs)
    }
}

impl std::ops::Add<Expr> for f64 {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Const(self) + rhs
    }
}

impl std::ops::Sub<f64> for Expr {
    type Output = Expr;
    fn sub(self, rhs: f64) -> Expr {
        self - Expr::Const(rhs)
    }
}

impl std::ops::Sub<Expr> for f64 {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Const(self) - rhs
    }
}

impl std::ops::Mul<f64> for Expr {
    type Output = Expr;
    fn mul(self, rhs: f64) -> Expr {
        self * Expr::Const(rhs)
    }
}

impl std::ops::Mul<Expr> for f64 {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Const(self) * rhs
    }
}

impl std::ops::Div<f64> for Expr {
    type Output = Expr;
    fn div(self, rhs: f64) -> Expr {
        self / Expr::Const(rhs)
    }
}

impl std::ops::Div<Expr> for f64 {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Const(self) / rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_performance_function_shape() {
        // T(n) = a/n + b*n^c + d at n = 4 with a=8, b=0.5, c=1.5, d=2.
        let n = Expr::var(0);
        let t = 8.0 / n.clone() + 0.5 * n.pow(1.5) + 2.0;
        let v = t.eval(&[4.0]);
        assert!((v - (2.0 + 0.5 * 8.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn variables_are_sorted_and_deduped() {
        let e = Expr::var(3) + Expr::var(1) * Expr::var(3);
        assert_eq!(e.variables(), vec![1, 3]);
    }

    #[test]
    fn sum_flattening() {
        let e = (Expr::var(0) + Expr::var(1)) + (Expr::var(2) + Expr::var(3));
        match e {
            Expr::Sum(ts) => assert_eq!(ts.len(), 4),
            _ => panic!("expected flattened sum"),
        }
    }

    #[test]
    fn linearity_detection() {
        let lin = 2.0 * Expr::var(0) + 3.0 * Expr::var(1) - 1.0;
        assert!(lin.is_linear());
        let nonlin = Expr::var(0) * Expr::var(1);
        assert!(!nonlin.is_linear());
        let pow1 = Expr::var(0).pow(1.0);
        assert!(pow1.is_linear()); // x^1 folds to x
    }

    #[test]
    fn display_round_trip_readability() {
        let n = Expr::var(0);
        let t = 8.0 / n.clone() + 0.5 * n.pow(1.5);
        let naming = |v: VarId| format!("n{v}");
        let shown = format!("{}", t.display_with(&naming));
        assert!(shown.contains("n0"), "{shown}");
        assert!(shown.contains("^1.5"), "{shown}");
    }

    #[test]
    fn neg_and_sub() {
        let e = Expr::var(0) - Expr::var(1);
        assert_eq!(e.eval(&[5.0, 3.0]), 2.0);
        let e = -Expr::var(0);
        assert_eq!(e.eval(&[5.0]), -5.0);
        let e = 10.0 - Expr::var(0);
        assert_eq!(e.eval(&[4.0]), 6.0);
    }

    #[test]
    fn div_and_recip() {
        let e = Expr::var(0).recip();
        assert_eq!(e.eval(&[4.0]), 0.25);
        let e = Expr::var(0) / Expr::var(1);
        assert_eq!(e.eval(&[6.0, 3.0]), 2.0);
    }
}
