//! Extraction of the affine fragment of an [`Expr`].

use crate::expr::Expr;
use crate::model::VarId;
use std::collections::BTreeMap;

/// An affine expression `Σ coeff·x + constant` with canonical (sorted,
/// merged) terms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinExpr {
    /// Coefficients keyed by variable, zero-coefficient entries removed.
    pub terms: BTreeMap<VarId, f64>,
    /// Constant offset.
    pub constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A pure constant.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// A single variable with coefficient 1.
    pub fn variable(v: VarId) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(v, 1.0);
        LinExpr {
            terms,
            constant: 0.0,
        }
    }

    /// Add `coeff · var` to the expression.
    pub fn add_term(&mut self, var: VarId, coeff: f64) {
        let entry = self.terms.entry(var).or_insert(0.0);
        *entry += coeff;
        if *entry == 0.0 {
            self.terms.remove(&var);
        }
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &LinExpr) {
        for (&v, &c) in &other.terms {
            self.add_term(v, c);
        }
        self.constant += other.constant;
    }

    /// In-place `self *= k`.
    pub fn scale(&mut self, k: f64) {
        if k == 0.0 {
            self.terms.clear();
            self.constant = 0.0;
            return;
        }
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.constant *= k;
    }

    /// Evaluate at a point indexed by `VarId`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|(&v, &c)| c * x[v]).sum::<f64>()
    }

    /// Sparse `(var, coeff)` pairs, sorted by variable.
    pub fn pairs(&self) -> Vec<(VarId, f64)> {
        self.terms.iter().map(|(&v, &c)| (v, c)).collect()
    }

    /// True when there are no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Try to express `e` as affine; `None` if any genuinely nonlinear node is
/// reachable. Folds constants along the way, so products with constant
/// factors and `x^1` / `x^0` are recognized as linear.
pub fn extract(e: &Expr) -> Option<LinExpr> {
    match e {
        Expr::Const(v) => Some(LinExpr::constant(*v)),
        Expr::Var(i) => Some(LinExpr::variable(*i)),
        Expr::Sum(terms) => {
            let mut acc = LinExpr::zero();
            for t in terms {
                acc.add_assign(&extract(t)?);
            }
            Some(acc)
        }
        Expr::Neg(inner) => {
            let mut l = extract(inner)?;
            l.scale(-1.0);
            Some(l)
        }
        Expr::Prod(factors) => {
            // Linear iff at most one factor is non-constant.
            let mut linear_part: Option<LinExpr> = None;
            let mut scalar = 1.0;
            for f in factors {
                let l = extract(f)?;
                if l.is_constant() {
                    scalar *= l.constant;
                } else if linear_part.is_none() {
                    linear_part = Some(l);
                } else {
                    return None; // product of two variable-bearing factors
                }
            }
            let mut out = linear_part.unwrap_or_else(|| LinExpr::constant(1.0));
            out.scale(scalar);
            Some(out)
        }
        Expr::Pow(base, p) => {
            let l = extract(base)?;
            if l.is_constant() {
                return Some(LinExpr::constant(l.constant.powf(*p)));
            }
            if *p == 1.0 {
                Some(l)
            } else if *p == 0.0 {
                Some(LinExpr::constant(1.0))
            } else {
                None
            }
        }
        Expr::Div(a, b) => {
            let lb = extract(b)?;
            if !lb.is_constant() {
                return None; // variable in the denominator
            }
            let mut la = extract(a)?;
            la.scale(1.0 / lb.constant);
            Some(la)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_affine_combination() {
        let e = 2.0 * Expr::var(0) + 3.0 * Expr::var(1) - 4.0;
        let l = extract(&e).unwrap();
        assert_eq!(l.pairs(), vec![(0, 2.0), (1, 3.0)]);
        assert_eq!(l.constant, -4.0);
        assert_eq!(l.eval(&[1.0, 1.0]), 1.0);
    }

    #[test]
    fn merges_repeated_variables() {
        let e = Expr::var(0) + 2.0 * Expr::var(0);
        let l = extract(&e).unwrap();
        assert_eq!(l.pairs(), vec![(0, 3.0)]);
    }

    #[test]
    fn cancellation_removes_term() {
        let e = Expr::var(0) - Expr::var(0);
        let l = extract(&e).unwrap();
        assert!(l.is_constant());
        assert_eq!(l.constant, 0.0);
    }

    #[test]
    fn rejects_products_of_variables() {
        assert!(extract(&(Expr::var(0) * Expr::var(1))).is_none());
    }

    #[test]
    fn rejects_variable_denominator() {
        assert!(extract(&(Expr::c(1.0) / Expr::var(0))).is_none());
    }

    #[test]
    fn folds_constant_pow_and_division() {
        let e = Expr::c(2.0).pow(3.0) * Expr::var(0) / 4.0;
        let l = extract(&e).unwrap();
        assert_eq!(l.pairs(), vec![(0, 2.0)]);
    }

    #[test]
    fn pow_one_and_zero() {
        assert_eq!(
            extract(&Expr::var(0).pow(1.0)).unwrap().pairs(),
            vec![(0, 1.0)]
        );
        let l = extract(&Expr::var(0).pow(0.0)).unwrap();
        assert!(l.is_constant());
        assert_eq!(l.constant, 1.0);
    }

    #[test]
    fn scale_by_zero_clears() {
        let mut l = LinExpr::variable(2);
        l.constant = 5.0;
        l.scale(0.0);
        assert_eq!(l, LinExpr::zero());
    }
}
