//! Declarative optimization modeling with automatic differentiation.
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//!
//! In the paper, the HSLB MINLP is written in AMPL, which provides (a) a
//! notation close to the mathematics of Table I/II, and (b) exact
//! derivatives of the nonlinear constraint functions for the solver's
//! linearization (outer-approximation) step. This crate plays both roles
//! for the Rust reproduction:
//!
//! * [`Expr`] — a small expression AST (`+`, `·`, `/`, `x^p`) with
//!   evaluation and forward-mode automatic differentiation. Its operator
//!   overloads make model construction read like the paper's Table I.
//! * [`Model`] — a container of typed variables (continuous / integer /
//!   binary), linear and nonlinear constraints with declared convexity,
//!   SOS-1 sets (the paper's "special ordered sets" for the atmosphere and
//!   ocean allowed node counts), and a minimize/maximize objective.
//! * [`LinExpr`] — the linear fragment, extracted automatically so the
//!   MINLP solver can route linear rows straight to the LP.
//!
//! The solver crate (`hslb-minlp`) consumes a [`Model`] directly.

mod ad;
pub mod ampl;
mod expr;
mod linear;
mod model;

pub use ampl::to_ampl;
pub use expr::Expr;
pub use linear::LinExpr;
pub use model::{
    Constraint, ConstraintSense, Convexity, Model, ModelError, Objective, ObjectiveSense, Sos1,
    VarId, VarType,
};
