//! The optimization model container (AMPL-model equivalent).

use crate::expr::Expr;

/// Index of a variable within a [`Model`].
pub type VarId = usize;

/// Typing of a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarType {
    /// Real-valued.
    Continuous,
    /// Integer-valued (`ℤ` restricted to the bounds).
    Integer,
    /// 0/1 variable (integer with bounds forced into `[0, 1]`).
    Binary,
}

/// Sense of a constraint `expr ⟨sense⟩ rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintSense {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// Declared curvature of a constraint's expression, used by the MINLP
/// solver to decide whether outer-approximation cuts are valid.
///
/// In `g(x) ≤ 0` form (after moving the rhs over and normalizing `≥` by
/// negation), a `Convex` declaration promises `g` is convex, so a tangent
/// plane never cuts off feasible points. The paper's performance functions
/// `a/n + b·n^c + d` with `a,b,d ≥ 0` and `c ≥ 1` are convex on `n > 0`,
/// which is exactly why MINOTAUR's LP/NLP branch-and-bound finds global
/// optima there (§III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Convexity {
    /// Affine; detected automatically, routed straight to the LP.
    Linear,
    /// Convex in `g(x) ≤ 0` form: linearizations are globally valid.
    Convex,
    /// No convexity promise: the solver must not derive cuts from it and
    /// falls back to feasibility checks plus branching (used by the
    /// optional `T_sync` constraints, which are differences of convex
    /// functions).
    Nonconvex,
}

/// A constraint `expr ⟨sense⟩ rhs` with a declared convexity.
#[derive(Debug, Clone)]
pub struct Constraint {
    pub name: String,
    pub expr: Expr,
    pub sense: ConstraintSense,
    pub rhs: f64,
    pub convexity: Convexity,
}

/// A special-ordered set of type 1: at most one member may be nonzero.
///
/// The paper models the ocean/atmosphere allowed node counts with binaries
/// `z_k` and constraints `Σ z_k = 1`, `Σ z_k·O_k = n_o`, then tells the
/// solver to branch on the *set* rather than on individual binaries —
/// "which improved the runtime of the MINLP solver by two orders of
/// magnitude". The weights order the members for the split.
#[derive(Debug, Clone)]
pub struct Sos1 {
    pub name: String,
    /// `(variable, weight)` pairs; weights must be strictly increasing.
    pub members: Vec<(VarId, f64)>,
}

/// Objective direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveSense {
    Minimize,
    Maximize,
}

/// The model objective.
#[derive(Debug, Clone)]
pub struct Objective {
    pub expr: Expr,
    pub sense: ObjectiveSense,
}

/// Errors raised while building a model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Bounds inverted or NaN.
    BadBounds { var: String },
    /// SOS weights not strictly increasing.
    BadSosWeights { set: String },
    /// Expression references a variable id not in this model.
    UnknownVariable { id: VarId },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::BadBounds { var } => write!(f, "bad bounds on variable {var}"),
            ModelError::BadSosWeights { set } => {
                write!(f, "SOS-1 weights not strictly increasing in set {set}")
            }
            ModelError::UnknownVariable { id } => write!(f, "unknown variable id {id}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub vtype: VarType,
}

/// A mixed-integer nonlinear model: typed variables, linear/nonlinear
/// constraints, SOS-1 sets and an objective.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub constraints: Vec<Constraint>,
    pub sos1: Vec<Sos1>,
    pub objective: Objective,
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl Model {
    /// Create an empty model with a zero minimization objective.
    pub fn new() -> Self {
        Model {
            vars: Vec::new(),
            constraints: Vec::new(),
            sos1: Vec::new(),
            objective: Objective {
                expr: Expr::Const(0.0),
                sense: ObjectiveSense::Minimize,
            },
        }
    }

    /// Add a variable; binaries get their bounds clipped into `[0, 1]`.
    pub fn add_var(
        &mut self,
        name: &str,
        vtype: VarType,
        lb: f64,
        ub: f64,
    ) -> Result<VarId, ModelError> {
        if lb.is_nan() || ub.is_nan() || lb > ub {
            return Err(ModelError::BadBounds {
                var: name.to_string(),
            });
        }
        let (lb, ub) = match vtype {
            VarType::Binary => (lb.max(0.0), ub.min(1.0)),
            _ => (lb, ub),
        };
        if lb > ub {
            return Err(ModelError::BadBounds {
                var: name.to_string(),
            });
        }
        self.vars.push(VarDef {
            name: name.to_string(),
            lb,
            ub,
            vtype,
        });
        Ok(self.vars.len() - 1)
    }

    /// Shorthand: continuous variable.
    pub fn continuous(&mut self, name: &str, lb: f64, ub: f64) -> Result<VarId, ModelError> {
        self.add_var(name, VarType::Continuous, lb, ub)
    }

    /// Shorthand: integer variable.
    pub fn integer(&mut self, name: &str, lb: f64, ub: f64) -> Result<VarId, ModelError> {
        self.add_var(name, VarType::Integer, lb, ub)
    }

    /// Shorthand: binary variable.
    pub fn binary(&mut self, name: &str) -> Result<VarId, ModelError> {
        self.add_var(name, VarType::Binary, 0.0, 1.0)
    }

    /// Add a constraint. Linearity is detected automatically and overrides
    /// the declared convexity with [`Convexity::Linear`].
    pub fn constrain(
        &mut self,
        name: &str,
        expr: Expr,
        sense: ConstraintSense,
        rhs: f64,
        convexity: Convexity,
    ) -> Result<(), ModelError> {
        self.check_vars(&expr)?;
        let convexity = if expr.is_linear() {
            Convexity::Linear
        } else {
            convexity
        };
        self.constraints.push(Constraint {
            name: name.to_string(),
            expr,
            sense,
            rhs,
            convexity,
        });
        Ok(())
    }

    /// Add an SOS-1 set over `(variable, weight)` pairs; weights must be
    /// strictly increasing.
    pub fn add_sos1(&mut self, name: &str, members: Vec<(VarId, f64)>) -> Result<(), ModelError> {
        for w in members.windows(2) {
            if w[1].1 <= w[0].1 {
                return Err(ModelError::BadSosWeights {
                    set: name.to_string(),
                });
            }
        }
        for &(v, _) in &members {
            if v >= self.vars.len() {
                return Err(ModelError::UnknownVariable { id: v });
            }
        }
        self.sos1.push(Sos1 {
            name: name.to_string(),
            members,
        });
        Ok(())
    }

    /// Set the objective.
    pub fn set_objective(&mut self, expr: Expr, sense: ObjectiveSense) -> Result<(), ModelError> {
        self.check_vars(&expr)?;
        self.objective = Objective { expr, sense };
        Ok(())
    }

    fn check_vars(&self, expr: &Expr) -> Result<(), ModelError> {
        for v in expr.variables() {
            if v >= self.vars.len() {
                return Err(ModelError::UnknownVariable { id: v });
            }
        }
        Ok(())
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Bounds of a variable.
    pub fn bounds(&self, v: VarId) -> (f64, f64) {
        (self.vars[v].lb, self.vars[v].ub)
    }

    /// Type of a variable.
    pub fn var_type(&self, v: VarId) -> VarType {
        self.vars[v].vtype
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v].name
    }

    /// Maximum violation of all constraints and bounds at `x` (0 when
    /// feasible). Integrality is *not* checked here.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0_f64;
        for c in &self.constraints {
            let v = c.expr.eval(x);
            let viol = match c.sense {
                ConstraintSense::Le => v - c.rhs,
                ConstraintSense::Ge => c.rhs - v,
                ConstraintSense::Eq => (v - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        for (i, def) in self.vars.iter().enumerate() {
            worst = worst.max(def.lb - x[i]).max(x[i] - def.ub);
        }
        worst
    }

    /// Objective value at `x` (as stated — no sign normalization).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.expr.eval(x)
    }
}

impl std::fmt::Display for Model {
    /// AMPL-flavoured rendering, handy for debugging layout models.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let namer = |v: VarId| self.vars[v].name.clone();
        for (i, v) in self.vars.iter().enumerate() {
            let kind = match v.vtype {
                VarType::Continuous => "",
                VarType::Integer => " integer",
                VarType::Binary => " binary",
            };
            writeln!(f, "var {} >= {} <= {}{kind}; # id {i}", v.name, v.lb, v.ub)?;
        }
        let sense = match self.objective.sense {
            ObjectiveSense::Minimize => "minimize",
            ObjectiveSense::Maximize => "maximize",
        };
        writeln!(
            f,
            "{sense} obj: {};",
            self.objective.expr.display_with(&namer)
        )?;
        for c in &self.constraints {
            let s = match c.sense {
                ConstraintSense::Le => "<=",
                ConstraintSense::Ge => ">=",
                ConstraintSense::Eq => "=",
            };
            writeln!(
                f,
                "s.t. {}: {} {s} {}; # {:?}",
                c.name,
                c.expr.display_with(&namer),
                c.rhs,
                c.convexity
            )?;
        }
        for s in &self.sos1 {
            let names: Vec<String> = s.members.iter().map(|&(v, _)| namer(v)).collect();
            writeln!(f, "sos1 {}: {{{}}};", s.name, names.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn builds_a_small_minlp() {
        let mut m = Model::new();
        let n = m.integer("n", 1.0, 100.0).unwrap();
        let t = m.continuous("T", 0.0, f64::INFINITY).unwrap();
        // T ≥ 10/n + 0.1 n  →  10/n + 0.1 n − T ≤ 0
        let g = 10.0 / Expr::var(n) + 0.1 * Expr::var(n) - Expr::var(t);
        m.constrain("perf", g, ConstraintSense::Le, 0.0, Convexity::Convex)
            .unwrap();
        m.set_objective(Expr::var(t), ObjectiveSense::Minimize)
            .unwrap();
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.constraints.len(), 1);
        assert_eq!(m.constraints[0].convexity, Convexity::Convex);
    }

    #[test]
    fn linear_constraints_are_reclassified() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 1.0).unwrap();
        m.constrain(
            "lin",
            2.0 * Expr::var(x),
            ConstraintSense::Le,
            1.0,
            Convexity::Convex, // declared convex, but it is linear
        )
        .unwrap();
        assert_eq!(m.constraints[0].convexity, Convexity::Linear);
    }

    #[test]
    fn binary_bounds_are_clipped() {
        let mut m = Model::new();
        let z = m.add_var("z", VarType::Binary, -5.0, 5.0).unwrap();
        assert_eq!(m.bounds(z), (0.0, 1.0));
    }

    #[test]
    fn sos_weights_must_increase() {
        let mut m = Model::new();
        let a = m.binary("a").unwrap();
        let b = m.binary("b").unwrap();
        assert!(m.add_sos1("bad", vec![(a, 2.0), (b, 1.0)]).is_err());
        assert!(m.add_sos1("good", vec![(a, 1.0), (b, 2.0)]).is_ok());
    }

    #[test]
    fn rejects_unknown_variables() {
        let mut m = Model::new();
        let _ = m.continuous("x", 0.0, 1.0).unwrap();
        let err = m.constrain(
            "bad",
            Expr::var(7),
            ConstraintSense::Le,
            0.0,
            Convexity::Linear,
        );
        assert!(matches!(err, Err(ModelError::UnknownVariable { id: 7 })));
    }

    #[test]
    fn violation_measures_worst_constraint() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 10.0).unwrap();
        m.constrain(
            "c",
            Expr::var(x),
            ConstraintSense::Ge,
            4.0,
            Convexity::Linear,
        )
        .unwrap();
        assert_eq!(m.max_violation(&[1.0]), 3.0);
        assert_eq!(m.max_violation(&[5.0]), 0.0);
    }

    #[test]
    fn display_is_ampl_flavoured() {
        let mut m = Model::new();
        let n = m.integer("n_ocn", 2.0, 768.0).unwrap();
        m.set_objective(Expr::var(n), ObjectiveSense::Minimize)
            .unwrap();
        let shown = format!("{m}");
        assert!(shown.contains("var n_ocn"), "{shown}");
        assert!(shown.contains("minimize obj"), "{shown}");
    }
}
