//! Forward-mode automatic differentiation over [`Expr`].
//!
//! AMPL gives its solvers exact derivatives of the model functions; this
//! module is our equivalent. Each AST node propagates a `(value, gradient)`
//! pair. The expressions in the HSLB models are tiny (a performance curve
//! touches one variable, a temporal constraint two or three), so the dense
//! per-node gradient vector costs nothing in practice while keeping the
//! recursion straightforward to audit.

use crate::expr::Expr;

/// Value and dense gradient of `e` at `x`.
pub fn eval_grad(e: &Expr, x: &[f64]) -> (f64, Vec<f64>) {
    let mut g = vec![0.0; x.len()];
    let v = walk(e, x, &mut g, 1.0);
    (v, g)
}

/// Evaluate `e` and accumulate `seed · ∂e/∂x` into `grad`.
///
/// Recursing with a seed (the chain-rule multiplier from the parent)
/// avoids allocating a gradient vector per node: the tree is walked once,
/// with each leaf adding its contribution directly. For product and
/// quotient nodes the children must be evaluated first (their values enter
/// the seed of their siblings), so those nodes do an extra value-only pass.
fn walk(e: &Expr, x: &[f64], grad: &mut [f64], seed: f64) -> f64 {
    match e {
        Expr::Const(v) => *v,
        Expr::Var(i) => {
            grad[*i] += seed;
            x[*i]
        }
        Expr::Sum(terms) => terms.iter().map(|t| walk(t, x, grad, seed)).sum(),
        Expr::Neg(inner) => -walk(inner, x, grad, -seed),
        Expr::Pow(base, p) => {
            let b = base.eval(x);
            let v = b.powf(*p);
            // d(b^p) = p·b^(p−1)·db
            let db_seed = seed * *p * b.powf(*p - 1.0);
            let _ = walk(base, x, grad, db_seed);
            v
        }
        Expr::Div(a, b) => {
            let bv = b.eval(x);
            let av = walk(a, x, grad, seed / bv);
            // d(a/b) = da/b − a·db/b²
            let _ = walk(b, x, grad, -seed * av / (bv * bv));
            av / bv
        }
        Expr::Prod(factors) => {
            // Values first, then each factor's seed is the product of the
            // others.
            let vals: Vec<f64> = factors.iter().map(|f| f.eval(x)).collect();
            let total: f64 = vals.iter().product();
            for (k, f) in factors.iter().enumerate() {
                // Product of all values except k; recomputed directly to be
                // robust when some value is zero.
                let others: f64 = vals
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != k)
                    .map(|(_, v)| v)
                    .product();
                let _ = walk(f, x, grad, seed * others);
            }
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_grad(e: &Expr, x: &[f64]) -> Vec<f64> {
        let h = 1e-6;
        (0..x.len())
            .map(|i| {
                let mut xp = x.to_vec();
                let mut xm = x.to_vec();
                xp[i] += h;
                xm[i] -= h;
                (e.eval(&xp) - e.eval(&xm)) / (2.0 * h)
            })
            .collect()
    }

    fn check(e: &Expr, x: &[f64]) {
        let (v, g) = eval_grad(e, x);
        assert!((v - e.eval(x)).abs() < 1e-12, "value mismatch");
        let fd = fd_grad(e, x);
        for (i, (a, b)) in g.iter().zip(&fd).enumerate() {
            assert!(
                (a - b).abs() < 1e-4 * (1.0 + b.abs()),
                "grad[{i}]: ad={a} fd={b}"
            );
        }
    }

    #[test]
    fn gradient_of_performance_function() {
        // T(n) = a/n + b n^c + d
        let n = Expr::var(0);
        let t = 120.0 / n.clone() + 0.003 * n.pow(1.2) + 4.5;
        check(&t, &[37.0]);
    }

    #[test]
    fn gradient_of_products_and_quotients() {
        let e = Expr::var(0) * Expr::var(1) / (Expr::var(2) + 1.0);
        check(&e, &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn gradient_with_zero_factor() {
        // Product rule must survive a zero-valued factor.
        let e = Expr::var(0) * Expr::var(1);
        let (_, g) = eval_grad(&e, &[0.0, 5.0]);
        assert_eq!(g, vec![5.0, 0.0]);
    }

    #[test]
    fn gradient_of_nested_pow() {
        let e = (Expr::var(0) + Expr::var(1)).pow(2.5);
        check(&e, &[1.5, 2.5]);
    }

    #[test]
    fn gradient_of_negation_chain() {
        let e = -(-(Expr::var(0) * 3.0));
        let (v, g) = eval_grad(&e, &[2.0]);
        assert_eq!(v, 6.0);
        assert_eq!(g[0], 3.0);
    }

    #[test]
    fn seed_accumulates_across_shared_variables() {
        // x appears twice: d(x + x²)/dx = 1 + 2x.
        let e = Expr::var(0) + Expr::var(0).pow(2.0);
        let (_, g) = eval_grad(&e, &[3.0]);
        assert!((g[0] - 7.0).abs() < 1e-12);
    }
}
