//! Property tests: autodiff agrees with finite differences on random
//! expression trees, and linear extraction agrees with evaluation.

use hslb_model::Expr;
use proptest::prelude::*;

/// Random expression over `nvars` variables. Positive-leaning constants
/// and shallow depth keep evaluation well-conditioned (the model domain is
/// positive node counts, so we sample positive points too).
fn arb_expr(nvars: usize, depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0.1f64..5.0).prop_map(Expr::Const),
        (0..nvars).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::Sum),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Expr::Prod),
            (inner.clone(), 0.5f64..2.5)
                .prop_map(|(b, p)| Expr::Pow(Box::new(Expr::Sum(vec![b, Expr::Const(1.0)])), p)),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Div(
                Box::new(a),
                Box::new(Expr::Sum(vec![b, Expr::Const(2.0)]))
            )),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ad_matches_finite_differences(e in arb_expr(3, 3),
                                     x in prop::collection::vec(0.5f64..4.0, 3)) {
        let (v, g) = e.eval_grad(&x);
        prop_assume!(v.is_finite() && v.abs() < 1e8);
        prop_assert!((v - e.eval(&x)).abs() <= 1e-9 * (1.0 + v.abs()));
        let h = 1e-5;
        for i in 0..x.len() {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp[i] += h;
            xm[i] -= h;
            let (fp, fm) = (e.eval(&xp), e.eval(&xm));
            prop_assume!(fp.is_finite() && fm.is_finite());
            let fd = (fp - fm) / (2.0 * h);
            prop_assume!(fd.abs() < 1e7);
            prop_assert!(
                (g[i] - fd).abs() <= 1e-3 * (1.0 + fd.abs().max(g[i].abs())),
                "var {i}: ad {} vs fd {}", g[i], fd
            );
        }
    }

    #[test]
    fn linear_extraction_agrees_with_eval(coeffs in prop::collection::vec(-5.0f64..5.0, 3),
                                          konst in -10.0f64..10.0,
                                          x in prop::collection::vec(-3.0f64..3.0, 3)) {
        // Build an affine expr through the operator API and check the
        // extracted LinExpr evaluates identically.
        let e = coeffs[0] * Expr::var(0)
            + coeffs[1] * Expr::var(1)
            + coeffs[2] * Expr::var(2)
            + konst;
        let l = e.as_linear().expect("affine by construction");
        let lhs = e.eval(&x);
        let rhs = l.eval(&x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn nonlinear_trees_with_products_of_vars_are_rejected(i in 0usize..3, j in 0usize..3) {
        let e = Expr::var(i) * Expr::var(j) + Expr::var(0);
        prop_assert!(e.as_linear().is_none());
    }
}
