//! Box-constrained nonlinear least squares for performance-curve fitting.
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//!
//! Step 2 of the paper's HSLB algorithm fits the performance model
//!
//! ```text
//! T_j(n) = a_j / n + b_j · n^{c_j} + d_j        (Table II, line 1)
//! ```
//!
//! to the benchmark timings of each CESM component by solving
//!
//! ```text
//! min_{a,b,c,d ≥ 0}  Σ_i ( y_ji − a_j/n_ji − b_j·n_ji^{c_j} − d_j )²   (Table II, line 10)
//! ```
//!
//! This crate implements the general machinery — a Levenberg–Marquardt
//! solver with projected box constraints ([`lm`]) and a deterministic
//! multistart wrapper ([`multistart`]) that reproduces the paper's
//! observation that different local optima fit equally well — plus the
//! concrete paper model with its analytic Jacobian ([`scaling`]).

pub mod diagnostics;
pub mod lm;
pub mod multistart;
pub mod scaling;

pub use diagnostics::{diagnose, FitDiagnostics};
pub use lm::{LmOptions, LmOutcome, LmResult, ResidualModel};
pub use multistart::{
    multistart_fit, multistart_fit_report, EarlyStopPolicy, MultistartOptions, MultistartReport,
};
pub use scaling::{fit_scaling, ScalingCurve, ScalingFit, ScalingFitOptions};
