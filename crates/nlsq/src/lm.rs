//! Levenberg–Marquardt with projected box constraints.

use hslb_numerics::{Cholesky, Matrix};

/// A nonlinear least-squares model: residuals `r(p)` and their Jacobian.
///
/// The cost minimized is `‖r(p)‖²`. Implementors provide residuals; the
/// Jacobian defaults to forward differences but should be overridden with
/// analytic derivatives where available (the paper's scaling model does).
pub trait ResidualModel {
    /// Number of parameters.
    fn num_params(&self) -> usize;
    /// Number of residuals (data points).
    fn num_residuals(&self) -> usize;
    /// Fill `out` (length [`Self::num_residuals`]) with residuals at `p`.
    fn residuals(&self, p: &[f64], out: &mut [f64]);
    /// Fill the `num_residuals × num_params` Jacobian `∂r_i/∂p_j` at `p`.
    ///
    /// Default: forward finite differences with per-parameter step
    /// `h = 1e-7·(1 + |p_j|)`.
    fn jacobian(&self, p: &[f64], jac: &mut Matrix) {
        let m = self.num_residuals();
        let n = self.num_params();
        let mut base = vec![0.0; m];
        self.residuals(p, &mut base);
        let mut pert = vec![0.0; m];
        let mut pj = p.to_vec();
        for j in 0..n {
            let h = 1e-7 * (1.0 + p[j].abs());
            pj[j] = p[j] + h;
            self.residuals(&pj, &mut pert);
            pj[j] = p[j];
            for i in 0..m {
                jac[(i, j)] = (pert[i] - base[i]) / h;
            }
        }
    }
    /// Lower parameter bounds (default: unbounded).
    fn lower_bounds(&self) -> Vec<f64> {
        vec![f64::NEG_INFINITY; self.num_params()]
    }
    /// Upper parameter bounds (default: unbounded).
    fn upper_bounds(&self) -> Vec<f64> {
        vec![f64::INFINITY; self.num_params()]
    }
}

/// Options for the LM iteration.
#[derive(Debug, Clone)]
pub struct LmOptions {
    /// Maximum LM iterations.
    pub max_iters: usize,
    /// Stop when the infinity norm of the gradient `Jᵀr` drops below this.
    pub grad_tol: f64,
    /// Stop when the step norm drops below this.
    pub step_tol: f64,
    /// Stop when the relative cost reduction drops below this.
    pub cost_tol: f64,
    /// Initial damping parameter λ.
    pub lambda0: f64,
}

impl Default for LmOptions {
    fn default() -> Self {
        LmOptions {
            max_iters: 200,
            grad_tol: 1e-10,
            step_tol: 1e-12,
            cost_tol: 1e-14,
            lambda0: 1e-3,
        }
    }
}

/// Why the iteration stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmOutcome {
    /// Gradient below tolerance (first-order stationary).
    GradientSmall,
    /// Step below tolerance.
    StepSmall,
    /// Relative cost reduction below tolerance.
    CostStalled,
    /// Iteration limit reached.
    MaxIterations,
}

/// Result of an LM fit.
#[derive(Debug, Clone)]
pub struct LmResult {
    /// Fitted parameters (within bounds).
    pub params: Vec<f64>,
    /// Final sum of squared residuals.
    pub cost: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Why the solver stopped.
    pub outcome: LmOutcome,
}

/// Minimize `‖r(p)‖²` from the starting point `p0`, projecting each trial
/// step onto the box `[lb, ub]` from the model.
///
/// The normal equations `(JᵀJ + λ·diag(JᵀJ))·δ = −Jᵀr` (Marquardt scaling)
/// are solved by Cholesky with a ridge fallback; λ shrinks by 3 on accepted
/// steps and grows by 7 on rejections.
pub fn levenberg_marquardt<M: ResidualModel>(model: &M, p0: &[f64], opts: &LmOptions) -> LmResult {
    let n = model.num_params();
    let m = model.num_residuals();
    assert_eq!(p0.len(), n, "starting point has wrong dimension");
    let lb = model.lower_bounds();
    let ub = model.upper_bounds();

    let mut p: Vec<f64> = p0
        .iter()
        .zip(lb.iter().zip(&ub))
        .map(|(&v, (&l, &u))| v.clamp(l, u))
        .collect();

    let mut r = vec![0.0; m];
    model.residuals(&p, &mut r);
    let mut cost = hslb_numerics::vector::dot(&r, &r);

    let mut jac = Matrix::zeros(m, n);
    let mut lambda = opts.lambda0;
    let mut outcome = LmOutcome::MaxIterations;
    let mut iterations = 0;

    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        model.jacobian(&p, &mut jac);
        // g = Jᵀr ; H = JᵀJ — `jac` and `r` were sized together above.
        #[allow(clippy::expect_used)]
        let g = jac.matvec_t(&r).expect("dims");
        if hslb_numerics::vector::norm_inf(&g) < opts.grad_tol {
            outcome = LmOutcome::GradientSmall;
            break;
        }
        let h = jac.gram();

        // Try steps with increasing damping until one reduces the cost.
        let mut accepted = false;
        for _ in 0..30 {
            let mut damped = h.clone();
            for j in 0..n {
                // Marquardt scaling with an absolute floor so zero-column
                // parameters (e.g. b when c has no signal) stay regularized.
                let dj = h[(j, j)].max(1e-12);
                damped[(j, j)] += lambda * dj;
            }
            let step =
                match Cholesky::factor_with_ridge(&damped, 1e-12, 20).and_then(|c| c.solve(&g)) {
                    Ok(mut s) => {
                        hslb_numerics::vector::scale(-1.0, &mut s);
                        s
                    }
                    Err(_) => {
                        lambda *= 7.0;
                        continue;
                    }
                };
            let mut trial: Vec<f64> = p.iter().zip(&step).map(|(&pi, &si)| pi + si).collect();
            hslb_numerics::vector::clamp_box(&mut trial, &lb, &ub);

            let mut r_trial = vec![0.0; m];
            model.residuals(&trial, &mut r_trial);
            let cost_trial = hslb_numerics::vector::dot(&r_trial, &r_trial);

            if cost_trial.is_finite() && cost_trial < cost {
                // Accepted: measure the *projected* step for convergence.
                let moved: f64 = p
                    .iter()
                    .zip(&trial)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                let reduction = (cost - cost_trial) / cost.max(1e-300);
                p = trial;
                r = r_trial;
                cost = cost_trial;
                lambda = (lambda / 3.0).max(1e-12);
                accepted = true;
                if moved < opts.step_tol {
                    outcome = LmOutcome::StepSmall;
                }
                if reduction < opts.cost_tol {
                    outcome = LmOutcome::CostStalled;
                }
                break;
            }
            lambda *= 7.0;
            if lambda > 1e14 {
                break;
            }
        }

        if !accepted {
            // No downhill step found at any damping: stationary (possibly
            // at a bound).
            outcome = LmOutcome::StepSmall;
            break;
        }
        if outcome != LmOutcome::MaxIterations {
            break;
        }
    }

    LmResult {
        params: p,
        cost,
        iterations,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = exp(k·x) sampled at fixed xs; single parameter k.
    struct ExpModel {
        xs: Vec<f64>,
        ys: Vec<f64>,
    }

    impl ResidualModel for ExpModel {
        fn num_params(&self) -> usize {
            1
        }
        fn num_residuals(&self) -> usize {
            self.xs.len()
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) {
            for (i, (&x, &y)) in self.xs.iter().zip(&self.ys).enumerate() {
                out[i] = (p[0] * x).exp() - y;
            }
        }
    }

    #[test]
    fn recovers_exponent_with_fd_jacobian() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (0.7 * x).exp()).collect();
        let m = ExpModel { xs, ys };
        let res = levenberg_marquardt(&m, &[0.1], &LmOptions::default());
        assert!((res.params[0] - 0.7).abs() < 1e-6, "k = {}", res.params[0]);
        assert!(res.cost < 1e-12);
    }

    /// Linear model y = p0·x + p1 with analytic Jacobian and a lower bound
    /// forcing p1 ≥ 2 even though the data wants p1 = 1.
    struct BoundedLine {
        xs: Vec<f64>,
        ys: Vec<f64>,
    }

    impl ResidualModel for BoundedLine {
        fn num_params(&self) -> usize {
            2
        }
        fn num_residuals(&self) -> usize {
            self.xs.len()
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) {
            for (i, (&x, &y)) in self.xs.iter().zip(&self.ys).enumerate() {
                out[i] = p[0] * x + p[1] - y;
            }
        }
        fn jacobian(&self, _p: &[f64], jac: &mut Matrix) {
            for (i, &x) in self.xs.iter().enumerate() {
                jac[(i, 0)] = x;
                jac[(i, 1)] = 1.0;
            }
        }
        fn lower_bounds(&self) -> Vec<f64> {
            vec![f64::NEG_INFINITY, 2.0]
        }
    }

    #[test]
    fn respects_box_constraints() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let m = BoundedLine { xs, ys };
        let res = levenberg_marquardt(&m, &[0.0, 5.0], &LmOptions::default());
        assert!(
            res.params[1] >= 2.0 - 1e-12,
            "bound violated: {}",
            res.params[1]
        );
        // Slope still recovered well despite the active bound.
        assert!((res.params[0] - 3.0).abs() < 0.2, "slope {}", res.params[0]);
    }

    #[test]
    fn zero_residual_start_terminates_immediately() {
        let xs: Vec<f64> = (0..5).map(|i| i as f64).collect();
        // Data exactly matching p = (2, 2), which sits on the p1 bound.
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 2.0).collect();
        let m = BoundedLine { xs, ys };
        let res = levenberg_marquardt(&m, &[2.0, 2.0], &LmOptions::default());
        assert!(res.cost < 1e-18);
        assert!(res.iterations <= 2);
    }
}
