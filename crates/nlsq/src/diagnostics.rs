//! Fit-quality diagnostics: parameter covariance, standard errors and
//! prediction intervals.
//!
//! §III-C of the paper judges fits by R² alone; for the "how many
//! benchmark points do I need" question (also §III-C) the parameter
//! standard errors are the sharper tool — they blow up exactly when the
//! four-parameter model is underdetermined. Standard Gauss–Markov
//! linearization: `cov(p) ≈ σ̂²·(JᵀJ)⁻¹` with `σ̂² = SSE/(m−p)`.

use crate::scaling::ScalingCurve;
use hslb_numerics::{lu, Matrix};

/// Diagnostics of a fitted scaling curve against its data.
#[derive(Debug, Clone)]
pub struct FitDiagnostics {
    /// Estimated residual variance `σ̂² = SSE/(m − p)`.
    pub sigma2: f64,
    /// Standard error of each parameter `[a, b, c, d]`; `INFINITY` when
    /// the Jacobian is rank-deficient in that direction.
    pub std_errors: [f64; 4],
    /// Degrees of freedom `m − p` (0 when the fit is saturated).
    pub dof: usize,
    /// Parameter covariance matrix (4×4), when invertible.
    pub covariance: Option<Matrix>,
}

impl FitDiagnostics {
    /// Approximate standard error of the *prediction* `T(n)` at a node
    /// count, by the delta method: `√(gᵀ·cov·g)` with `g = ∂T/∂p`.
    pub fn prediction_std_error(&self, curve: &ScalingCurve, n: f64) -> f64 {
        let Some(cov) = &self.covariance else {
            return f64::INFINITY;
        };
        let g = gradient(curve, n);
        // The stored covariance is 4×4 by construction; so is `g`.
        #[allow(clippy::expect_used)]
        let cg = cov.matvec(&g).expect("4x4 covariance");
        hslb_numerics::vector::dot(&g, &cg).max(0.0).sqrt()
    }
}

/// Parameter gradient of `T(n) = a/n + b·n^c + d` at `n`.
fn gradient(curve: &ScalingCurve, n: f64) -> Vec<f64> {
    let nc = n.powf(curve.c);
    vec![1.0 / n, nc, curve.b * nc * n.ln(), 1.0]
}

/// Compute diagnostics for a fitted curve on its data.
///
/// Returns `None` when there are no spare degrees of freedom (`m ≤ 4`) —
/// the paper's minimum of "greater than four" points per component is
/// exactly the condition for this to exist.
pub fn diagnose(curve: &ScalingCurve, data: &[(f64, f64)]) -> Option<FitDiagnostics> {
    let m = data.len();
    let p = 4usize;
    if m <= p {
        return None;
    }
    let dof = m - p;
    let sse: f64 = data
        .iter()
        .map(|&(n, y)| {
            let r = curve.eval(n) - y;
            r * r
        })
        .sum();
    let sigma2 = sse / dof as f64;

    // JᵀJ over the data.
    let mut jac = Matrix::zeros(m, p);
    for (i, &(n, _)) in data.iter().enumerate() {
        let g = gradient(curve, n);
        jac.row_mut(i).copy_from_slice(&g);
    }
    let jtj = jac.gram();

    // Invert via LU column-by-column; rank deficiency → no covariance,
    // infinite standard errors.
    let covariance = lu::Lu::factor(&jtj).ok().and_then(|f| {
        let mut inv = Matrix::zeros(p, p);
        for j in 0..p {
            let mut e = vec![0.0; p];
            e[j] = 1.0;
            let col = f.solve(&e).ok()?;
            for i in 0..p {
                inv[(i, j)] = col[i];
            }
        }
        Some(inv)
    });

    let std_errors = match &covariance {
        Some(cov) => {
            let mut se = [0.0; 4];
            for j in 0..4 {
                se[j] = (sigma2 * cov[(j, j)]).max(0.0).sqrt();
            }
            se
        }
        None => [f64::INFINITY; 4],
    };

    // Scale covariance by σ² so it is the parameter covariance proper.
    let covariance = covariance.map(|mut c| {
        for v in c.as_mut_slice() {
            *v *= sigma2;
        }
        c
    });

    Some(FitDiagnostics {
        sigma2,
        std_errors,
        dof,
        covariance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::{fit_scaling, ScalingFitOptions};

    fn synth(curve: ScalingCurve, ns: &[f64], jitter: f64) -> Vec<(f64, f64)> {
        ns.iter()
            .enumerate()
            .map(|(i, &n)| {
                let eps = if i % 2 == 0 {
                    1.0 + jitter
                } else {
                    1.0 - jitter
                };
                (n, curve.eval(n) * eps)
            })
            .collect()
    }

    #[test]
    fn noiseless_fit_has_tiny_sigma() {
        let truth = ScalingCurve {
            a: 10_000.0,
            b: 1e-3,
            c: 1.2,
            d: 8.0,
        };
        let data = synth(truth, &[8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0], 0.0);
        let fit = fit_scaling(&data, &ScalingFitOptions::default()).unwrap();
        let d = diagnose(&fit.curve, &data).unwrap();
        assert!(d.sigma2 < 1e-3, "sigma2 = {}", d.sigma2);
        assert_eq!(d.dof, 2);
    }

    #[test]
    fn noisier_data_means_larger_errors() {
        let truth = ScalingCurve {
            a: 10_000.0,
            b: 1e-3,
            c: 1.2,
            d: 8.0,
        };
        let ns = [8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0];
        let opts = ScalingFitOptions::default();
        let quiet = fit_scaling(&synth(truth, &ns, 0.005), &opts).unwrap();
        let noisy = fit_scaling(&synth(truth, &ns, 0.05), &opts).unwrap();
        let dq = diagnose(&quiet.curve, &synth(truth, &ns, 0.005)).unwrap();
        let dn = diagnose(&noisy.curve, &synth(truth, &ns, 0.05)).unwrap();
        assert!(dn.sigma2 > dq.sigma2);
        assert!(dn.std_errors[0] > dq.std_errors[0]);
    }

    #[test]
    fn saturated_fit_has_no_diagnostics() {
        let truth = ScalingCurve {
            a: 100.0,
            b: 0.0,
            c: 1.0,
            d: 1.0,
        };
        let data = synth(truth, &[8.0, 32.0, 128.0, 512.0], 0.0);
        assert!(diagnose(&truth, &data).is_none()); // m = p = 4
    }

    #[test]
    fn prediction_error_grows_when_extrapolating() {
        let truth = ScalingCurve {
            a: 50_000.0,
            b: 2e-3,
            c: 1.1,
            d: 20.0,
        };
        let ns = [128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0];
        let data = synth(truth, &ns, 0.02);
        let fit = fit_scaling(&data, &ScalingFitOptions::default()).unwrap();
        let d = diagnose(&fit.curve, &data).unwrap();
        let inside = d.prediction_std_error(&fit.curve, 1000.0);
        let outside = d.prediction_std_error(&fit.curve, 40_000.0);
        assert!(
            outside > inside,
            "extrapolation SE {outside} should exceed interpolation SE {inside}"
        );
    }
}
