//! Deterministic multistart wrapper around Levenberg–Marquardt.
//!
//! §III-C of the paper: "Since nonlinear optimization algorithms are
//! iterative, selecting a different starting point may lead the solver to
//! a different local solution. We experimented with different starting
//! solutions and observed that even though the parameter values may
//! differ, the solution value of the problem did not vary significantly."
//! Multistart operationalizes that experiment: run LM from several spread
//! starting points and keep the best basin.

use crate::lm::{levenberg_marquardt, LmOptions, LmResult, ResidualModel};

/// Options for [`multistart_fit`].
#[derive(Debug, Clone)]
pub struct MultistartOptions {
    /// Number of starting points (≥ 1; the first is always the caller's).
    pub starts: usize,
    /// Seed for the quasi-random start generation (deterministic).
    pub seed: u64,
    /// Run the starts on `threads` OS threads (1 = serial).
    pub threads: usize,
    /// Inner LM options.
    pub lm: LmOptions,
}

impl Default for MultistartOptions {
    fn default() -> Self {
        MultistartOptions {
            starts: 16,
            seed: 0x5eed_cafe,
            threads: 1,
            lm: LmOptions::default(),
        }
    }
}

/// SplitMix64: tiny deterministic generator for start-point jitter; keeps
/// this crate independent of the `rand` version used elsewhere.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Generate starting points inside the model's box. Bounded dimensions are
/// sampled log-uniformly when the bounds span orders of magnitude (typical
/// for the `a` parameter, which can be anywhere from seconds to hours) and
/// uniformly otherwise; unbounded dimensions jitter around `p0`.
fn generate_starts<M: ResidualModel>(
    model: &M,
    p0: &[f64],
    starts: usize,
    seed: u64,
) -> Vec<Vec<f64>> {
    let lb = model.lower_bounds();
    let ub = model.upper_bounds();
    let mut state = seed;
    let mut out = Vec::with_capacity(starts);
    out.push(p0.to_vec());
    while out.len() < starts {
        let p: Vec<f64> = (0..model.num_params())
            .map(|j| {
                let (l, u) = (lb[j], ub[j]);
                let r = unit(&mut state);
                match (l.is_finite(), u.is_finite()) {
                    (true, true) => {
                        let lpos = l.max(1e-12);
                        if u / lpos > 1e3 && l >= 0.0 {
                            // log-uniform over [max(l, 1e-12·u), u]
                            let lo = l.max(1e-12 * u);
                            (lo.ln() + r * (u.ln() - lo.ln())).exp()
                        } else {
                            l + r * (u - l)
                        }
                    }
                    (true, false) => l + (r * 6.0).exp() - 1.0 + p0[j].abs() * r,
                    (false, true) => u - (r * 6.0).exp() + 1.0 - p0[j].abs() * r,
                    (false, false) => p0[j] + (r - 0.5) * 2.0 * (1.0 + p0[j].abs()),
                }
            })
            .collect();
        out.push(p);
    }
    out
}

/// Aggregate diagnostics over one multistart run, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultistartReport {
    /// Number of starting points actually run.
    pub starts: usize,
    /// How many starts converged into the winning basin (cost within
    /// 0.1 % of the best). The paper's §III-C observation — "the solution
    /// value of the problem did not vary significantly" — shows up here as
    /// `basin_hits ≈ starts`.
    pub basin_hits: usize,
    /// Total LM iterations summed over every start.
    pub total_iterations: usize,
}

/// Fit from `starts` starting points; return the lowest-cost result.
///
/// With `threads > 1`, the starts are distributed over scoped worker
/// threads (the model is only read, so a shared reference suffices). The
/// result is deterministic regardless of thread count: ties are broken by
/// start index.
pub fn multistart_fit<M: ResidualModel + Sync>(
    model: &M,
    p0: &[f64],
    opts: &MultistartOptions,
) -> LmResult {
    multistart_fit_report(model, p0, opts).0
}

/// [`multistart_fit`] plus the per-run [`MultistartReport`].
pub fn multistart_fit_report<M: ResidualModel + Sync>(
    model: &M,
    p0: &[f64],
    opts: &MultistartOptions,
) -> (LmResult, MultistartReport) {
    let starts = generate_starts(model, p0, opts.starts.max(1), opts.seed);
    let results: Vec<(usize, LmResult)> = if opts.threads <= 1 {
        starts
            .iter()
            .enumerate()
            .map(|(i, s)| (i, levenberg_marquardt(model, s, &opts.lm)))
            .collect()
    } else {
        parallel_runs(model, &starts, opts)
    };
    let total_iterations = results.iter().map(|(_, r)| r.iterations).sum();
    let best = results
        .iter()
        .min_by(|(ia, a), (ib, b)| {
            hslb_numerics::float::cmp_f64(a.cost, b.cost).then(ia.cmp(ib))
        })
        .expect("at least one start")
        .1
        .clone();
    let tol = 1e-3 * best.cost.abs() + 1e-12;
    let basin_hits = results
        .iter()
        .filter(|(_, r)| (r.cost - best.cost).abs() <= tol)
        .count();
    (
        best,
        MultistartReport {
            starts: results.len(),
            basin_hits,
            total_iterations,
        },
    )
}

fn parallel_runs<M: ResidualModel + Sync>(
    model: &M,
    starts: &[Vec<f64>],
    opts: &MultistartOptions,
) -> Vec<(usize, LmResult)> {
    let nthreads = opts.threads.min(starts.len()).max(1);
    let mut results: Vec<Option<(usize, LmResult)>> = vec![None; starts.len()];
    let chunk = starts.len().div_ceil(nthreads);
    crossbeam::thread::scope(|scope| {
        for (slot_chunk, start_chunk) in results.chunks_mut(chunk).zip(starts.chunks(chunk)) {
            let lm = opts.lm.clone();
            scope.spawn(move |_| {
                for (slot, s) in slot_chunk.iter_mut().zip(start_chunk) {
                    *slot = Some((0, levenberg_marquardt(model, s, &lm)));
                }
            });
        }
    })
    .expect("multistart worker panicked");
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let (_, res) = r.expect("all slots filled");
            (i, res)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hslb_numerics::Matrix;

    /// A two-basin model: r(p) = (p² − 4, 0.1·(p − 1.9)). Local minima near
    /// p = ±2 with the p ≈ +2 basin slightly better.
    struct TwoBasins;

    impl ResidualModel for TwoBasins {
        fn num_params(&self) -> usize {
            1
        }
        fn num_residuals(&self) -> usize {
            2
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) {
            out[0] = p[0] * p[0] - 4.0;
            out[1] = 0.1 * (p[0] - 1.9);
        }
        fn jacobian(&self, p: &[f64], jac: &mut Matrix) {
            jac[(0, 0)] = 2.0 * p[0];
            jac[(1, 0)] = 0.1;
        }
        fn lower_bounds(&self) -> Vec<f64> {
            vec![-10.0]
        }
        fn upper_bounds(&self) -> Vec<f64> {
            vec![10.0]
        }
    }

    #[test]
    fn escapes_inferior_basin() {
        // A single start at −3 converges to the worse basin near −2…
        let single = levenberg_marquardt(&TwoBasins, &[-3.0], &LmOptions::default());
        assert!(single.params[0] < 0.0);
        // …multistart finds the better one near +2.
        let multi = multistart_fit(
            &TwoBasins,
            &[-3.0],
            &MultistartOptions {
                starts: 12,
                ..Default::default()
            },
        );
        assert!(multi.params[0] > 0.0, "stayed at {}", multi.params[0]);
        assert!(multi.cost <= single.cost + 1e-15);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let serial = multistart_fit(
            &TwoBasins,
            &[0.5],
            &MultistartOptions {
                starts: 8,
                threads: 1,
                ..Default::default()
            },
        );
        let parallel = multistart_fit(
            &TwoBasins,
            &[0.5],
            &MultistartOptions {
                starts: 8,
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(serial.params, parallel.params);
        assert_eq!(serial.cost, parallel.cost);
    }

    #[test]
    fn starts_respect_bounds() {
        let starts = generate_starts(&TwoBasins, &[0.0], 50, 7);
        for s in &starts {
            assert!(s[0] >= -10.0 && s[0] <= 10.0);
        }
        assert_eq!(starts.len(), 50);
        assert_eq!(starts[0], vec![0.0]); // caller's start always included
    }
}
