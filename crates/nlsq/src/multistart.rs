//! Deterministic multistart wrapper around Levenberg–Marquardt.
//!
//! §III-C of the paper: "Since nonlinear optimization algorithms are
//! iterative, selecting a different starting point may lead the solver to
//! a different local solution. We experimented with different starting
//! solutions and observed that even though the parameter values may
//! differ, the solution value of the problem did not vary significantly."
//! Multistart operationalizes that experiment: run LM from several spread
//! starting points and keep the best basin.
//!
//! The same observation justifies the *early-stop fast path*
//! ([`EarlyStopPolicy`]): once several consecutive starts have confirmed
//! the incumbent basin, the remaining starts are redundant work. Starts
//! are always drained in index order — serially or from the work-stealing
//! parallel driver — so the winner, the tie-breaks, and the stop decision
//! are bit-identical at every thread count.

use crate::lm::{levenberg_marquardt, LmOptions, LmResult, ResidualModel};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Adaptive early termination for [`multistart_fit`].
///
/// The policy mirrors §III-C's experiment: keep launching starts while
/// they disagree; once enough evidence accumulates that further starts
/// cannot change the winner, stop. Two criteria fire it (each after at
/// least `min_starts` starts):
///
/// 1. **Basin confirmation** — `consecutive` starts in a row land inside
///    the basin tolerance of the incumbent: the unimodal §III-C common
///    case, typically firing at start `min_starts`.
/// 2. **No improvement** — `max_no_improvement` starts in a row fail to
///    *displace* the incumbent (beat it by the displacement margin).
///    This covers multimodal landscapes where a worse secondary basin
///    keeps catching starts: those misses break criterion 1's streak
///    forever, yet they are not evidence that a *better* basin exists —
///    displacement is the only event that can change the winner, so once
///    it dries up the remaining starts are redundant.
///
/// The decision is evaluated over results in start-index order, so it is
/// deterministic regardless of how many threads raced through the starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EarlyStopPolicy {
    /// Never stop before this many starts have completed (the caller's
    /// start plus at least a few independent probes of the box).
    pub min_starts: usize,
    /// Stop once this many consecutive starts land within the basin
    /// tolerance of the incumbent.
    pub consecutive: usize,
    /// Stop once this many consecutive starts fail to displace the
    /// incumbent (improve its cost by more than the displacement
    /// margin), whether or not they agree with its basin. `0` disables
    /// this criterion.
    pub max_no_improvement: usize,
}

impl Default for EarlyStopPolicy {
    fn default() -> Self {
        // The caller's start plus four independent probes of the box:
        // basin confirmation fires at start 5 in the §III-C common case.
        // On landscapes with a persistent worse basin (the 1° land data
        // at small node counts splits ~40/60 between two basins 0.8 %
        // apart), confirmation never fires and the no-improvement rule
        // stops the run after 8 consecutive non-displacing starts.
        EarlyStopPolicy {
            min_starts: 5,
            consecutive: 4,
            max_no_improvement: 8,
        }
    }
}

/// Options for [`multistart_fit`].
#[derive(Debug, Clone)]
pub struct MultistartOptions {
    /// Number of starting points (≥ 1; the first is always the caller's).
    pub starts: usize,
    /// Seed for the quasi-random start generation (deterministic).
    pub seed: u64,
    /// Run the starts on `threads` OS threads (1 = serial).
    pub threads: usize,
    /// Early-stop policy. `None` (the default) preserves the historical
    /// behavior: every scheduled start runs.
    pub early_stop: Option<EarlyStopPolicy>,
    /// Inner LM options.
    pub lm: LmOptions,
}

impl Default for MultistartOptions {
    fn default() -> Self {
        MultistartOptions {
            starts: 16,
            seed: 0x5eed_cafe,
            threads: 1,
            early_stop: None,
            lm: LmOptions::default(),
        }
    }
}

/// SplitMix64: tiny deterministic generator for start-point jitter; keeps
/// this crate independent of the `rand` version used elsewhere.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Generate starting points inside the model's box. Bounded dimensions are
/// sampled log-uniformly when the bounds span orders of magnitude (typical
/// for the `a` parameter, which can be anywhere from seconds to hours) and
/// uniformly otherwise; unbounded dimensions jitter around `p0`.
fn generate_starts<M: ResidualModel>(
    model: &M,
    p0: &[f64],
    starts: usize,
    seed: u64,
) -> Vec<Vec<f64>> {
    let lb = model.lower_bounds();
    let ub = model.upper_bounds();
    let mut state = seed;
    let mut out = Vec::with_capacity(starts);
    out.push(p0.to_vec());
    while out.len() < starts {
        let p: Vec<f64> = (0..model.num_params())
            .map(|j| {
                let (l, u) = (lb[j], ub[j]);
                let r = unit(&mut state);
                match (l.is_finite(), u.is_finite()) {
                    (true, true) => {
                        let lpos = l.max(1e-12);
                        if u / lpos > 1e3 && l >= 0.0 {
                            // log-uniform over [max(l, 1e-12·u), u]
                            let lo = l.max(1e-12 * u);
                            (lo.ln() + r * (u.ln() - lo.ln())).exp()
                        } else {
                            l + r * (u - l)
                        }
                    }
                    (true, false) => l + (r * 6.0).exp() - 1.0 + p0[j].abs() * r,
                    (false, true) => u - (r * 6.0).exp() + 1.0 - p0[j].abs() * r,
                    (false, false) => p0[j] + (r - 0.5) * 2.0 * (1.0 + p0[j].abs()),
                }
            })
            .collect();
        out.push(p);
    }
    out
}

/// Aggregate diagnostics over one multistart run, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultistartReport {
    /// Number of starting points actually run (equal to the scheduled
    /// count unless the early-stop policy fired).
    pub starts: usize,
    /// How many of the starts that ran converged into the winning basin
    /// (cost within 0.1 % of the best, with an absolute floor tied to the
    /// residual scale of the data — see [`basin_tolerance`]). The paper's
    /// §III-C observation — "the solution value of the problem did not
    /// vary significantly" — shows up here as `basin_hits ≈ starts`.
    pub basin_hits: usize,
    /// Total LM iterations summed over every start that ran.
    pub total_iterations: usize,
    /// Did the early-stop policy cut the run short?
    pub early_stopped: bool,
}

/// Relative floor (against the residual scale `‖r(p₀)‖²`) added to the
/// basin tolerance. Without it the tolerance `1e-3·|cost|` degenerates to
/// nothing when an exact-interpolation fit (four points, four parameters)
/// drives the cost toward zero: two starts both converged to a numerically
/// exact fit would count as different basins merely because one stalled at
/// `1e-8` and the other at `1e-20`.
const BASIN_FLOOR_REL: f64 = 1e-12;

/// Basin tolerance around an incumbent cost: `0.1 %` of the cost plus a
/// floor of [`BASIN_FLOOR_REL`] times the residual scale (the squared
/// residual norm at the caller's starting point — a proxy for the data's
/// magnitude that stays meaningful when the best cost is ~0).
fn basin_tolerance(cost: f64, residual_scale: f64) -> f64 {
    1e-3 * cost.abs() + BASIN_FLOOR_REL * residual_scale + f64::MIN_POSITIVE
}

/// Hysteresis margin for *displacing* the incumbent during winner
/// selection: a later start must beat the incumbent cost by this much to
/// count as a genuinely better basin. Set to 5× the hit tolerance so the
/// thresholds are well separated: same-basin numerical scatter is ≲1e-4
/// relative, a start within 1e-3 counts as a basin *hit*, and only an
/// improvement beyond 5e-3 *moves* the winner. The gap matters on real
/// data — the paper's 1° land timings produce a needle basin 1.65e-3
/// below the broad one, i.e. inside the measurement noise of the
/// underlying Table III timings; treating it as "better" would make the
/// winner depend on whether the one start (of 32) that finds it ran.
fn displacement_margin(cost: f64, residual_scale: f64) -> f64 {
    5.0 * basin_tolerance(cost, residual_scale)
}

/// Squared residual norm at the caller's start, clamped into the box the
/// same way LM clamps it. Used only as a scale; non-finite values fall
/// back to zero (the floor then vanishes, reproducing the old tolerance).
fn residual_scale<M: ResidualModel>(model: &M, p0: &[f64]) -> f64 {
    let lb = model.lower_bounds();
    let ub = model.upper_bounds();
    let p: Vec<f64> = p0
        .iter()
        .zip(lb.iter().zip(&ub))
        .map(|(&v, (&l, &u))| v.clamp(l, u))
        .collect();
    let mut r = vec![0.0; model.num_residuals()];
    model.residuals(&p, &mut r);
    let s = hslb_numerics::vector::dot(&r, &r);
    if s.is_finite() {
        s
    } else {
        0.0
    }
}

/// Fit from `starts` starting points; return the winning basin's result.
///
/// The winner is *basin-representative*: scanning results in start-index
/// order, the incumbent is replaced only by a start that improves its cost
/// by more than the basin tolerance (a strictly better basin). Same-basin
/// costs agree within the tolerance, so the winner is the first start that
/// reached the winning basin — independent of thread count and of how many
/// redundant starts ran after it (the property the early-stop fast path
/// relies on).
///
/// With `threads > 1`, the starts are distributed over scoped worker
/// threads (the model is only read, so a shared reference suffices). The
/// early-stop decision (when enabled) is evaluated over results drained
/// in start-index order, exactly as the serial run would see them.
pub fn multistart_fit<M: ResidualModel + Sync>(
    model: &M,
    p0: &[f64],
    opts: &MultistartOptions,
) -> LmResult {
    multistart_fit_report(model, p0, opts).0
}

/// Incremental, index-ordered scan that replays the serial early-stop
/// decision: feed it results in start-index order and it reports the
/// cutoff (number of starts to keep) as soon as the policy fires.
struct BasinScan {
    policy: Option<EarlyStopPolicy>,
    residual_scale: f64,
    /// Strict best-so-far cost: the reference for basin-confirmation
    /// hits (criterion 1).
    best_cost: Option<f64>,
    /// Hysteresis incumbent, updated only on displacement — mirrors the
    /// winner-selection scan exactly (criterion 2).
    incumbent_cost: Option<f64>,
    consecutive: usize,
    no_improvement: usize,
    processed: usize,
}

impl BasinScan {
    fn new(policy: Option<EarlyStopPolicy>, residual_scale: f64) -> Self {
        BasinScan {
            policy,
            residual_scale,
            best_cost: None,
            incumbent_cost: None,
            consecutive: 0,
            no_improvement: 0,
            processed: 0,
        }
    }

    /// Process the next result in index order; returns `Some(cutoff)` the
    /// moment the policy is satisfied (keep results `0..cutoff`).
    fn push(&mut self, cost: f64) -> Option<usize> {
        match (self.best_cost, self.incumbent_cost) {
            (None, _) | (_, None) => {
                self.best_cost = Some(cost);
                self.incumbent_cost = Some(cost);
            }
            (Some(best), Some(inc)) => {
                // A NaN reference (start 0 diverged) never counts hits —
                // and must be replaceable, or basin confirmation stays
                // disabled for the whole run.
                let hit = !best.is_nan()
                    && (cost - best).abs() <= basin_tolerance(best, self.residual_scale);
                self.consecutive = if hit { self.consecutive + 1 } else { 0 };
                if cost < best || (best.is_nan() && !cost.is_nan()) {
                    // Ties keep the earlier index; only a strict
                    // improvement moves the reference.
                    self.best_cost = Some(cost);
                }
                // Displacement test identical to winner selection: the
                // no-improvement streak resets only when a start would
                // actually move the winner.
                let displaced = !cost.is_nan()
                    && (inc.is_nan() || cost < inc - displacement_margin(inc, self.residual_scale));
                if displaced {
                    self.incumbent_cost = Some(cost);
                    self.no_improvement = 0;
                } else {
                    self.no_improvement += 1;
                }
            }
        }
        self.processed += 1;
        let policy = self.policy?;
        let confirmed = self.consecutive >= policy.consecutive.max(1);
        let dried_up =
            policy.max_no_improvement > 0 && self.no_improvement >= policy.max_no_improvement;
        (self.processed >= policy.min_starts.max(1) && (confirmed || dried_up))
            .then_some(self.processed)
    }
}

/// [`multistart_fit`] plus the per-run [`MultistartReport`].
pub fn multistart_fit_report<M: ResidualModel + Sync>(
    model: &M,
    p0: &[f64],
    opts: &MultistartOptions,
) -> (LmResult, MultistartReport) {
    let starts = generate_starts(model, p0, opts.starts.max(1), opts.seed);
    let scale = residual_scale(model, &starts[0]);
    let results: Vec<LmResult> = if opts.threads <= 1 {
        serial_runs(model, &starts, opts, scale)
    } else {
        parallel_runs(model, &starts, opts, scale)
    };
    let early_stopped = results.len() < starts.len();
    let total_iterations = results.iter().map(|r| r.iterations).sum();
    // Basin-representative selection, replayed as an index-ordered
    // incumbent scan: the winner only changes when a later start improves
    // on the incumbent by *more than* the displacement margin — i.e. when
    // it finds a genuinely better basin, not a marginally lower cost.
    // §III-C says near-equal costs are interchangeable (same-basin spread
    // is ≲1e-4 relative vs the 5e-3-relative margin), so starts that run
    // after the early-stop cutoff can only re-confirm the incumbent basin
    // — never shift the winner by an ulp. A global min-then-window
    // selection does NOT have this property: a post-cutoff start landing
    // a hair below the prefix minimum moves the window and can change
    // which index is "first within tolerance". This incumbent rule is
    // what makes the fast path bit-identical to the full run.
    let mut winner = 0usize;
    for (i, r) in results.iter().enumerate().skip(1) {
        let inc = results[winner].cost;
        let better = if r.cost.is_nan() {
            false
        } else if inc.is_nan() {
            true
        } else {
            r.cost < inc - displacement_margin(inc, scale)
        };
        if better {
            winner = i;
        }
    }
    let best = results[winner].clone();
    let tol = basin_tolerance(best.cost, scale);
    let basin_hits = results.iter().filter(|r| r.cost <= best.cost + tol).count();
    (
        best,
        MultistartReport {
            starts: results.len(),
            basin_hits,
            total_iterations,
            early_stopped,
        },
    )
}

/// Serial driver: run starts in index order, stopping at the policy's
/// cutoff. This is the reference semantics the parallel driver reproduces.
fn serial_runs<M: ResidualModel>(
    model: &M,
    starts: &[Vec<f64>],
    opts: &MultistartOptions,
    residual_scale: f64,
) -> Vec<LmResult> {
    let mut scan = BasinScan::new(opts.early_stop, residual_scale);
    let mut results = Vec::with_capacity(starts.len());
    for s in starts {
        let r = levenberg_marquardt(model, s, &opts.lm);
        let cutoff = scan.push(r.cost);
        results.push(r);
        if cutoff.is_some() {
            break;
        }
    }
    results
}

/// Work-stealing parallel driver. Workers claim start indices from a
/// shared counter; finished results land in per-index slots and a single
/// index-ordered drain (under the lock) replays the serial early-stop
/// scan over the contiguous prefix. When the scan fires, the cutoff is
/// published and workers stop claiming new indices. Starts past the
/// cutoff that were already running speculatively are discarded, so the
/// retained prefix — winner, tie-breaks, iteration totals — is
/// bit-identical to [`serial_runs`] at any thread count.
fn parallel_runs<M: ResidualModel + Sync>(
    model: &M,
    starts: &[Vec<f64>],
    opts: &MultistartOptions,
    residual_scale: f64,
) -> Vec<LmResult> {
    let n = starts.len();
    let nthreads = opts.threads.min(n).max(1);
    let next = AtomicUsize::new(0);
    let cutoff = AtomicUsize::new(usize::MAX);
    struct Drain {
        slots: Vec<Option<LmResult>>,
        prefix: usize,
        scan: BasinScan,
        /// Sticky fire flag: set (under the lock) the moment the scan
        /// publishes a cutoff. Speculative workers that claimed later
        /// indices before the cutoff landed still finish their LM run and
        /// store their slot, but must never feed the scan again — without
        /// this guard such a worker could re-fire the policy at a larger
        /// `processed` and overwrite `cutoff` with a bigger value, making
        /// the retained prefix depend on thread timing.
        fired: bool,
    }
    let drain = Mutex::new(Drain {
        slots: (0..n).map(|_| None).collect(),
        prefix: 0,
        scan: BasinScan::new(opts.early_stop, residual_scale),
        fired: false,
    });
    // A worker panic is a solver bug; propagating it (rather than
    // returning a partial fit) is the intended behavior of every
    // `expect` in this parallel drain.
    #[allow(clippy::expect_used)]
    crossbeam::thread::scope(|scope| {
        for _ in 0..nthreads {
            let (next, cutoff, drain) = (&next, &cutoff, &drain);
            let lm = opts.lm.clone();
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n || i >= cutoff.load(Ordering::Acquire) {
                    break;
                }
                let r = levenberg_marquardt(model, &starts[i], &lm);
                let mut d = drain.lock().expect("multistart drain lock");
                d.slots[i] = Some(r);
                if d.fired {
                    // The cutoff is already decided; this was a
                    // speculative start past it. Its slot is discarded by
                    // the final `take(keep)`.
                    return;
                }
                // Drain the contiguous prefix in index order — exactly
                // the serial scan, just fed as slots fill in.
                while d.prefix < n && d.slots[d.prefix].is_some() {
                    let cost = d.slots[d.prefix].as_ref().expect("just checked").cost;
                    let fired = d.scan.push(cost);
                    d.prefix += 1;
                    if let Some(keep) = fired {
                        // First (and only) publication: `fired` is set
                        // under the same lock, so no later drain can
                        // reach this store.
                        d.fired = true;
                        cutoff.store(keep, Ordering::Release);
                        return;
                    }
                }
            });
        }
    })
    .expect("multistart worker panicked");
    let keep = cutoff.load(Ordering::Acquire).min(n);
    // The scope joined every worker, so the lock cannot be poisoned and
    // every slot below the published cutoff has been filled.
    #[allow(clippy::expect_used)]
    let drain = drain.into_inner().expect("multistart drain lock");
    #[allow(clippy::expect_used)]
    drain
        .slots
        .into_iter()
        .take(keep)
        .map(|r| r.expect("prefix below the cutoff is fully drained"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hslb_numerics::Matrix;

    /// A two-basin model: r(p) = (p² − 4, 0.1·(p − 1.9)). Local minima near
    /// p = ±2 with the p ≈ +2 basin slightly better.
    struct TwoBasins;

    impl ResidualModel for TwoBasins {
        fn num_params(&self) -> usize {
            1
        }
        fn num_residuals(&self) -> usize {
            2
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) {
            out[0] = p[0] * p[0] - 4.0;
            out[1] = 0.1 * (p[0] - 1.9);
        }
        fn jacobian(&self, p: &[f64], jac: &mut Matrix) {
            jac[(0, 0)] = 2.0 * p[0];
            jac[(1, 0)] = 0.1;
        }
        fn lower_bounds(&self) -> Vec<f64> {
            vec![-10.0]
        }
        fn upper_bounds(&self) -> Vec<f64> {
            vec![10.0]
        }
    }

    /// Exactly tied basins: r(p) = p² − 1 has minima at ±1, both with
    /// cost 0 to the last bit. The winner must be decided purely by start
    /// index, identically at every thread count.
    struct TiedBasins;

    impl ResidualModel for TiedBasins {
        fn num_params(&self) -> usize {
            1
        }
        fn num_residuals(&self) -> usize {
            1
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) {
            out[0] = p[0] * p[0] - 1.0;
        }
        fn jacobian(&self, p: &[f64], jac: &mut Matrix) {
            jac[(0, 0)] = 2.0 * p[0];
        }
        fn lower_bounds(&self) -> Vec<f64> {
            vec![-10.0]
        }
        fn upper_bounds(&self) -> Vec<f64> {
            vec![10.0]
        }
    }

    #[test]
    fn escapes_inferior_basin() {
        // A single start at −3 converges to the worse basin near −2…
        let single = levenberg_marquardt(&TwoBasins, &[-3.0], &LmOptions::default());
        assert!(single.params[0] < 0.0);
        // …multistart finds the better one near +2.
        let multi = multistart_fit(
            &TwoBasins,
            &[-3.0],
            &MultistartOptions {
                starts: 12,
                ..Default::default()
            },
        );
        assert!(multi.params[0] > 0.0, "stayed at {}", multi.params[0]);
        assert!(multi.cost <= single.cost + 1e-15);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let serial = multistart_fit(
            &TwoBasins,
            &[0.5],
            &MultistartOptions {
                starts: 8,
                threads: 1,
                ..Default::default()
            },
        );
        let parallel = multistart_fit(
            &TwoBasins,
            &[0.5],
            &MultistartOptions {
                starts: 8,
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(serial.params, parallel.params);
        assert_eq!(serial.cost, parallel.cost);
    }

    /// Regression for the old `parallel_runs`: placeholder `(0, result)`
    /// tuples were written into slots and then re-enumerated, leaving two
    /// indexing schemes that could silently diverge from the serial
    /// tie-break `cmp_f64(cost).then(index)`. With two exactly-tied basins
    /// the winner is *only* determined by index, so any divergence shows
    /// up as a sign flip between thread counts.
    #[test]
    fn tied_basins_break_ties_by_index_at_any_thread_count() {
        for starts in [2usize, 5, 8, 13] {
            let serial = multistart_fit_report(
                &TiedBasins,
                &[0.3],
                &MultistartOptions {
                    starts,
                    threads: 1,
                    ..Default::default()
                },
            );
            let parallel = multistart_fit_report(
                &TiedBasins,
                &[0.3],
                &MultistartOptions {
                    starts,
                    threads: 4,
                    ..Default::default()
                },
            );
            assert_eq!(
                serial.0.params, parallel.0.params,
                "winner diverged at {starts} starts"
            );
            assert_eq!(serial.0.cost, parallel.0.cost);
            assert_eq!(serial.0.iterations, parallel.0.iterations);
            assert_eq!(serial.1, parallel.1, "reports diverged at {starts} starts");
        }
    }

    #[test]
    fn early_stop_confirms_basin_and_matches_full_run() {
        // Single-basin quadratic-ish model: every start converges to the
        // same minimum, so the policy fires and the result is
        // bit-identical to the full run.
        struct OneBasin;
        impl ResidualModel for OneBasin {
            fn num_params(&self) -> usize {
                1
            }
            fn num_residuals(&self) -> usize {
                2
            }
            fn residuals(&self, p: &[f64], out: &mut [f64]) {
                out[0] = p[0] - 3.0;
                out[1] = 0.5 * (p[0] - 3.0);
            }
            fn jacobian(&self, _p: &[f64], jac: &mut Matrix) {
                jac[(0, 0)] = 1.0;
                jac[(1, 0)] = 0.5;
            }
            fn lower_bounds(&self) -> Vec<f64> {
                vec![-10.0]
            }
            fn upper_bounds(&self) -> Vec<f64> {
                vec![10.0]
            }
        }
        let full_opts = MultistartOptions {
            starts: 16,
            ..Default::default()
        };
        let fast_opts = MultistartOptions {
            early_stop: Some(EarlyStopPolicy::default()),
            ..full_opts.clone()
        };
        let (full, full_rep) = multistart_fit_report(&OneBasin, &[0.0], &full_opts);
        for threads in [1, 4] {
            let opts = MultistartOptions {
                threads,
                ..fast_opts.clone()
            };
            let (fast, rep) = multistart_fit_report(&OneBasin, &[0.0], &opts);
            assert_eq!(fast.params, full.params, "threads={threads}");
            assert_eq!(fast.cost, full.cost);
            assert!(rep.early_stopped, "policy should fire on one basin");
            assert!(rep.starts < full_rep.starts, "ran {} starts", rep.starts);
            assert!(rep.starts >= EarlyStopPolicy::default().min_starts);
            assert!(rep.basin_hits <= rep.starts);
            assert!(rep.total_iterations < full_rep.total_iterations);
        }
    }

    /// Deterministic check of the no-improvement criterion: a persistent
    /// worse basin ~0.8 % above the incumbent keeps breaking the
    /// basin-confirmation streak (its misses are outside the 0.1 % hit
    /// tolerance), but none of the scatter displaces the incumbent, so
    /// the scan fires after `max_no_improvement` non-displacing starts.
    #[test]
    fn no_improvement_rule_fires_on_persistent_scatter() {
        let policy = EarlyStopPolicy::default();
        assert_eq!(policy.max_no_improvement, 8);
        let mut scan = BasinScan::new(Some(policy), 0.0);
        let mut fired = None;
        for i in 0..32 {
            // Winning basin at cost 1.0 every third start, worse basin at
            // 1.008 otherwise: never 4 consecutive hits.
            let cost = if i % 3 == 0 { 1.0 } else { 1.008 };
            fired = scan.push(cost);
            if fired.is_some() {
                break;
            }
        }
        // Start 0 seeds the incumbent; the next 8 starts all fail to
        // displace it, so the cutoff lands at 9 starts.
        assert_eq!(fired, Some(9));
    }

    /// Regression: a NaN cost from start 0 used to seed `best_cost` with
    /// NaN permanently (`cost < best` is false for NaN), silently
    /// disabling basin confirmation for the whole run. The reference must
    /// be replaceable by the first finite cost.
    #[test]
    fn nan_seed_does_not_disable_basin_confirmation() {
        let policy = EarlyStopPolicy {
            min_starts: 2,
            consecutive: 3,
            max_no_improvement: 0, // isolate criterion 1
        };
        let mut scan = BasinScan::new(Some(policy), 0.0);
        assert_eq!(scan.push(f64::NAN), None); // seeds both references
        assert_eq!(scan.push(1.0), None); // replaces the NaN best, no hit
        assert_eq!(scan.push(1.0), None); // streak 1
        assert_eq!(scan.push(1.0), None); // streak 2
        assert_eq!(scan.push(1.0), Some(5)); // streak 3 → cutoff
    }

    /// Regression for the sticky-cutoff race: after the policy fired, a
    /// speculative worker that had already claimed a later index could
    /// push its result into the shared scan and re-fire with a larger
    /// `processed`, overwriting the cutoff — making `starts`,
    /// `total_iterations`, and potentially the winner depend on thread
    /// timing. Hammer the parallel driver and require every run to match
    /// the serial reference exactly.
    #[test]
    fn parallel_early_stop_cutoff_is_sticky_under_contention() {
        let opts_for = |threads| MultistartOptions {
            starts: 32,
            threads,
            early_stop: Some(EarlyStopPolicy::default()),
            ..Default::default()
        };
        let (serial, serial_rep) = multistart_fit_report(&TwoBasins, &[-3.0], &opts_for(1));
        assert!(
            serial_rep.early_stopped,
            "policy must fire for this test to bite"
        );
        for _ in 0..50 {
            let (par, par_rep) = multistart_fit_report(&TwoBasins, &[-3.0], &opts_for(4));
            assert_eq!(par.params, serial.params);
            assert_eq!(par.cost.to_bits(), serial.cost.to_bits());
            assert_eq!(par_rep, serial_rep, "report diverged from serial");
        }
    }

    #[test]
    fn no_improvement_streak_resets_on_displacement() {
        let policy = EarlyStopPolicy {
            min_starts: 2,
            consecutive: 100, // never fires; isolate criterion 2
            max_no_improvement: 3,
        };
        let mut scan = BasinScan::new(Some(policy), 0.0);
        // Two non-displacing starts, then a genuinely better basin: the
        // streak must restart from the new incumbent.
        for cost in [5.0, 5.001, 5.002, 0.9] {
            assert_eq!(scan.push(cost), None);
        }
        assert_eq!(scan.push(0.9001), None); // streak 1
        assert_eq!(scan.push(0.9002), None); // streak 2
        assert_eq!(scan.push(0.9003), Some(7)); // streak 3 → cutoff
    }

    /// End-to-end on the two-basin model: the worse basin keeps catching
    /// starts, yet the default policy still stops early and the winner
    /// stays bit-identical to the full run at every thread count.
    #[test]
    fn multimodal_scatter_early_stops_and_matches_full_run() {
        let full_opts = MultistartOptions {
            starts: 32,
            ..Default::default()
        };
        let fast_opts = MultistartOptions {
            early_stop: Some(EarlyStopPolicy::default()),
            ..full_opts.clone()
        };
        let (full, _) = multistart_fit_report(&TwoBasins, &[-3.0], &full_opts);
        for threads in [1, 4] {
            let opts = MultistartOptions {
                threads,
                ..fast_opts.clone()
            };
            let (fast, rep) = multistart_fit_report(&TwoBasins, &[-3.0], &opts);
            assert_eq!(fast.params, full.params, "threads={threads}");
            assert_eq!(fast.cost.to_bits(), full.cost.to_bits());
            assert!(rep.early_stopped, "policy should fire at threads={threads}");
            assert!(rep.starts < 32, "ran {} starts", rep.starts);
        }
    }

    #[test]
    fn disabled_early_stop_runs_every_start() {
        let (_, rep) = multistart_fit_report(
            &TwoBasins,
            &[0.5],
            &MultistartOptions {
                starts: 10,
                early_stop: None,
                ..Default::default()
            },
        );
        assert_eq!(rep.starts, 10);
        assert!(!rep.early_stopped);
    }

    /// Regression for the degenerate basin tolerance: with an exact
    /// interpolation (cost → 0) the old `1e-3·|cost| + 1e-12` tolerance
    /// counted only starts whose stalling point happened to be within
    /// 1e-12 *absolute* — meaningless when the data scale is ~10⁶ and
    /// "converged" costs scatter between 1e-10 and 1e-20. The floor tied
    /// to the residual scale keeps every numerically-exact start counted.
    #[test]
    fn zero_cost_fit_keeps_basin_hits_meaningful() {
        // y = k·x interpolated exactly by one parameter, at a large data
        // scale so absolute cost spread across starts exceeds 1e-12.
        struct BigLine;
        impl ResidualModel for BigLine {
            fn num_params(&self) -> usize {
                1
            }
            fn num_residuals(&self) -> usize {
                1
            }
            fn residuals(&self, p: &[f64], out: &mut [f64]) {
                // Single residual, single parameter: exactly solvable,
                // with a huge scale and a gradient that flattens near the
                // root so LM stalls at slightly different costs from
                // different starts.
                let t = p[0] - 2.0e3;
                out[0] = t * t * t;
            }
            fn lower_bounds(&self) -> Vec<f64> {
                vec![0.0]
            }
            fn upper_bounds(&self) -> Vec<f64> {
                vec![1.0e6]
            }
        }
        let (best, rep) = multistart_fit_report(
            &BigLine,
            &[1.0],
            &MultistartOptions {
                starts: 12,
                ..Default::default()
            },
        );
        // Every start can solve this exactly (one basin); the costs stall
        // at tiny-but-different values. All must count as basin hits.
        assert!(best.cost < 1.0, "cost {} should be ~0", best.cost);
        assert_eq!(
            rep.basin_hits, rep.starts,
            "all {} starts converged (best cost {:.3e}) but only {} counted",
            rep.starts, best.cost, rep.basin_hits
        );
    }

    #[test]
    fn starts_respect_bounds() {
        let starts = generate_starts(&TwoBasins, &[0.0], 50, 7);
        for s in &starts {
            assert!(s[0] >= -10.0 && s[0] <= 10.0);
        }
        assert_eq!(starts.len(), 50);
        assert_eq!(starts[0], vec![0.0]); // caller's start always included
    }
}
