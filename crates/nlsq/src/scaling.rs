//! The paper's performance model `T(n) = a/n + b·n^c + d` and its fit.

use crate::lm::{LmOptions, ResidualModel};
use crate::multistart::{multistart_fit_report, EarlyStopPolicy, MultistartOptions};
use hslb_numerics::{stats, Matrix};

/// A fitted performance curve `T(n) = a/n + b·n^c + d`.
///
/// * `a/n` — `T^sca`, the perfectly scalable part (Amdahl's parallel term);
/// * `b·n^c` — `T^nln`, the partially-parallel/communication term. On
///   Intrepid the paper observed it *increasing*, with `b, c` near zero;
/// * `d` — `T^ser`, the serial floor.
///
/// All coefficients are non-negative (Table II, line 11). With `c ≥ 1`
/// the curve is convex on `n > 0`, the property §III-E relies on for
/// global optimality of the outer-approximation branch-and-bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingCurve {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
}

impl ScalingCurve {
    /// Evaluate `T(n)`.
    pub fn eval(&self, n: f64) -> f64 {
        self.a / n + self.b * n.powf(self.c) + self.d
    }

    /// First derivative `T′(n)`.
    pub fn deriv(&self, n: f64) -> f64 {
        -self.a / (n * n) + self.b * self.c * n.powf(self.c - 1.0)
    }

    /// Is the curve convex on `n > 0`? Requires non-negative coefficients
    /// and an exponent outside the concave band `(0, 1)`.
    pub fn is_convex(&self) -> bool {
        self.a >= 0.0 && self.b >= 0.0 && self.d >= 0.0 && !(self.c > 0.0 && self.c < 1.0)
    }

    /// The integer node count in `[lo, hi]` minimizing `T(n)`.
    ///
    /// Convex curves are unimodal, so ternary search is exact.
    pub fn argmin_nodes(&self, lo: i64, hi: i64) -> i64 {
        hslb_numerics::scalar::integer_ternary_min(|n| self.eval(n as f64), lo.max(1), hi.max(1)).0
    }
}

/// Result of fitting a [`ScalingCurve`] to benchmark data.
#[derive(Debug, Clone)]
pub struct ScalingFit {
    /// The fitted curve.
    pub curve: ScalingCurve,
    /// Coefficient of determination against the fitted data. `NAN` for
    /// synthetic fits (no data backs them).
    pub r_squared: f64,
    /// Root-mean-square error in seconds (`NAN` for synthetic fits).
    pub rmse: f64,
    /// Sum of squared residuals (the objective of Table II line 10).
    pub sse: f64,
    /// Number of data points used (0 for synthetic fits).
    pub points: usize,
    /// Total Levenberg–Marquardt iterations across all multistart runs.
    pub lm_iterations: usize,
    /// Starts that converged into the winning basin (see
    /// [`crate::MultistartReport::basin_hits`]).
    pub basin_hits: usize,
    /// Starts actually run (< the configured count when the early-stop
    /// policy fired; 0 for synthetic fits).
    pub starts_run: usize,
    /// Did the multistart early-stop policy cut the run short?
    pub early_stopped: bool,
    /// True when the curve was injected rather than fitted — the
    /// degraded-accuracy path downstream must not mistake it for a
    /// measured fit.
    pub synthetic: bool,
}

impl ScalingFit {
    /// Wrap a hand-written curve as a fit with no backing data. Quality
    /// diagnostics are `NAN`/0 and [`ScalingFit::synthetic`] is set, so
    /// accuracy gates can tell it apart from a real fit.
    pub fn synthetic(curve: ScalingCurve) -> ScalingFit {
        ScalingFit {
            curve,
            r_squared: f64::NAN,
            rmse: f64::NAN,
            sse: f64::NAN,
            points: 0,
            lm_iterations: 0,
            basin_hits: 0,
            starts_run: 0,
            early_stopped: false,
            synthetic: true,
        }
    }
}

/// Options for [`fit_scaling`].
#[derive(Debug, Clone)]
pub struct ScalingFitOptions {
    /// Bounds on the exponent `c`. The default `[1, 3]` keeps every fitted
    /// curve convex (see [`ScalingCurve::is_convex`]); widen the lower
    /// bound below 1 only if the consumer can handle nonconvex curves.
    pub c_bounds: (f64, f64),
    /// Number of multistart points.
    pub starts: usize,
    /// Seed for start generation.
    pub seed: u64,
    /// Threads for the multistart (1 = serial).
    pub threads: usize,
    /// Early-stop policy for the multistart (§III-C fast path). `None`
    /// runs every start; the default policy stops once consecutive starts
    /// confirm the incumbent basin. The fitted curve is bit-identical
    /// either way — asserted by the `fast_path` integration tests.
    pub early_stop: Option<EarlyStopPolicy>,
    /// Warm-start parameters `[a, b, c, d]` from a previous fit of the
    /// same component. When set, they replace the heuristic initial guess
    /// as start 0 — near-converged warm starts let the early-stop policy
    /// confirm the basin in a handful of LM iterations.
    pub warm_start: Option<[f64; 4]>,
}

impl Default for ScalingFitOptions {
    fn default() -> Self {
        ScalingFitOptions {
            c_bounds: (1.0, 3.0),
            starts: 24,
            seed: 0x1234_5678,
            threads: 1,
            early_stop: None,
            warm_start: None,
        }
    }
}

/// The least-squares problem of Table II line 10 as a [`ResidualModel`]:
/// parameters `p = [a, b, c, d]`, residual `r_i = T(n_i) − y_i`.
struct ScalingResiduals<'a> {
    data: &'a [(f64, f64)],
    c_bounds: (f64, f64),
    /// Scale cap for a/b/d derived from the data, to keep starts sane.
    y_max: f64,
    n_max: f64,
}

impl ResidualModel for ScalingResiduals<'_> {
    fn num_params(&self) -> usize {
        4
    }
    fn num_residuals(&self) -> usize {
        self.data.len()
    }
    fn residuals(&self, p: &[f64], out: &mut [f64]) {
        let [a, b, c, d] = [p[0], p[1], p[2], p[3]];
        for (i, &(n, y)) in self.data.iter().enumerate() {
            out[i] = a / n + b * n.powf(c) + d - y;
        }
    }
    fn jacobian(&self, p: &[f64], jac: &mut Matrix) {
        let [_, b, c, _] = [p[0], p[1], p[2], p[3]];
        for (i, &(n, _)) in self.data.iter().enumerate() {
            let nc = n.powf(c);
            jac[(i, 0)] = 1.0 / n; // ∂r/∂a
            jac[(i, 1)] = nc; // ∂r/∂b
            jac[(i, 2)] = b * nc * n.ln(); // ∂r/∂c
            jac[(i, 3)] = 1.0; // ∂r/∂d
        }
    }
    fn lower_bounds(&self) -> Vec<f64> {
        vec![0.0, 0.0, self.c_bounds.0, 0.0]
    }
    fn upper_bounds(&self) -> Vec<f64> {
        // a is the single-node work: bounded by y_max·n_max (time at the
        // smallest measured node count scaled up). b is bounded by the
        // largest time divided by the smallest n^c it could multiply.
        vec![
            self.y_max * self.n_max * 10.0,
            self.y_max,
            self.c_bounds.1,
            self.y_max,
        ]
    }
}

/// Errors from [`fit_scaling`].
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer than two data points, or non-positive node counts/times.
    BadData(&'static str),
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::BadData(why) => write!(f, "cannot fit scaling curve: {why}"),
        }
    }
}

impl std::error::Error for FitError {}

/// Fit the paper's performance model to `(nodes, seconds)` observations.
///
/// The paper recommends at least four points spanning the smallest
/// memory-feasible and the largest available node counts (§III-C); with
/// fewer points the four-parameter model is underdetermined and the
/// returned `r_squared` should be treated with suspicion rather than the
/// call rejected — mirroring how the AMPL script behaves.
///
/// # Examples
///
/// ```
/// use hslb_nlsq::{fit_scaling, ScalingFitOptions};
///
/// // Component timings at four node counts (the paper's minimum).
/// let data = [(24.0, 63.8), (80.0, 20.1), (384.0, 5.8), (1664.0, 2.9)];
/// let fit = fit_scaling(&data, &ScalingFitOptions::default()).unwrap();
/// assert!(fit.r_squared > 0.99);
/// // Interpolate a count that was never benchmarked.
/// let t_at_200 = fit.curve.eval(200.0);
/// assert!(t_at_200 > 2.9 && t_at_200 < 63.8);
/// ```
pub fn fit_scaling(data: &[(f64, f64)], opts: &ScalingFitOptions) -> Result<ScalingFit, FitError> {
    if data.len() < 2 {
        return Err(FitError::BadData("need at least two points"));
    }
    if data
        .iter()
        .any(|&(n, y)| n < 1.0 || !y.is_finite() || y <= 0.0)
    {
        return Err(FitError::BadData(
            "node counts must be ≥ 1 and times positive",
        ));
    }
    let y_max = data.iter().map(|&(_, y)| y).fold(0.0_f64, f64::max);
    let n_max = data.iter().map(|&(n, _)| n).fold(0.0_f64, f64::max);
    let model = ScalingResiduals {
        data,
        c_bounds: opts.c_bounds,
        y_max,
        n_max,
    };

    // Physically-motivated initial guess: all work scalable (a ≈ y·n at
    // the smallest point), small serial floor at the largest point.
    // `data` was validated non-empty at the top of the fit.
    #[allow(clippy::expect_used)]
    let (n_min_pt, y_at_nmin) = data
        .iter()
        .copied()
        .min_by(|a, b| hslb_numerics::float::cmp_f64(a.0, b.0))
        .expect("nonempty");
    #[allow(clippy::expect_used)]
    let y_at_nmax = data
        .iter()
        .copied()
        .max_by(|a, b| hslb_numerics::float::cmp_f64(a.0, b.0))
        .expect("nonempty")
        .1;
    let p0 = match opts.warm_start {
        // A previous fit of the same component seeds start 0; the jittered
        // starts 1..N are generated from the box alone, so they are
        // unchanged and the basin scan still probes the space.
        Some(w) => w.to_vec(),
        None => vec![
            (y_at_nmin - y_at_nmax).max(y_at_nmin * 0.5) * n_min_pt,
            0.0,
            opts.c_bounds.0,
            (y_at_nmax * 0.5).max(1e-6),
        ],
    };

    let ms = MultistartOptions {
        starts: opts.starts,
        seed: opts.seed,
        threads: opts.threads,
        early_stop: opts.early_stop,
        lm: LmOptions::default(),
    };
    let (res, report) = multistart_fit_report(&model, &p0, &ms);

    let curve = ScalingCurve {
        a: res.params[0],
        b: res.params[1],
        c: res.params[2],
        d: res.params[3],
    };
    let observed: Vec<f64> = data.iter().map(|&(_, y)| y).collect();
    let predicted: Vec<f64> = data.iter().map(|&(n, _)| curve.eval(n)).collect();
    Ok(ScalingFit {
        curve,
        r_squared: stats::r_squared(&observed, &predicted).unwrap_or(f64::NAN),
        rmse: stats::rmse(&observed, &predicted).unwrap_or(f64::NAN),
        sse: res.cost,
        points: data.len(),
        lm_iterations: report.total_iterations,
        basin_hits: report.basin_hits,
        starts_run: report.starts,
        early_stopped: report.early_stopped,
        synthetic: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(curve: ScalingCurve, ns: &[f64]) -> Vec<(f64, f64)> {
        ns.iter().map(|&n| (n, curve.eval(n))).collect()
    }

    #[test]
    fn recovers_noiseless_curve_predictions() {
        let truth = ScalingCurve {
            a: 50_000.0,
            b: 1e-3,
            c: 1.1,
            d: 12.0,
        };
        let data = synth(truth, &[16.0, 32.0, 64.0, 128.0, 512.0, 2048.0]);
        let fit = fit_scaling(&data, &ScalingFitOptions::default()).unwrap();
        assert!(fit.r_squared > 0.999_99, "r2 = {}", fit.r_squared);
        // Predictions (not parameters — they can trade off) must match.
        for &(n, y) in &data {
            let p = fit.curve.eval(n);
            assert!((p - y).abs() < 0.01 * y, "at n={n}: {p} vs {y}");
        }
        // And interpolation between sampled points must be close.
        let mid = fit.curve.eval(256.0);
        let want = truth.eval(256.0);
        assert!((mid - want).abs() < 0.05 * want, "interp {mid} vs {want}");
    }

    #[test]
    fn fitted_curve_is_convex_by_default() {
        let truth = ScalingCurve {
            a: 1000.0,
            b: 0.0,
            c: 1.0,
            d: 3.0,
        };
        let data = synth(truth, &[4.0, 8.0, 32.0, 100.0]);
        let fit = fit_scaling(&data, &ScalingFitOptions::default()).unwrap();
        assert!(fit.curve.is_convex());
        assert!(fit.curve.c >= 1.0);
    }

    #[test]
    fn four_points_suffice_like_the_paper_says() {
        let truth = ScalingCurve {
            a: 39_000.0,
            b: 2e-4,
            c: 1.2,
            d: 40.0,
        };
        let data = synth(truth, &[24.0, 80.0, 384.0, 1664.0]);
        let fit = fit_scaling(&data, &ScalingFitOptions::default()).unwrap();
        assert!(fit.r_squared > 0.999, "r2 = {}", fit.r_squared);
    }

    #[test]
    fn rejects_degenerate_data() {
        assert!(fit_scaling(&[(4.0, 10.0)], &ScalingFitOptions::default()).is_err());
        assert!(fit_scaling(&[(0.5, 10.0), (2.0, 5.0)], &ScalingFitOptions::default()).is_err());
        assert!(fit_scaling(&[(1.0, -1.0), (2.0, 5.0)], &ScalingFitOptions::default()).is_err());
    }

    #[test]
    fn argmin_nodes_finds_sweet_spot() {
        // With a rising b·n term the curve has an interior minimum at
        // n* = sqrt(a/b) for c = 1.
        let curve = ScalingCurve {
            a: 1.0e6,
            b: 0.01,
            c: 1.0,
            d: 0.0,
        };
        let n = curve.argmin_nodes(1, 100_000);
        assert_eq!(n, 10_000);
    }

    #[test]
    fn deriv_matches_finite_difference() {
        let curve = ScalingCurve {
            a: 500.0,
            b: 0.02,
            c: 1.4,
            d: 7.0,
        };
        for n in [2.0, 17.0, 333.0] {
            let h = 1e-5 * n;
            let fd = (curve.eval(n + h) - curve.eval(n - h)) / (2.0 * h);
            assert!((curve.deriv(n) - fd).abs() < 1e-5 * (1.0 + fd.abs()));
        }
    }

    #[test]
    fn noisy_fit_keeps_high_r2() {
        // ±2 % deterministic "noise" must not destroy the fit quality —
        // this is the regime of real CESM timings (§III-C says R² ≈ 1).
        let truth = ScalingCurve {
            a: 44_000.0,
            b: 5e-4,
            c: 1.15,
            d: 25.0,
        };
        let ns = [16.0, 48.0, 128.0, 384.0, 1024.0, 2048.0];
        let data: Vec<(f64, f64)> = ns
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let eps = if i % 2 == 0 { 1.02 } else { 0.98 };
                (n, truth.eval(n) * eps)
            })
            .collect();
        let fit = fit_scaling(&data, &ScalingFitOptions::default()).unwrap();
        assert!(fit.r_squared > 0.99, "r2 = {}", fit.r_squared);
    }
}
