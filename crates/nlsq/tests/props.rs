//! Property tests for the scaling-curve fit.

use hslb_nlsq::{fit_scaling, EarlyStopPolicy, ScalingCurve, ScalingFitOptions};
use proptest::prelude::*;

fn arb_curve() -> impl Strategy<Value = ScalingCurve> {
    (
        100.0f64..100_000.0, // a
        0.0f64..0.01,        // b
        1.0f64..1.8,         // c
        0.1f64..100.0,       // d
    )
        .prop_map(|(a, b, c, d)| ScalingCurve { a, b, c, d })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Noiseless synthetic data from an in-bounds curve must be fit with
    /// R² ≈ 1 and accurate predictions at the sampled points.
    #[test]
    fn noiseless_fit_reproduces_observations(truth in arb_curve()) {
        let ns = [8.0, 24.0, 96.0, 384.0, 1024.0, 4096.0];
        let data: Vec<(f64, f64)> = ns.iter().map(|&n| (n, truth.eval(n))).collect();
        let fit = fit_scaling(&data, &ScalingFitOptions::default()).unwrap();
        prop_assert!(fit.r_squared > 0.999, "r2 = {}", fit.r_squared);
        for &(n, y) in &data {
            let p = fit.curve.eval(n);
            prop_assert!((p - y).abs() <= 0.02 * y + 1e-6, "n={n}: {p} vs {y}");
        }
    }

    /// The fit must always respect the positivity and exponent bounds
    /// (Table II line 11 plus the convexity guard).
    #[test]
    fn fitted_parameters_respect_bounds(truth in arb_curve(),
                                        jitter in prop::collection::vec(0.95f64..1.05, 6)) {
        let ns = [16.0, 32.0, 128.0, 512.0, 2048.0, 8192.0];
        let data: Vec<(f64, f64)> = ns
            .iter()
            .zip(&jitter)
            .map(|(&n, &j)| (n, truth.eval(n) * j))
            .collect();
        let fit = fit_scaling(&data, &ScalingFitOptions::default()).unwrap();
        prop_assert!(fit.curve.a >= 0.0);
        prop_assert!(fit.curve.b >= 0.0);
        prop_assert!(fit.curve.d >= 0.0);
        prop_assert!(fit.curve.c >= 1.0 && fit.curve.c <= 3.0);
        prop_assert!(fit.curve.is_convex());
    }

    /// Monotone consequence of convex fits: the curve evaluated on a
    /// decreasing-time dataset never predicts negative times.
    #[test]
    fn predictions_stay_positive(truth in arb_curve(), n in 1.0f64..100_000.0) {
        let ns = [8.0, 64.0, 512.0, 4096.0];
        let data: Vec<(f64, f64)> = ns.iter().map(|&m| (m, truth.eval(m))).collect();
        let fit = fit_scaling(&data, &ScalingFitOptions::default()).unwrap();
        prop_assert!(fit.curve.eval(n) >= 0.0);
    }

    /// The fit fast-path invariant: for random scaling data, early-stop
    /// on/off and threads ∈ {1, 4} all yield identical `ScalingCurve`
    /// bits, `starts_run` equals the starts actually run, and
    /// `basin_hits ≤ starts_run`.
    #[test]
    fn early_stop_is_bit_identical_at_any_thread_count(
        truth in arb_curve(),
        jitter in prop::collection::vec(0.97f64..1.03, 6),
    ) {
        let ns = [8.0, 24.0, 96.0, 384.0, 1024.0, 4096.0];
        let data: Vec<(f64, f64)> = ns
            .iter()
            .zip(&jitter)
            .map(|(&n, &j)| (n, truth.eval(n) * j))
            .collect();
        let base = ScalingFitOptions { starts: 12, ..Default::default() };
        let reference = fit_scaling(&data, &base).unwrap();
        prop_assert!(!reference.early_stopped);
        prop_assert_eq!(reference.starts_run, base.starts);
        for threads in [1usize, 4] {
            for early_stop in [None, Some(EarlyStopPolicy::default())] {
                let opts = ScalingFitOptions { threads, early_stop, ..base.clone() };
                let fit = fit_scaling(&data, &opts).unwrap();
                prop_assert_eq!(
                    fit.curve.a.to_bits(), reference.curve.a.to_bits(),
                    "a diverged (threads={}, early_stop={})", threads, early_stop.is_some()
                );
                prop_assert_eq!(fit.curve.b.to_bits(), reference.curve.b.to_bits());
                prop_assert_eq!(fit.curve.c.to_bits(), reference.curve.c.to_bits());
                prop_assert_eq!(fit.curve.d.to_bits(), reference.curve.d.to_bits());
                prop_assert!(fit.starts_run <= base.starts);
                prop_assert!(fit.basin_hits <= fit.starts_run);
                if early_stop.is_none() {
                    prop_assert!(!fit.early_stopped, "early-stop fired while disabled");
                    prop_assert_eq!(fit.starts_run, base.starts);
                }
            }
        }
    }
}
