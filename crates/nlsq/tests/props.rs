//! Property tests for the scaling-curve fit.

use hslb_nlsq::{fit_scaling, ScalingCurve, ScalingFitOptions};
use proptest::prelude::*;

fn arb_curve() -> impl Strategy<Value = ScalingCurve> {
    (
        100.0f64..100_000.0, // a
        0.0f64..0.01,        // b
        1.0f64..1.8,         // c
        0.1f64..100.0,       // d
    )
        .prop_map(|(a, b, c, d)| ScalingCurve { a, b, c, d })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Noiseless synthetic data from an in-bounds curve must be fit with
    /// R² ≈ 1 and accurate predictions at the sampled points.
    #[test]
    fn noiseless_fit_reproduces_observations(truth in arb_curve()) {
        let ns = [8.0, 24.0, 96.0, 384.0, 1024.0, 4096.0];
        let data: Vec<(f64, f64)> = ns.iter().map(|&n| (n, truth.eval(n))).collect();
        let fit = fit_scaling(&data, &ScalingFitOptions::default()).unwrap();
        prop_assert!(fit.r_squared > 0.999, "r2 = {}", fit.r_squared);
        for &(n, y) in &data {
            let p = fit.curve.eval(n);
            prop_assert!((p - y).abs() <= 0.02 * y + 1e-6, "n={n}: {p} vs {y}");
        }
    }

    /// The fit must always respect the positivity and exponent bounds
    /// (Table II line 11 plus the convexity guard).
    #[test]
    fn fitted_parameters_respect_bounds(truth in arb_curve(),
                                        jitter in prop::collection::vec(0.95f64..1.05, 6)) {
        let ns = [16.0, 32.0, 128.0, 512.0, 2048.0, 8192.0];
        let data: Vec<(f64, f64)> = ns
            .iter()
            .zip(&jitter)
            .map(|(&n, &j)| (n, truth.eval(n) * j))
            .collect();
        let fit = fit_scaling(&data, &ScalingFitOptions::default()).unwrap();
        prop_assert!(fit.curve.a >= 0.0);
        prop_assert!(fit.curve.b >= 0.0);
        prop_assert!(fit.curve.d >= 0.0);
        prop_assert!(fit.curve.c >= 1.0 && fit.curve.c <= 3.0);
        prop_assert!(fit.curve.is_convex());
    }

    /// Monotone consequence of convex fits: the curve evaluated on a
    /// decreasing-time dataset never predicts negative times.
    #[test]
    fn predictions_stay_positive(truth in arb_curve(), n in 1.0f64..100_000.0) {
        let ns = [8.0, 64.0, 512.0, 4096.0];
        let data: Vec<(f64, f64)> = ns.iter().map(|&m| (m, truth.eval(m))).collect();
        let fit = fit_scaling(&data, &ScalingFitOptions::default()).unwrap();
        prop_assert!(fit.curve.eval(n) >= 0.0);
    }
}
