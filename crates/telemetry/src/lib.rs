//! Lightweight, dependency-free observability for the HSLB pipeline.
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//!
//! The pipeline (gather → fit → solve → execute) runs as a tuning
//! service; this crate gives every layer a shared way to say what it is
//! doing without pulling in the `tracing` ecosystem (the build container
//! has no registry access). The model is a strict subset of `tracing`:
//!
//! * **spans** ([`Telemetry::span`]) — named, nested regions with wall
//!   time. Nesting is tracked per thread, so the gather→fit→solve tree
//!   can be reconstructed from the flat event log ([`span_tree`]);
//! * **points** ([`Telemetry::point`]) — instantaneous events carrying
//!   numeric fields and string labels (incumbent updates, retries,
//!   ladder fallbacks);
//! * **counters** ([`Telemetry::counter_add`]) — monotonic named totals
//!   that survive the parallel solver (workers add their local tallies);
//! * **histograms** ([`Telemetry::record`]) — value distributions with
//!   count/min/max/mean/p50/p90/p99 summaries (per-run wall times, backoff
//!   waits, cut-pool sizes).
//!
//! A disabled handle ([`Telemetry::disabled`], the default everywhere) is
//! a single `Option` check per call — hot paths pay nothing unless the
//! caller opted in. Instrumentation is strictly passive: it never feeds
//! back into any algorithmic decision, so a telemetry-enabled solve is
//! bit-identical to a disabled one.
//!
//! The whole state snapshots to JSON ([`Snapshot::to_json`]) and parses
//! back ([`Snapshot::from_json`]) via the vendored [`json`] module — the
//! sink behind `BENCH_pipeline.json`.
//!
//! # Examples
//!
//! ```
//! use hslb_telemetry::Telemetry;
//!
//! let tel = Telemetry::new();
//! {
//!     let _pipeline = tel.span("pipeline");
//!     {
//!         let _gather = tel.span("gather");
//!         tel.record("gather.run_s", 306.9);
//!         tel.counter_add("gather.attempts", 1);
//!     }
//!     tel.point("ladder.rung", &[], &[("rung", "minlp")]);
//! }
//! let snap = tel.snapshot();
//! assert_eq!(snap.counters["gather.attempts"], 1);
//! let tree = hslb_telemetry::span_tree(&snap.events);
//! assert_eq!(tree[0].name, "pipeline");
//! assert_eq!(tree[0].children[0].name, "gather");
//! // And the JSON sink round-trips.
//! let back = hslb_telemetry::Snapshot::from_json(&snap.to_json()).unwrap();
//! assert_eq!(back.counters, snap.counters);
//! ```

pub mod codec;
pub mod json;

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span was opened (`span` is its id).
    SpanStart,
    /// A span closed; `dur_ms` carries its wall time.
    SpanEnd,
    /// An instantaneous observation inside the enclosing span.
    Point,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Point => "point",
        }
    }

    fn parse(s: &str) -> Option<EventKind> {
        match s {
            "span_start" => Some(EventKind::SpanStart),
            "span_end" => Some(EventKind::SpanEnd),
            "point" => Some(EventKind::Point),
            _ => None,
        }
    }
}

/// One entry in the event log.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Milliseconds since the handle was created.
    pub t_ms: f64,
    pub kind: EventKind,
    pub name: String,
    /// The span this event belongs to: its own id for
    /// `SpanStart`/`SpanEnd`, the enclosing span for `Point` (0 = none).
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Wall time for `SpanEnd` events.
    pub dur_ms: Option<f64>,
    /// Numeric payload, in insertion order.
    pub fields: Vec<(String, f64)>,
    /// String payload, in insertion order.
    pub labels: Vec<(String, String)>,
}

/// Histogram of recorded values. Keeps every value up to a cap (enough
/// for per-phase instrumentation; quantiles degrade gracefully past it).
#[derive(Debug, Clone, Default)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    values: Vec<f64>,
}

const HIST_VALUE_CAP: usize = 4096;

impl Histogram {
    fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        if self.values.len() < HIST_VALUE_CAP {
            self.values.push(v);
        }
    }

    fn summary(&self) -> HistSummary {
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = |p: f64| -> f64 {
            if sorted.is_empty() {
                return f64::NAN;
            }
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            sorted[idx]
        };
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            mean: if self.count > 0 {
                self.sum / self.count as f64
            } else {
                f64::NAN
            },
            p50: q(0.5),
            p90: q(0.9),
            p99: q(0.99),
        }
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

#[derive(Default)]
struct State {
    events: Vec<Event>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    /// Per-thread open-span stack for parent tracking.
    stacks: HashMap<ThreadId, Vec<u64>>,
}

struct Inner {
    start: Instant,
    next_span: AtomicU64,
    state: Mutex<State>,
}

/// A cheap, cloneable telemetry handle. Disabled handles are free.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Telemetry({})",
            if self.inner.is_some() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

impl Telemetry {
    /// An enabled handle with an empty event log.
    pub fn new() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                next_span: AtomicU64::new(1),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// A no-op handle (the default in every options struct).
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn t_ms(inner: &Inner) -> f64 {
        inner.start.elapsed().as_secs_f64() * 1e3
    }

    fn lock(inner: &Inner) -> std::sync::MutexGuard<'_, State> {
        // A poisoned mutex only means another thread panicked mid-record;
        // the log is still worth reading.
        inner.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Open a named span. The guard closes it (recording wall time) on
    /// drop; spans opened while it lives on the same thread become its
    /// children.
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                telemetry: Telemetry::disabled(),
                id: 0,
                thread: std::thread::current().id(),
                start: Instant::now(),
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let thread = std::thread::current().id();
        let t_ms = Self::t_ms(inner);
        {
            let mut st = Self::lock(inner);
            let parent = st
                .stacks
                .get(&thread)
                .and_then(|s| s.last().copied())
                .unwrap_or(0);
            st.events.push(Event {
                t_ms,
                kind: EventKind::SpanStart,
                name: name.to_string(),
                span: id,
                parent,
                dur_ms: None,
                fields: Vec::new(),
                labels: Vec::new(),
            });
            st.stacks.entry(thread).or_default().push(id);
        }
        SpanGuard {
            telemetry: self.clone(),
            id,
            thread,
            start: Instant::now(),
        }
    }

    /// Record an instantaneous event under the current thread's span.
    pub fn point(&self, name: &str, fields: &[(&str, f64)], labels: &[(&str, &str)]) {
        let Some(inner) = &self.inner else { return };
        let thread = std::thread::current().id();
        let t_ms = Self::t_ms(inner);
        let mut st = Self::lock(inner);
        let span = st
            .stacks
            .get(&thread)
            .and_then(|s| s.last().copied())
            .unwrap_or(0);
        st.events.push(Event {
            t_ms,
            kind: EventKind::Point,
            name: name.to_string(),
            span,
            parent: span,
            dur_ms: None,
            fields: fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// Add to a named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = Self::lock(inner);
        match st.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                st.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        Self::lock(inner).counters.get(name).copied().unwrap_or(0)
    }

    /// Record one value into a named histogram.
    pub fn record(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut st = Self::lock(inner);
        match st.hists.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                st.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Milliseconds since the handle was created (0 when disabled).
    pub fn elapsed_ms(&self) -> f64 {
        self.inner.as_ref().map_or(0.0, |i| Self::t_ms(i))
    }

    /// Copy of the full event log.
    pub fn events(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        Self::lock(inner).events.clone()
    }

    /// Consistent snapshot of events, counters and histogram summaries.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let st = Self::lock(inner);
        Snapshot {
            events: st.events.clone(),
            counters: st.counters.clone(),
            hists: st
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }

    fn close_span(&self, id: u64, thread: ThreadId, start: Instant) {
        let Some(inner) = &self.inner else { return };
        let dur_ms = start.elapsed().as_secs_f64() * 1e3;
        let t_ms = Self::t_ms(inner);
        let mut st = Self::lock(inner);
        // Pop this span from its opening thread's stack (it is almost
        // always on top; a retain guards against out-of-order drops).
        if let Some(stack) = st.stacks.get_mut(&thread) {
            if stack.last() == Some(&id) {
                stack.pop();
            } else {
                stack.retain(|&s| s != id);
            }
        }
        let (name, parent) = st
            .events
            .iter()
            .find(|e| e.kind == EventKind::SpanStart && e.span == id)
            .map(|e| (e.name.clone(), e.parent))
            .unwrap_or_default();
        st.events.push(Event {
            t_ms,
            kind: EventKind::SpanEnd,
            name,
            span: id,
            parent,
            dur_ms: Some(dur_ms),
            fields: Vec::new(),
            labels: Vec::new(),
        });
    }
}

/// RAII guard returned by [`Telemetry::span`].
pub struct SpanGuard {
    telemetry: Telemetry,
    id: u64,
    thread: ThreadId,
    start: Instant,
}

impl SpanGuard {
    /// The span's id (0 when telemetry is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id != 0 {
            self.telemetry.close_span(self.id, self.thread, self.start);
        }
    }
}

/// Everything a [`Telemetry`] handle accumulated, in a serializable form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub events: Vec<Event>,
    pub counters: BTreeMap<String, u64>,
    pub hists: BTreeMap<String, HistSummary>,
}

/// One node of the reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    pub id: u64,
    pub name: String,
    /// `None` for spans that never closed (still open at snapshot time).
    pub dur_ms: Option<f64>,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Depth-first search by name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Rebuild the span tree from a flat event log. Returns the root spans
/// (parent 0) in opening order.
pub fn span_tree(events: &[Event]) -> Vec<SpanNode> {
    let mut nodes: BTreeMap<u64, SpanNode> = BTreeMap::new();
    let mut order: Vec<u64> = Vec::new();
    let mut parents: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::SpanStart => {
                nodes.insert(
                    e.span,
                    SpanNode {
                        id: e.span,
                        name: e.name.clone(),
                        dur_ms: None,
                        children: Vec::new(),
                    },
                );
                order.push(e.span);
                parents.insert(e.span, e.parent);
            }
            EventKind::SpanEnd => {
                if let Some(n) = nodes.get_mut(&e.span) {
                    n.dur_ms = e.dur_ms;
                }
            }
            EventKind::Point => {}
        }
    }
    // Attach children to parents deepest-first (reverse opening order so
    // a child is complete before it is moved into its parent).
    let mut roots = Vec::new();
    for &id in order.iter().rev() {
        let parent = parents.get(&id).copied().unwrap_or(0);
        if parent == 0 || !nodes.contains_key(&parent) {
            continue;
        }
        if let Some(child) = nodes.remove(&id) {
            if let Some(p) = nodes.get_mut(&parent) {
                p.children.insert(0, child);
            }
        }
    }
    for id in order {
        if let Some(n) = nodes.remove(&id) {
            roots.push(n);
        }
    }
    roots
}

// --- JSON encoding of snapshots -------------------------------------------

impl Event {
    fn to_value(&self) -> json::Value {
        let mut obj = vec![
            ("t_ms".to_string(), json::Value::Num(self.t_ms)),
            (
                "kind".to_string(),
                json::Value::Str(self.kind.as_str().to_string()),
            ),
            ("name".to_string(), json::Value::Str(self.name.clone())),
            ("span".to_string(), json::Value::Num(self.span as f64)),
            ("parent".to_string(), json::Value::Num(self.parent as f64)),
        ];
        if let Some(d) = self.dur_ms {
            obj.push(("dur_ms".to_string(), json::Value::Num(d)));
        }
        if !self.fields.is_empty() {
            obj.push((
                "fields".to_string(),
                json::Value::Obj(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), json::Value::Num(*v)))
                        .collect(),
                ),
            ));
        }
        if !self.labels.is_empty() {
            obj.push((
                "labels".to_string(),
                json::Value::Obj(
                    self.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), json::Value::Str(v.clone())))
                        .collect(),
                ),
            ));
        }
        json::Value::Obj(obj)
    }

    fn from_value(v: &json::Value) -> Option<Event> {
        let kind = EventKind::parse(v.get("kind")?.as_str()?)?;
        Some(Event {
            t_ms: v.get("t_ms")?.as_f64()?,
            kind,
            name: v.get("name")?.as_str()?.to_string(),
            span: v.get("span")?.as_f64()? as u64,
            parent: v.get("parent")?.as_f64()? as u64,
            dur_ms: v.get("dur_ms").and_then(|d| d.as_f64()),
            fields: match v.get("fields") {
                Some(json::Value::Obj(kv)) => kv
                    .iter()
                    .filter_map(|(k, fv)| fv.as_f64().map(|x| (k.clone(), x)))
                    .collect(),
                _ => Vec::new(),
            },
            labels: match v.get("labels") {
                Some(json::Value::Obj(kv)) => kv
                    .iter()
                    .filter_map(|(k, lv)| lv.as_str().map(|s| (k.clone(), s.to_string())))
                    .collect(),
                _ => Vec::new(),
            },
        })
    }
}

impl HistSummary {
    fn to_value(&self) -> json::Value {
        json::Value::Obj(vec![
            ("count".to_string(), json::Value::Num(self.count as f64)),
            ("sum".to_string(), json::Value::Num(self.sum)),
            ("min".to_string(), json::Value::Num(self.min)),
            ("max".to_string(), json::Value::Num(self.max)),
            ("mean".to_string(), json::Value::Num(self.mean)),
            ("p50".to_string(), json::Value::Num(self.p50)),
            ("p90".to_string(), json::Value::Num(self.p90)),
            ("p99".to_string(), json::Value::Num(self.p99)),
        ])
    }

    fn from_value(v: &json::Value) -> Option<HistSummary> {
        Some(HistSummary {
            count: v.get("count")?.as_f64()? as u64,
            sum: v.get("sum")?.as_f64()?,
            min: v.get("min")?.as_f64()?,
            max: v.get("max")?.as_f64()?,
            mean: v.get("mean")?.as_f64()?,
            p50: v.get("p50")?.as_f64()?,
            p90: v.get("p90")?.as_f64()?,
            // p99 arrived with the v4 bench schema; older serialized
            // snapshots fall back to p90 (their nearest upper quantile).
            p99: v
                .get("p99")
                .and_then(json::Value::as_f64)
                .unwrap_or(v.get("p90")?.as_f64()?),
        })
    }
}

impl Snapshot {
    /// Serialize to a JSON document (the event-sink format).
    pub fn to_json(&self) -> String {
        json::Value::Obj(vec![
            (
                "events".to_string(),
                json::Value::Arr(self.events.iter().map(Event::to_value).collect()),
            ),
            (
                "counters".to_string(),
                json::Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), json::Value::Num(v as f64)))
                        .collect(),
                ),
            ),
            (
                "hists".to_string(),
                json::Value::Obj(
                    self.hists
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }

    /// Parse a document produced by [`Snapshot::to_json`].
    pub fn from_json(s: &str) -> Result<Snapshot, String> {
        let v = json::parse(s)?;
        let events = match v.get("events") {
            Some(json::Value::Arr(items)) => items
                .iter()
                .map(|e| Event::from_value(e).ok_or_else(|| "malformed event".to_string()))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing events array".to_string()),
        };
        let counters = match v.get("counters") {
            Some(json::Value::Obj(kv)) => kv
                .iter()
                .map(|(k, cv)| {
                    cv.as_f64()
                        .map(|x| (k.clone(), x as u64))
                        .ok_or_else(|| "non-numeric counter".to_string())
                })
                .collect::<Result<BTreeMap<_, _>, _>>()?,
            _ => return Err("missing counters object".to_string()),
        };
        let hists = match v.get("hists") {
            Some(json::Value::Obj(kv)) => kv
                .iter()
                .map(|(k, hv)| {
                    HistSummary::from_value(hv)
                        .map(|h| (k.clone(), h))
                        .ok_or_else(|| "malformed histogram".to_string())
                })
                .collect::<Result<BTreeMap<_, _>, _>>()?,
            _ => return Err("missing hists object".to_string()),
        };
        Ok(Snapshot {
            events,
            counters,
            hists,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        let _s = tel.span("nothing");
        tel.counter_add("c", 5);
        tel.record("h", 1.0);
        tel.point("p", &[("x", 1.0)], &[]);
        assert!(!tel.is_enabled());
        assert_eq!(tel.counter("c"), 0);
        assert!(tel.events().is_empty());
        assert_eq!(tel.snapshot(), Snapshot::default());
    }

    #[test]
    fn span_nesting_reconstructs_tree() {
        let tel = Telemetry::new();
        {
            let _root = tel.span("pipeline");
            {
                let _g = tel.span("gather");
                tel.point("gather.run", &[("nodes", 64.0)], &[]);
            }
            {
                let _f = tel.span("fit");
                let _inner = tel.span("fit.component");
            }
            let _s = tel.span("solve");
        }
        let tree = span_tree(&tel.events());
        assert_eq!(tree.len(), 1);
        let root = &tree[0];
        assert_eq!(root.name, "pipeline");
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["gather", "fit", "solve"]);
        assert_eq!(root.children[1].children[0].name, "fit.component");
        // Every closed span has a duration; parents outlast children.
        assert!(root.dur_ms.unwrap() >= root.children[0].dur_ms.unwrap());
        assert!(root.find("fit.component").is_some());
        assert!(root.find("nonexistent").is_none());
    }

    #[test]
    fn counters_are_thread_safe_totals() {
        let tel = Telemetry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let tel = tel.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        tel.counter_add("work", 1);
                    }
                });
            }
        });
        assert_eq!(tel.counter("work"), 800);
    }

    #[test]
    fn spans_on_other_threads_are_roots() {
        let tel = Telemetry::new();
        let _main = tel.span("main");
        std::thread::scope(|scope| {
            let tel = tel.clone();
            scope.spawn(move || {
                let _w = tel.span("worker");
            });
        });
        let tree = span_tree(&tel.events());
        // The worker span must not be parented under "main" (different
        // thread), so both appear as roots.
        let names: Vec<&str> = tree.iter().map(|n| n.name.as_str()).collect();
        assert!(names.contains(&"worker"), "{names:?}");
    }

    #[test]
    fn histogram_summary_statistics() {
        let tel = Telemetry::new();
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            tel.record("h", v);
        }
        let snap = tel.snapshot();
        let h = &snap.hists["h"];
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.mean - 22.0).abs() < 1e-12);
        assert_eq!(h.p50, 3.0);
        assert_eq!(h.p90, 100.0);
        assert_eq!(h.p99, 100.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let tel = Telemetry::new();
        {
            let _root = tel.span("pipeline");
            tel.point(
                "minlp.incumbent",
                &[("obj", 306.9), ("nodes", 17.0)],
                &[("status", "improved"), ("quote", "say \"hi\"\n")],
            );
            tel.counter_add("minlp.nodes", 1234);
            tel.record("gather.run_s", 62.0);
            tel.record("gather.run_s", 300.5);
        }
        let snap = tel.snapshot();
        let text = snap.to_json();
        let back = Snapshot::from_json(&text).expect("round trip");
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.hists, snap.hists);
        assert_eq!(back.events.len(), snap.events.len());
        for (a, b) in snap.events.iter().zip(&back.events) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.name, b.name);
            assert_eq!(a.span, b.span);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.fields, b.fields);
            assert_eq!(a.labels, b.labels);
        }
        // The tree survives serialization too.
        let tree = span_tree(&back.events);
        assert_eq!(tree[0].name, "pipeline");
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        assert!(Snapshot::from_json("{").is_err());
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json("{\"events\":[{}],\"counters\":{},\"hists\":{}}").is_err());
    }
}
