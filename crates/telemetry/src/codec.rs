//! Sealed-document codec: a length/checksum footer for JSON documents
//! that must survive crashes.
//!
//! The tuning service persists its cache tiers by writing a JSON body
//! through [`crate::json`] and sealing it with a one-line footer carrying
//! the body's byte length and FNV-1a 64 checksum. A reader first verifies
//! the footer ([`unseal`]) before parsing: a torn write (partial body, a
//! missing footer after `kill -9`, bit rot) fails the seal check with a
//! typed [`CodecError`] instead of feeding garbage into the JSON parser
//! or — worse — restoring a silently corrupted cache entry.
//!
//! The footer is deliberately line-oriented and human-readable:
//!
//! ```text
//! {"schema":"hslb-cache-snapshot/v1", ...}
//! #hslb-seal v1 len=1234 fnv=00a1b2c3d4e5f607
//! ```
//!
//! Atomicity (temp file + rename) is the *writer's* job; this module only
//! defines what a well-formed sealed document looks like.

use std::fmt;

/// Footer marker; also the parse anchor for [`unseal`].
const SEAL_PREFIX: &str = "#hslb-seal v1 ";

/// Why a sealed document failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// No footer line at the end of the document (torn write, wrong file).
    MissingFooter,
    /// The footer line exists but does not parse.
    MalformedFooter { detail: String },
    /// The body's byte length disagrees with the footer (truncation).
    LengthMismatch { expected: usize, actual: usize },
    /// The body's checksum disagrees with the footer (corruption).
    ChecksumMismatch { expected: u64, actual: u64 },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::MissingFooter => write!(f, "sealed document has no footer line"),
            CodecError::MalformedFooter { detail } => {
                write!(f, "sealed document footer is malformed: {detail}")
            }
            CodecError::LengthMismatch { expected, actual } => write!(
                f,
                "sealed document truncated: footer says {expected} bytes, body has {actual}"
            ),
            CodecError::ChecksumMismatch { expected, actual } => write!(
                f,
                "sealed document corrupted: footer checksum {expected:016x}, body hashes to {actual:016x}"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash — the workspace's standard dependency-free digest
/// (the service's shard router uses the same constants).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append the seal footer to `body`, producing the full file contents.
/// The body must be newline-terminated (callers hand over a JSON document
/// plus `\n`); a missing terminator is added so the footer stays on its
/// own line.
pub fn seal(body: &str) -> String {
    let mut out = String::with_capacity(body.len() + 48);
    out.push_str(body);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    let sealed_len = out.len();
    let sum = fnv1a64(out.as_bytes());
    out.push_str(SEAL_PREFIX);
    out.push_str(&format!("len={sealed_len} fnv={sum:016x}\n"));
    out
}

/// Verify the footer of a sealed document and hand back the body slice
/// (newline-terminated, footer stripped). Every failure is typed so the
/// caller can degrade to a cold start with the reason on the record.
pub fn unseal(text: &str) -> Result<&str, CodecError> {
    let trimmed = text.strip_suffix('\n').unwrap_or(text);
    let footer_at = match trimmed.rfind('\n') {
        Some(i) => i + 1,
        None => return Err(CodecError::MissingFooter),
    };
    let footer = &trimmed[footer_at..];
    let Some(args) = footer.strip_prefix(SEAL_PREFIX) else {
        return Err(CodecError::MissingFooter);
    };
    let mut len: Option<usize> = None;
    let mut fnv: Option<u64> = None;
    for part in args.split_whitespace() {
        if let Some(v) = part.strip_prefix("len=") {
            len = v.parse().ok();
        } else if let Some(v) = part.strip_prefix("fnv=") {
            fnv = u64::from_str_radix(v, 16).ok();
        }
    }
    let (expected_len, expected_fnv) = match (len, fnv) {
        (Some(l), Some(s)) => (l, s),
        _ => {
            return Err(CodecError::MalformedFooter {
                detail: footer.to_string(),
            })
        }
    };
    let body = &text[..footer_at];
    if body.len() != expected_len {
        return Err(CodecError::LengthMismatch {
            expected: expected_len,
            actual: body.len(),
        });
    }
    let actual = fnv1a64(body.as_bytes());
    if actual != expected_fnv {
        return Err(CodecError::ChecksumMismatch {
            expected: expected_fnv,
            actual,
        });
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_round_trips() {
        let body = "{\"schema\":\"test/v1\",\"x\":1}\n";
        let sealed = seal(body);
        assert_eq!(unseal(&sealed).unwrap(), body);
    }

    #[test]
    fn seal_adds_missing_terminator() {
        let sealed = seal("{}");
        assert_eq!(unseal(&sealed).unwrap(), "{}\n");
    }

    #[test]
    fn truncation_is_a_length_mismatch() {
        let sealed = seal("{\"a\":[1,2,3,4,5]}\n");
        // Chop bytes out of the body but keep the footer line (and the
        // newline that precedes it) intact.
        let footer_start = sealed.rfind(SEAL_PREFIX).unwrap();
        let torn = format!(
            "{}{}",
            &sealed[..footer_start - 6],
            &sealed[footer_start - 1..]
        );
        assert!(matches!(
            unseal(&torn),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn flipped_bit_is_a_checksum_mismatch() {
        let sealed = seal("{\"a\":1}\n");
        let corrupted = sealed.replacen("\"a\":1", "\"a\":7", 1);
        assert!(matches!(
            unseal(&corrupted),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn missing_footer_is_typed() {
        assert_eq!(unseal("{\"a\":1}\n"), Err(CodecError::MissingFooter));
        assert_eq!(unseal(""), Err(CodecError::MissingFooter));
        assert_eq!(unseal("no newlines at all"), Err(CodecError::MissingFooter));
    }

    #[test]
    fn malformed_footer_is_typed() {
        let bad = "{\"a\":1}\n#hslb-seal v1 len=oops fnv=zz\n";
        assert!(matches!(
            unseal(bad),
            Err(CodecError::MalformedFooter { .. })
        ));
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a 64 of the empty string is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
