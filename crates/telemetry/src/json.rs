//! A minimal JSON value, writer and parser.
//!
//! The build container has no registry access, so `serde_json` cannot be
//! used; this module covers the subset the telemetry sink and the
//! `bench-suite` schema validator need: the full JSON data model, strict
//! parsing with positioned errors, and deterministic output (object keys
//! keep insertion order; non-finite numbers serialize as `null`, matching
//! `serde_json`'s default f64 behavior).

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup on arrays (`None` elsewhere).
    pub fn idx(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Arr(items) => items.get(i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with two-space indentation (stable for diffs and `git`-
    /// friendly BENCH files).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => {
                if x.is_finite() {
                    // Integral values print without a trailing ".0" so ids
                    // and counters look like integers.
                    if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
                        out.push_str(&format!("{}", *x as i64));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        newline_indent(out, level + 1);
                        item.write(out, Some(level + 1));
                    } else {
                        item.write(out, None);
                    }
                }
                if let Some(level) = indent {
                    newline_indent(out, level);
                }
                out.push(']');
            }
            Value::Obj(kv) => {
                if kv.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in kv.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        newline_indent(out, level + 1);
                        write_escaped(out, k);
                        out.push_str(": ");
                        v.write(out, Some(level + 1));
                    } else {
                        write_escaped(out, k);
                        out.push(':');
                        v.write(out, None);
                    }
                }
                if let Some(level) = indent {
                    newline_indent(out, level);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Value {
    /// Compact single-line rendering.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry the byte offset and a short
/// description.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, what)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(kv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            kv.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(kv));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our sink;
                            // map unpaired surrogates to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a": [1, {"b": "x"}, null], "c": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().idx(0).unwrap().as_f64(), Some(1.0));
        assert_eq!(
            v.get("a")
                .unwrap()
                .idx(1)
                .unwrap()
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(v.get("c"), Some(&Value::Obj(vec![])));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "1 2",
            "nul",
            "\"x",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Obj(vec![
            ("n".into(), Value::Num(42.0)),
            ("f".into(), Value::Num(2.5)),
            ("s".into(), Value::Str("say \"hi\"\n".into())),
            (
                "a".into(),
                Value::Arr(vec![Value::Bool(false), Value::Null]),
            ),
        ]);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
        // Integral floats print as integers.
        assert!(v.to_string().contains("\"n\":42"));
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let v = Value::Arr(vec![Value::Num(f64::NAN), Value::Num(f64::INFINITY)]);
        assert_eq!(v.to_string(), "[null,null]");
    }

    #[test]
    fn unicode_survives() {
        let v = parse("\"1\\u00b0 — ½°\"").unwrap();
        assert_eq!(v.as_str(), Some("1° — ½°"));
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }
}
