//! Property-based tests for the numerics crate.

use hslb_numerics::{lu, qr, scalar, stats, vector, Cholesky, Matrix};
use proptest::prelude::*;

/// Strategy for a well-conditioned square matrix: random entries in
/// [-1, 1] with a dominant diagonal.
fn diag_dominant(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data).unwrap();
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

fn vec_n(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #[test]
    fn lu_solve_residual_small((a, b) in (2usize..8).prop_flat_map(|n| (diag_dominant(n), vec_n(n)))) {
        let x = lu::solve(&a, &b).unwrap();
        let r = vector::sub(&a.matvec(&x).unwrap(), &b);
        prop_assert!(vector::norm_inf(&r) < 1e-8);
    }

    #[test]
    fn cholesky_solves_spd((a, b) in (2usize..8).prop_flat_map(|n| (diag_dominant(n), vec_n(n)))) {
        // A·Aᵀ + I is SPD for any A.
        let spd = {
            let mut s = a.matmul(&a.transpose()).unwrap();
            for i in 0..s.rows() {
                s[(i, i)] += 1.0;
            }
            s
        };
        let x = Cholesky::factor(&spd).unwrap().solve(&b).unwrap();
        let r = vector::sub(&spd.matvec(&x).unwrap(), &b);
        prop_assert!(vector::norm_inf(&r) < 1e-7);
    }

    #[test]
    fn qr_least_squares_is_stationary(rows in 4usize..10, seed in 0u64..1000) {
        // Build a random tall matrix deterministically from the seed.
        let cols = 3usize;
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut a = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                a[(i, j)] = next();
            }
        }
        for j in 0..cols {
            a[(j, j)] += 2.0; // ensure full column rank
        }
        let b: Vec<f64> = (0..rows).map(|_| next()).collect();
        let x = qr::least_squares(&a, &b).unwrap();
        // Normal-equation stationarity: Aᵀ(Ax − b) ≈ 0.
        let r = vector::sub(&a.matvec(&x).unwrap(), &b);
        let atr = a.matvec_t(&r).unwrap();
        prop_assert!(vector::norm_inf(&atr) < 1e-8);
    }

    #[test]
    fn transpose_is_involution(n in 1usize..6, m in 1usize..6, seed in 0u64..100) {
        let mut state = seed.wrapping_add(7);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let data: Vec<f64> = (0..n * m).map(|_| next()).collect();
        let a = Matrix::from_vec(n, m, data).unwrap();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn r_squared_at_most_one(ys in prop::collection::vec(-100.0f64..100.0, 2..20),
                             noise in prop::collection::vec(-1.0f64..1.0, 20)) {
        let preds: Vec<f64> = ys.iter().zip(&noise).map(|(y, n)| y + n).collect();
        if let Some(r2) = stats::r_squared(&ys, &preds) {
            prop_assert!(r2 <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn integer_ternary_matches_bruteforce_on_unimodal(center in -50i64..50, lo in -100i64..0, span in 1i64..200) {
        let hi = lo + span;
        let f = |x: i64| {
            let d = (x - center) as f64;
            d * d
        };
        let (x, fx) = scalar::integer_ternary_min(f, lo, hi);
        let brute = (lo..=hi).map(|x| (x, f(x)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        prop_assert_eq!(fx, brute.1);
        prop_assert_eq!(x, brute.0);
    }

    #[test]
    fn golden_section_bracket_shrinks_to_quadratic_min(c in -5.0f64..5.0) {
        let (x, _) = scalar::golden_section(|x| (x - c) * (x - c), -10.0, 10.0, 1e-10, 300);
        prop_assert!((x - c).abs() < 1e-5);
    }

    #[test]
    fn dot_is_bilinear(a in vec_n(5), b in vec_n(5), alpha in -3.0f64..3.0) {
        let scaled: Vec<f64> = a.iter().map(|x| alpha * x).collect();
        let lhs = vector::dot(&scaled, &b);
        let rhs = alpha * vector::dot(&a, &b);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + rhs.abs()));
    }
}
