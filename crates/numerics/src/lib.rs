//! Dense linear algebra and scalar numerical utilities for the CESM-HSLB
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! workspace.
//!
//! This crate deliberately implements only what the rest of the workspace
//! needs — small dense systems (the least-squares normal equations and LP
//! tableau factorizations are all well under a few thousand unknowns) — so
//! everything is dense, row-major and allocation-conscious rather than
//! generic over storage.
//!
//! Contents:
//!
//! * [`Matrix`] — dense row-major matrix with the usual products.
//! * [`lu`] — LU factorization with partial pivoting, used for general
//!   square solves.
//! * [`cholesky`] — Cholesky factorization for symmetric positive definite
//!   systems (Levenberg–Marquardt normal equations), with a ridge fallback.
//! * [`qr`] — Householder QR for least-squares solves.
//! * [`vector`] — BLAS-1 style helpers on `&[f64]`.
//! * [`stats`] — mean/variance/R²/RMSE used by the fit-quality reporting.
//! * [`scalar`] — 1-D minimization (golden section) and root finding
//!   (bisection, safeguarded Newton) for the fixed-allocation subproblems.
//! * [`float`] — tolerant comparisons shared across crates.

pub mod cholesky;
pub mod float;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod scalar;
pub mod stats;
pub mod vector;

pub use cholesky::Cholesky;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;

/// Errors produced by the factorization and solve routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// The matrix was singular (or numerically singular) at the given pivot.
    Singular { pivot: usize },
    /// The matrix was not positive definite at the given diagonal entry.
    NotPositiveDefinite { index: usize },
    /// Dimensions of the operands do not agree.
    DimensionMismatch { expected: usize, got: usize },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence { iterations: usize },
    /// Invalid input (e.g. empty data, NaN) with a human-readable reason.
    Invalid(&'static str),
}

impl std::fmt::Display for NumericsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumericsError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            NumericsError::NotPositiveDefinite { index } => {
                write!(f, "matrix is not positive definite at diagonal {index}")
            }
            NumericsError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            NumericsError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            NumericsError::Invalid(reason) => write!(f, "invalid input: {reason}"),
        }
    }
}

impl std::error::Error for NumericsError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, NumericsError>;
