//! Tolerant floating-point comparisons shared across the workspace.
//!
//! Solver codes (simplex pivots, integrality checks, constraint
//! feasibility) each need *named* tolerances rather than ad-hoc literals;
//! keeping the comparison helpers here makes the choices auditable.

/// Default absolute/relative tolerance used by [`approx_eq`].
pub const DEFAULT_TOL: f64 = 1e-9;

/// `a ≈ b` under a combined absolute + relative tolerance.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

/// `a ⪅ b`: less-or-approximately-equal.
#[inline]
pub fn approx_le(a: f64, b: f64, tol: f64) -> bool {
    a <= b || approx_eq(a, b, tol)
}

/// `a ⪆ b`: greater-or-approximately-equal.
#[inline]
pub fn approx_ge(a: f64, b: f64, tol: f64) -> bool {
    a >= b || approx_eq(a, b, tol)
}

/// Is `x` within `tol` of an integer?
#[inline]
pub fn is_integral(x: f64, tol: f64) -> bool {
    (x - x.round()).abs() <= tol
}

/// Fractional distance of `x` to the nearest integer, in `[0, 0.5]`.
#[inline]
pub fn fractionality(x: f64) -> f64 {
    (x - x.round()).abs()
}

/// Round to nearest integer, returning an `i64`.
///
/// Panics in debug builds if the value is out of `i64` range or NaN.
#[inline]
pub fn round_i64(x: f64) -> i64 {
    debug_assert!(x.is_finite());
    debug_assert!(x.abs() < i64::MAX as f64);
    x.round() as i64
}

/// Total order comparison usable as a sort key for finite floats; NaN sorts
/// last so it can never be selected as a "best" value by min-sorts.
#[inline]
pub fn cmp_f64(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        // Both operands proven non-NaN by the arms above.
        #[allow(clippy::unwrap_used)]
        (false, false) => a.partial_cmp(&b).unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-10), 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn le_ge_are_consistent() {
        assert!(approx_le(1.0, 2.0, 1e-9));
        assert!(approx_le(2.0, 2.0 - 1e-12, 1e-9));
        assert!(!approx_le(2.1, 2.0, 1e-9));
        assert!(approx_ge(2.0, 1.0, 1e-9));
    }

    #[test]
    fn integrality_checks() {
        assert!(is_integral(3.0 + 1e-10, 1e-6));
        assert!(!is_integral(3.4, 1e-6));
        assert!((fractionality(2.75) - 0.25).abs() < 1e-12);
        assert_eq!(fractionality(5.0), 0.0);
    }

    #[test]
    fn nan_sorts_last() {
        let mut v = [2.0, f64::NAN, 1.0];
        v.sort_by(|a, b| cmp_f64(*a, *b));
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert!(v[2].is_nan());
    }
}
