//! Descriptive statistics and goodness-of-fit measures.
//!
//! The paper judges each component's curve fit by its coefficient of
//! determination R² ("in our tests, R² was very close to 1 for each
//! component"); these helpers back that reporting throughout the workspace.

/// Arithmetic mean; `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance; `None` for empty input.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Coefficient of determination R² = 1 − SS_res / SS_tot.
///
/// `None` when lengths mismatch or fewer than two observations. When the
/// observations are all identical (SS_tot = 0), returns 1.0 for a perfect
/// prediction and `-inf` otherwise, matching the usual convention.
pub fn r_squared(observed: &[f64], predicted: &[f64]) -> Option<f64> {
    if observed.len() != predicted.len() || observed.len() < 2 {
        return None;
    }
    let m = mean(observed)?;
    let ss_tot: f64 = observed.iter().map(|y| (y - m) * (y - m)).sum();
    let ss_res: f64 = observed
        .iter()
        .zip(predicted)
        .map(|(y, p)| (y - p) * (y - p))
        .sum();
    if ss_tot == 0.0 {
        return Some(if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        });
    }
    Some(1.0 - ss_res / ss_tot)
}

/// Root-mean-square error between observations and predictions.
pub fn rmse(observed: &[f64], predicted: &[f64]) -> Option<f64> {
    if observed.len() != predicted.len() || observed.is_empty() {
        return None;
    }
    let ss: f64 = observed
        .iter()
        .zip(predicted)
        .map(|(y, p)| (y - p) * (y - p))
        .sum();
    Some((ss / observed.len() as f64).sqrt())
}

/// Mean absolute percentage error, in percent. Observations equal to zero
/// are skipped; `None` if nothing remains.
pub fn mape(observed: &[f64], predicted: &[f64]) -> Option<f64> {
    if observed.len() != predicted.len() {
        return None;
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for (y, p) in observed.iter().zip(predicted) {
        if *y != 0.0 {
            total += ((y - p) / y).abs();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(100.0 * total / n as f64)
    }
}

/// Relative improvement of `new` over `baseline` in percent:
/// `100·(baseline − new)/baseline`. Positive means `new` is better
/// (smaller). `None` when the baseline is zero.
pub fn improvement_pct(baseline: f64, new: f64) -> Option<f64> {
    if baseline == 0.0 {
        None
    } else {
        Some(100.0 * (baseline - new) / baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(variance(&[1.0, 2.0, 3.0]), Some(2.0 / 3.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
    }

    #[test]
    fn r_squared_perfect_fit_is_one() {
        let y = [1.0, 2.0, 4.0];
        assert_eq!(r_squared(&y, &y), Some(1.0));
    }

    #[test]
    fn r_squared_mean_prediction_is_zero() {
        let y = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!((r_squared(&y, &p).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn r_squared_constant_observations() {
        assert_eq!(r_squared(&[5.0, 5.0], &[5.0, 5.0]), Some(1.0));
        assert_eq!(r_squared(&[5.0, 5.0], &[4.0, 6.0]), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn rmse_known_value() {
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]).unwrap() - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_observations() {
        let v = mape(&[0.0, 10.0], &[5.0, 9.0]).unwrap();
        assert!((v - 10.0).abs() < 1e-12);
        assert_eq!(mape(&[0.0], &[1.0]), None);
    }

    #[test]
    fn improvement_pct_signs() {
        assert!((improvement_pct(100.0, 75.0).unwrap() - 25.0).abs() < 1e-12);
        assert!(improvement_pct(100.0, 110.0).unwrap() < 0.0);
        assert_eq!(improvement_pct(0.0, 1.0), None);
    }
}
