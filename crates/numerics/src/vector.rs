//! BLAS-1 style helpers on plain `&[f64]` slices.
//!
//! Free functions instead of a wrapper type: every caller in the workspace
//! already holds `Vec<f64>`s (LP columns, residual vectors, gradients), and
//! a newtype would only add conversions at each boundary.

/// Dot product. Panics in debug builds on length mismatch.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha · x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if alpha == 0.0 {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha · x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Maximum absolute entry (infinity norm); zero for an empty slice.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Sum of entries.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Elementwise difference `a - b` as a fresh vector.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Elementwise sum `a + b` as a fresh vector.
#[inline]
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Index of the entry with the largest absolute value, or `None` if empty.
pub fn argmax_abs(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, v) in x.iter().enumerate() {
        let a = v.abs();
        if best.is_none_or(|(_, b)| a > b) {
            best = Some((i, a));
        }
    }
    best.map(|(i, _)| i)
}

/// Clamp every entry of `x` into `[lo[i], hi[i]]` in place.
pub fn clamp_box(x: &mut [f64], lo: &[f64], hi: &[f64]) {
    debug_assert_eq!(x.len(), lo.len());
    debug_assert_eq!(x.len(), hi.len());
    for ((xi, &l), &h) in x.iter_mut().zip(lo).zip(hi) {
        *xi = xi.clamp(l, h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, 0.0]);
    }

    #[test]
    fn axpy_zero_alpha_is_noop() {
        let mut y = vec![1.0, 2.0];
        axpy(0.0, &[f64::NAN, f64::NAN], &mut y);
        assert_eq!(y, vec![1.0, 2.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn argmax_abs_finds_largest_magnitude() {
        assert_eq!(argmax_abs(&[1.0, -9.0, 3.0]), Some(1));
        assert_eq!(argmax_abs(&[]), None);
    }

    #[test]
    fn clamp_box_clamps() {
        let mut x = vec![-1.0, 0.5, 9.0];
        clamp_box(&mut x, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }
}
