//! One-dimensional minimization and root finding.
//!
//! The exhaustive layout optimizer reduces each node-budget choice to 1-D
//! subproblems (e.g. "how to split `n_a` nodes between ice and land"), and
//! the fitting code needs safeguarded scalar searches; both live here.

/// Golden-section search for the minimum of a unimodal function on `[a, b]`.
///
/// Returns `(x_min, f(x_min))`. If the function is not unimodal the result
/// is a local minimum within the bracket.
pub fn golden_section<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> (f64, f64) {
    assert!(a <= b, "invalid bracket");
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..max_iter {
        if (b - a).abs() <= tol {
            break;
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    let xm = 0.5 * (a + b);
    let fm = f(xm);
    if fc <= fd && fc <= fm {
        (c, fc)
    } else if fd <= fm {
        (d, fd)
    } else {
        (xm, fm)
    }
}

/// Minimize `f` over the integers in `[lo, hi]` assuming `f` is unimodal
/// on that range. Exact for unimodal `f`; ternary search, O(log(hi−lo))
/// evaluations.
pub fn integer_ternary_min<F: FnMut(i64) -> f64>(mut f: F, mut lo: i64, mut hi: i64) -> (i64, f64) {
    assert!(lo <= hi, "invalid integer bracket");
    while hi - lo > 2 {
        let m1 = lo + (hi - lo) / 3;
        let m2 = hi - (hi - lo) / 3;
        if f(m1) <= f(m2) {
            hi = m2 - 1;
        } else {
            lo = m1 + 1;
        }
    }
    let mut best = (lo, f(lo));
    for x in lo + 1..=hi {
        let fx = f(x);
        if fx < best.1 {
            best = (x, fx);
        }
    }
    best
}

/// Minimize `f` over the integers in `[lo, hi]` with no shape assumption:
/// coarse grid scan followed by exhaustive refinement around the best grid
/// point. `grid` controls the number of coarse samples.
///
/// This is a heuristic (exact only when the refinement window covers the
/// true basin) used where the objective is "almost unimodal" — e.g. fitted
/// scaling curves with a shallow interior minimum.
pub fn integer_grid_min<F: FnMut(i64) -> f64>(
    mut f: F,
    lo: i64,
    hi: i64,
    grid: usize,
) -> (i64, f64) {
    assert!(lo <= hi, "invalid integer bracket");
    let span = (hi - lo) as u128;
    let samples = grid.max(2) as u128;
    let mut best = (lo, f(lo));
    for k in 1..=samples {
        let x = lo + ((span * k) / samples) as i64;
        let fx = f(x);
        if fx < best.1 {
            best = (x, fx);
        }
    }
    // Refine around the best coarse sample.
    let step = (span / samples).max(1) as i64;
    let w_lo = (best.0 - step).max(lo);
    let w_hi = (best.0 + step).min(hi);
    for x in w_lo..=w_hi {
        let fx = f(x);
        if fx < best.1 {
            best = (x, fx);
        }
    }
    best
}

/// Bisection root finding for a continuous `f` with `f(a)·f(b) ≤ 0`.
///
/// Returns `None` when the bracket does not straddle a sign change.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Option<f64> {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Some(a);
    }
    if fb == 0.0 {
        return Some(b);
    }
    if fa * fb > 0.0 {
        return None;
    }
    for _ in 0..max_iter {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 || (b - a).abs() <= tol {
            return Some(m);
        }
        if fa * fm < 0.0 {
            b = m;
        } else {
            a = m;
            fa = fm;
        }
    }
    Some(0.5 * (a + b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_parabola_minimum() {
        let (x, fx) = golden_section(|x| (x - 3.0) * (x - 3.0) + 1.0, -10.0, 10.0, 1e-10, 200);
        assert!((x - 3.0).abs() < 1e-6);
        assert!((fx - 1.0).abs() < 1e-10);
    }

    #[test]
    fn golden_handles_boundary_minimum() {
        let (x, _) = golden_section(|x| x, 2.0, 5.0, 1e-12, 200);
        assert!((x - 2.0).abs() < 1e-6);
    }

    #[test]
    fn integer_ternary_exact_on_unimodal() {
        let f = |x: i64| ((x - 37) * (x - 37)) as f64;
        assert_eq!(integer_ternary_min(f, 0, 1000), (37, 0.0));
        // Boundary minima.
        assert_eq!(integer_ternary_min(|x| x as f64, 5, 9).0, 5);
        assert_eq!(integer_ternary_min(|x| -(x as f64), 5, 9).0, 9);
        // Degenerate single-point bracket.
        assert_eq!(integer_ternary_min(|_| 1.0, 4, 4), (4, 1.0));
    }

    #[test]
    fn integer_grid_finds_scaling_curve_minimum() {
        // A fitted-curve-like shape: a/n + b·n + d, minimized at √(a/b).
        let f = |n: i64| 1.0e6 / n as f64 + 0.01 * n as f64 + 5.0;
        let (n, _) = integer_grid_min(f, 1, 100_000, 64);
        assert_eq!(n, 10_000);
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).is_none());
    }
}
