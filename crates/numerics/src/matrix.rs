//! Dense row-major matrix type.

use crate::{NumericsError, Result};

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// All the systems in this workspace are small (fit Jacobians are `D × 4`,
/// LP tableaus a few thousand entries), so a simple contiguous `Vec<f64>`
/// with row-major indexing is both the fastest and the simplest layout: row
/// sweeps — the inner loops of Gaussian elimination and simplex pivoting —
/// are sequential in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NumericsError::DimensionMismatch {
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Create a matrix from nested row slices. Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` out into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Swap rows `a` and `b` in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        debug_assert!(a < self.rows && b < self.rows);
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `A·x`.
    ///
    /// Returns an error when `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(NumericsError::DimensionMismatch {
                expected: self.cols,
                got: x.len(),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::vector::dot(self.row(i), x))
            .collect())
    }

    /// Transposed matrix–vector product `Aᵀ·y`.
    pub fn matvec_t(&self, y: &[f64]) -> Result<Vec<f64>> {
        if y.len() != self.rows {
            return Err(NumericsError::DimensionMismatch {
                expected: self.rows,
                got: y.len(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &yi) in y.iter().enumerate().take(self.rows) {
            if yi == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(self.row(i)) {
                *o += yi * a;
            }
        }
        Ok(out)
    }

    /// Matrix–matrix product `A·B`.
    pub fn matmul(&self, b: &Matrix) -> Result<Matrix> {
        if self.cols != b.rows {
            return Err(NumericsError::DimensionMismatch {
                expected: self.cols,
                got: b.rows,
            });
        }
        // ikj loop order keeps the inner loop streaming over rows of B.
        let mut out = Matrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(k);
                let orow = out.row_mut(i);
                for (o, bv) in orow.iter_mut().zip(brow) {
                    *o += aik * bv;
                }
            }
        }
        Ok(out)
    }

    /// Gram matrix `AᵀA` (symmetric positive semidefinite).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Maximum absolute entry; zero for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Append a row at the bottom.
    ///
    /// Returns an error when `row.len() != self.cols()`.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.cols {
            return Err(NumericsError::DimensionMismatch {
                expected: self.cols,
                got: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Append a column on the right, one entry per row. Row-major storage
    /// makes this an O(rows·cols) reshuffle; the LP warm path appends one
    /// slack column per cut row, which amortizes fine against a pivot.
    ///
    /// Returns an error when `col.len() != self.rows()`.
    pub fn push_col(&mut self, col: &[f64]) -> Result<()> {
        if col.len() != self.rows {
            return Err(NumericsError::DimensionMismatch {
                expected: self.rows,
                got: col.len(),
            });
        }
        self.grow_cols(1);
        let cols = self.cols;
        for (i, &v) in col.iter().enumerate() {
            self.data[i * cols + cols - 1] = v;
        }
        Ok(())
    }

    /// Widen the matrix by `added` zero columns on the right, in place:
    /// one `resize` plus a backward row shift (`memmove`), so appending a
    /// batch of columns costs one reshuffle instead of one per column.
    pub fn grow_cols(&mut self, added: usize) {
        if added == 0 {
            return;
        }
        let (rows, old_cols) = (self.rows, self.cols);
        let new_cols = old_cols + added;
        self.data.resize(rows * new_cols, 0.0);
        // Back to front: row i's destination starts at i·new_cols, at or
        // past the end of row i−1's source, so no unmoved row is clobbered.
        for i in (0..rows).rev() {
            self.data
                .copy_within(i * old_cols..(i + 1) * old_cols, i * new_cols);
            self.data[i * new_cols + old_cols..(i + 1) * new_cols].fill(0.0);
        }
        self.cols = new_cols;
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let m = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(m.matvec(&x).unwrap(), x);
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Matrix::from_vec(2, 3, vec![0.0; 5]).is_err());
        assert!(Matrix::from_vec(2, 3, vec![0.0; 6]).is_ok());
    }

    #[test]
    fn grow_cols_preserves_entries_and_zero_fills() {
        let mut m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        m.grow_cols(3);
        assert_eq!((m.rows(), m.cols()), (3, 5));
        for (i, row) in [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]].iter().enumerate() {
            assert_eq!(m[(i, 0)], row[0]);
            assert_eq!(m[(i, 1)], row[1]);
            for j in 2..5 {
                assert_eq!(m[(i, j)], 0.0);
            }
        }
        // Growing by zero is a no-op.
        let before = m.clone();
        m.grow_cols(0);
        assert_eq!(m, before);
    }

    #[test]
    fn grow_cols_matches_repeated_push_col() {
        let mut grown = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut pushed = grown.clone();
        grown.grow_cols(2);
        pushed.push_col(&[0.0, 0.0]).unwrap();
        pushed.push_col(&[0.0, 0.0]).unwrap();
        assert_eq!(grown, pushed);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn gram_matches_explicit_ata() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn swap_rows_swaps() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        a.swap_rows(0, 2);
        assert_eq!(a.row(0), &[5.0, 6.0]);
        assert_eq!(a.row(2), &[1.0, 2.0]);
        a.swap_rows(1, 1); // no-op
        assert_eq!(a.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn push_row_and_push_col_grow_in_place() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.push_row(&[5.0, 6.0]).unwrap();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.row(2), &[5.0, 6.0]);
        a.push_col(&[7.0, 8.0, 9.0]).unwrap();
        assert_eq!(a.cols(), 3);
        assert_eq!(a.row(0), &[1.0, 2.0, 7.0]);
        assert_eq!(a.row(1), &[3.0, 4.0, 8.0]);
        assert_eq!(a.row(2), &[5.0, 6.0, 9.0]);
        assert!(a.push_row(&[0.0]).is_err());
        assert!(a.push_col(&[0.0]).is_err());
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let y = vec![1.0, -1.0];
        assert_eq!(a.matvec_t(&y).unwrap(), a.transpose().matvec(&y).unwrap());
    }
}
