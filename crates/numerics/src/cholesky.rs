//! Cholesky factorization for symmetric positive definite systems.

use crate::{Matrix, NumericsError, Result};

/// A Cholesky factorization `A = L·Lᵀ` of a symmetric positive definite
/// matrix. Only the lower triangle of the input is read.
///
/// This is the workhorse for the Levenberg–Marquardt normal equations
/// `(JᵀJ + λ·diag)·δ = Jᵀr`, which are SPD whenever λ > 0.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorize a symmetric positive definite matrix.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: n,
                got: a.cols(),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(NumericsError::NotPositiveDefinite { index: i });
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factorize `A + ridge·I`, growing `ridge` by factors of 10 until the
    /// shifted matrix is positive definite (up to `max_tries` shifts).
    ///
    /// Used as a safety net for nearly singular Gauss–Newton steps; the
    /// returned factorization corresponds to the *shifted* matrix.
    pub fn factor_with_ridge(a: &Matrix, mut ridge: f64, max_tries: usize) -> Result<Self> {
        if let Ok(c) = Cholesky::factor(a) {
            return Ok(c);
        }
        let n = a.rows();
        ridge = ridge.max(f64::EPSILON * a.max_abs().max(1.0));
        for _ in 0..max_tries {
            let mut shifted = a.clone();
            for i in 0..n {
                shifted[(i, i)] += ridge;
            }
            if let Ok(c) = Cholesky::factor(&shifted) {
                return Ok(c);
            }
            ridge *= 10.0;
        }
        Err(NumericsError::NotPositiveDefinite { index: 0 })
    }

    /// Solve `A·x = b` using the stored factor.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        // Forward: L·y = b.
        let mut x = b.to_vec();
        for i in 0..n {
            let row = self.l.row(i);
            let mut s = x[i];
            for j in 0..i {
                s -= row[j] * x[j];
            }
            x[i] = s / row[i];
        }
        // Backward: Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.l[(j, i)] * xj;
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_and_solves_spd() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let c = Cholesky::factor(&a).unwrap();
        let x = c.solve(&[8.0, 7.0]).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!((ax[0] - 8.0).abs() < 1e-12);
        assert!((ax[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn l_times_lt_reconstructs() {
        let a = Matrix::from_rows(&[&[9.0, 3.0, 0.0], &[3.0, 5.0, 1.0], &[0.0, 1.0, 7.0]]);
        let c = Cholesky::factor(&a).unwrap();
        let llt = c.l().matmul(&c.l().transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((llt[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(NumericsError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn ridge_rescues_semidefinite() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]); // rank 1
        assert!(Cholesky::factor(&a).is_err());
        let c = Cholesky::factor_with_ridge(&a, 1e-10, 30).unwrap();
        // The shifted solve must still be finite.
        let x = c.solve(&[1.0, 1.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }
}
