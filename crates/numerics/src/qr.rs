//! Householder QR factorization and least-squares solves.

use crate::{Matrix, NumericsError, Result};

/// A Householder QR factorization of an `m × n` matrix with `m ≥ n`.
///
/// `R` is stored in the upper triangle of `packed`; the essential parts of
/// the Householder vectors live below the diagonal, with their scaling
/// factors in `beta`.
///
/// Preferred over the normal equations when the Jacobian is ill-conditioned:
/// QR squares neither the condition number nor the data.
#[derive(Debug, Clone)]
pub struct Qr {
    packed: Matrix,
    beta: Vec<f64>,
}

impl Qr {
    /// Factorize `a` (requires `rows ≥ cols`).
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(NumericsError::DimensionMismatch {
                expected: n,
                got: m,
            });
        }
        let mut r = a.clone();
        let mut beta = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += r[(i, k)] * r[(i, k)];
            }
            norm = norm.sqrt();
            if norm == 0.0 {
                beta[k] = 0.0;
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = r[(k, k)] - alpha;
            // v = [v0, r[k+1..m, k]]; normalize so v[0] = 1.
            let mut vnorm2 = v0 * v0;
            for i in k + 1..m {
                vnorm2 += r[(i, k)] * r[(i, k)];
            }
            if vnorm2 == 0.0 {
                beta[k] = 0.0;
                continue;
            }
            beta[k] = 2.0 * v0 * v0 / vnorm2;
            // Store normalized v below the diagonal (v[0]=1 implied).
            for i in k + 1..m {
                r[(i, k)] /= v0;
            }
            r[(k, k)] = alpha;
            // Apply the reflector to the remaining columns.
            for j in k + 1..n {
                let mut s = r[(k, j)];
                for i in k + 1..m {
                    s += r[(i, k)] * r[(i, j)];
                }
                s *= beta[k];
                r[(k, j)] -= s;
                for i in k + 1..m {
                    let vik = r[(i, k)];
                    r[(i, j)] -= s * vik;
                }
            }
        }
        Ok(Qr { packed: r, beta })
    }

    /// Apply `Qᵀ` to a vector of length `rows`.
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = (self.packed.rows(), self.packed.cols());
        for k in 0..n {
            if self.beta[k] == 0.0 {
                continue;
            }
            let mut s = b[k];
            for (i, &bi) in b.iter().enumerate().take(m).skip(k + 1) {
                s += self.packed[(i, k)] * bi;
            }
            s *= self.beta[k];
            b[k] -= s;
            for (i, bi) in b.iter_mut().enumerate().take(m).skip(k + 1) {
                *bi -= s * self.packed[(i, k)];
            }
        }
    }

    /// Least-squares solve: `x = argmin ‖A·x − b‖₂`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = (self.packed.rows(), self.packed.cols());
        if b.len() != m {
            return Err(NumericsError::DimensionMismatch {
                expected: m,
                got: b.len(),
            });
        }
        let mut qtb = b.to_vec();
        self.apply_qt(&mut qtb);
        // Back-substitute R·x = (Qᵀb)[0..n].
        let mut x = vec![0.0; n];
        let scale = self.packed.max_abs().max(1.0);
        for i in (0..n).rev() {
            let mut s = qtb[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.packed[(i, j)] * xj;
            }
            let rii = self.packed[(i, i)];
            if rii.abs() <= 1e-13 * scale {
                return Err(NumericsError::Singular { pivot: i });
            }
            x[i] = s / rii;
        }
        Ok(x)
    }
}

/// One-shot least-squares solve.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::factor(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_solve_matches_lu() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = [5.0, 10.0];
        let x_qr = least_squares(&a, &b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        assert!((x_qr[0] - x_lu[0]).abs() < 1e-10);
        assert!((x_qr[1] - x_lu[1]).abs() < 1e-10);
    }

    #[test]
    fn overdetermined_line_fit() {
        // Fit y = 2x + 1 through exact points: residual must vanish.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let mut a = Matrix::zeros(4, 2);
        let mut b = vec![0.0; 4];
        for (i, &x) in xs.iter().enumerate() {
            a[(i, 0)] = x;
            a[(i, 1)] = 1.0;
            b[i] = 2.0 * x + 1.0;
        }
        let p = least_squares(&a, &b).unwrap();
        assert!((p[0] - 2.0).abs() < 1e-10);
        assert!((p[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_residual_is_orthogonal() {
        // For the LS solution, Aᵀ(Ax − b) = 0.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0], &[0.5, 4.0], &[2.0, 2.0]]);
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = least_squares(&a, &b).unwrap();
        let r = crate::vector::sub(&a.matvec(&x).unwrap(), &b);
        let atr = a.matvec_t(&r).unwrap();
        assert!(crate::vector::norm_inf(&atr) < 1e-10);
    }

    #[test]
    fn rejects_underdetermined() {
        let a = Matrix::zeros(2, 3);
        assert!(Qr::factor(&a).is_err());
    }

    #[test]
    fn detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 2.0, 3.0]).is_err());
    }
}
