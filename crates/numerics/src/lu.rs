//! LU factorization with partial pivoting.

use crate::{Matrix, NumericsError, Result};

/// An LU factorization `P·A = L·U` of a square matrix, with partial
/// (row) pivoting.
///
/// The factors are stored packed in a single matrix: the strictly lower
/// triangle holds `L` (unit diagonal implied) and the upper triangle holds
/// `U`. `perm[i]` records which original row landed in position `i`.
#[derive(Debug, Clone)]
pub struct Lu {
    packed: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

/// Relative pivot threshold below which the matrix is declared singular.
const PIVOT_TOL: f64 = 1e-13;

impl Lu {
    /// Factorize a square matrix.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: n,
                got: a.cols(),
            });
        }
        let scale = a.max_abs().max(1.0);
        let mut m = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: bring the largest |entry| in column k up.
            let mut p = k;
            let mut best = m[(k, k)].abs();
            for i in k + 1..n {
                let v = m[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= PIVOT_TOL * scale {
                return Err(NumericsError::Singular { pivot: k });
            }
            if p != k {
                m.swap_rows(p, k);
                perm.swap(p, k);
                sign = -sign;
            }
            let pivot = m[(k, k)];
            for i in k + 1..n {
                let factor = m[(i, k)] / pivot;
                m[(i, k)] = factor;
                if factor == 0.0 {
                    continue;
                }
                // Row update: m[i, k+1..] -= factor * m[k, k+1..].
                // Split borrows: row k is strictly above row i.
                let (upper, lower) = m.as_mut_slice().split_at_mut(i * n);
                let row_k = &upper[k * n..(k + 1) * n];
                let row_i = &mut lower[..n];
                for j in k + 1..n {
                    row_i[j] -= factor * row_k[j];
                }
            }
        }
        Ok(Lu {
            packed: m,
            perm,
            sign,
        })
    }

    /// Solve `A·x = b` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.packed.rows();
        if b.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        // Apply permutation, then forward substitution (unit lower).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let row = self.packed.row(i);
            let mut s = x[i];
            for j in 0..i {
                s -= row[j] * x[j];
            }
            x[i] = s;
        }
        // Backward substitution (upper).
        for i in (0..n).rev() {
            let row = self.packed.row(i);
            let mut s = x[i];
            for j in i + 1..n {
                s -= row[j] * x[j];
            }
            x[i] = s / row[i];
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.packed.rows();
        (0..n).fold(self.sign, |d, i| d * self.packed[(i, i)])
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }
}

/// One-shot solve of `A·x = b`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x).unwrap();
        crate::vector::norm_inf(&crate::vector::sub(&ax, b))
    }

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn needs_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            Lu::factor(&a),
            Err(NumericsError::Singular { .. })
        ));
    }

    #[test]
    fn determinant_matches_2x2_formula() {
        let a = Matrix::from_rows(&[&[3.0, 7.0], &[1.0, -4.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - (3.0 * -4.0 - 7.0 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(Lu::factor(&a).is_err());
    }

    #[test]
    fn random_systems_have_small_residual() {
        // Deterministic pseudo-random matrix via a simple LCG so the test
        // needs no external RNG.
        let mut state = 42_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for n in [1usize, 2, 3, 5, 8, 13] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = next();
                }
                a[(i, i)] += 2.0; // diagonally dominant → well conditioned
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = solve(&a, &b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-9, "n={n}");
        }
    }
}
