//! Property-based tests: simplex optimality cross-checked against random
//! feasible points and against an independent grid enumeration.

use hslb_lp::{solve, ConstraintSense, LpProblem, LpStatus, SimplexOptions};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Build a random *feasible* box-constrained LP: bounds [0, ub_j], rows of
/// the form Σ a_ij x_j ≤ rhs_i with a_ij ≥ 0 and rhs_i ≥ 0 — the origin is
/// always feasible, so status must be Optimal.
fn random_feasible_lp(seed: u64, nvars: usize, nrows: usize) -> LpProblem {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut p = LpProblem::new();
    for j in 0..nvars {
        let ub = rng.gen_range(0.5..10.0);
        p.add_var(&format!("x{j}"), 0.0, ub);
    }
    for _ in 0..nrows {
        let terms: Vec<(usize, f64)> = (0..nvars).map(|j| (j, rng.gen_range(0.0..2.0))).collect();
        let rhs = rng.gen_range(0.5..8.0);
        p.add_row(&terms, ConstraintSense::Le, rhs);
    }
    let obj: Vec<(usize, f64)> = (0..nvars).map(|j| (j, rng.gen_range(-3.0..3.0))).collect();
    p.set_objective(&obj);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The simplex optimum must dominate every random feasible point.
    #[test]
    fn optimum_dominates_random_feasible_points(seed in 0u64..10_000, nvars in 1usize..6, nrows in 0usize..5) {
        let p = random_feasible_lp(seed, nvars, nrows);
        let s = solve(&p, &SimplexOptions::default()).unwrap();
        prop_assert_eq!(s.status, LpStatus::Optimal);
        prop_assert!(p.max_violation(&s.x) < 1e-6);

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let mut tried = 0;
        while tried < 200 {
            // Sample within bounds, keep only row-feasible points.
            let x: Vec<f64> = (0..nvars)
                .map(|j| {
                    let (lo, hi) = p.bounds(j);
                    rng.gen_range(lo..=hi)
                })
                .collect();
            if p.max_violation(&x) <= 1e-9 {
                prop_assert!(
                    s.objective <= p.objective_value(&x) + 1e-7,
                    "simplex {} beaten by random point {}",
                    s.objective,
                    p.objective_value(&x)
                );
            }
            tried += 1;
        }
    }

    /// On 2-variable problems, compare against dense grid enumeration.
    #[test]
    fn matches_grid_enumeration_2d(seed in 0u64..3_000) {
        let p = random_feasible_lp(seed, 2, 3);
        let s = solve(&p, &SimplexOptions::default()).unwrap();
        prop_assert_eq!(s.status, LpStatus::Optimal);

        let (l0, u0) = p.bounds(0);
        let (l1, u1) = p.bounds(1);
        let mut best = f64::INFINITY;
        let steps = 120;
        for i in 0..=steps {
            for j in 0..=steps {
                let x = vec![
                    l0 + (u0 - l0) * i as f64 / steps as f64,
                    l1 + (u1 - l1) * j as f64 / steps as f64,
                ];
                if p.max_violation(&x) <= 1e-9 {
                    best = best.min(p.objective_value(&x));
                }
            }
        }
        // Grid best can only be ≥ the true optimum (coarse sampling).
        prop_assert!(
            s.objective <= best + 1e-7,
            "simplex {} worse than grid {}",
            s.objective,
            best
        );
        // And the grid should come close to the optimum.
        prop_assert!(
            best - s.objective <= 0.35 * (1.0 + s.objective.abs()),
            "grid {} too far above simplex {}",
            best,
            s.objective
        );
    }

    /// Equality-constrained problems: Σx = rhs with rhs inside the box sum
    /// is feasible; solution must satisfy the equality exactly.
    #[test]
    fn equalities_hold_at_optimum(seed in 0u64..3_000, nvars in 2usize..5) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut p = LpProblem::new();
        for j in 0..nvars {
            p.add_var(&format!("x{j}"), 0.0, 2.0);
        }
        let rhs = rng.gen_range(0.1..(2.0 * nvars as f64 - 0.1));
        let terms: Vec<(usize, f64)> = (0..nvars).map(|j| (j, 1.0)).collect();
        p.add_row(&terms, ConstraintSense::Eq, rhs);
        let obj: Vec<(usize, f64)> = (0..nvars).map(|j| (j, rng.gen_range(-1.0..1.0))).collect();
        p.set_objective(&obj);
        let s = solve(&p, &SimplexOptions::default()).unwrap();
        prop_assert_eq!(s.status, LpStatus::Optimal);
        let total: f64 = s.x.iter().sum();
        prop_assert!((total - rhs).abs() < 1e-7);
    }
}
