//! Functional tests for the bounded-variable simplex.

use hslb_lp::{solve, ConstraintSense, LpProblem, LpStatus, SimplexOptions};

fn opt(p: &LpProblem) -> hslb_lp::LpSolution {
    let s = solve(p, &SimplexOptions::default()).unwrap();
    assert_eq!(s.status, LpStatus::Optimal, "expected optimal");
    assert!(
        p.max_violation(&s.x) < 1e-6,
        "claimed optimal point violates constraints by {}",
        p.max_violation(&s.x)
    );
    s
}

#[test]
fn textbook_2d() {
    // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 (Dantzig's example).
    // Optimum (2, 6) with value 36.
    let mut p = LpProblem::new();
    let x = p.add_var("x", 0.0, f64::INFINITY);
    let y = p.add_var("y", 0.0, f64::INFINITY);
    p.add_row(&[(x, 1.0)], ConstraintSense::Le, 4.0);
    p.add_row(&[(y, 2.0)], ConstraintSense::Le, 12.0);
    p.add_row(&[(x, 3.0), (y, 2.0)], ConstraintSense::Le, 18.0);
    p.set_objective(&[(x, -3.0), (y, -5.0)]);
    let s = opt(&p);
    assert!((s.objective + 36.0).abs() < 1e-8);
    assert!((s.x[0] - 2.0).abs() < 1e-8);
    assert!((s.x[1] - 6.0).abs() < 1e-8);
}

#[test]
fn equality_constraints() {
    // min x + 2y s.t. x + y = 10, x − y = 2 → x=6, y=4, obj=14.
    let mut p = LpProblem::new();
    let x = p.add_var("x", 0.0, f64::INFINITY);
    let y = p.add_var("y", 0.0, f64::INFINITY);
    p.add_row(&[(x, 1.0), (y, 1.0)], ConstraintSense::Eq, 10.0);
    p.add_row(&[(x, 1.0), (y, -1.0)], ConstraintSense::Eq, 2.0);
    p.set_objective(&[(x, 1.0), (y, 2.0)]);
    let s = opt(&p);
    assert!((s.objective - 14.0).abs() < 1e-8);
}

#[test]
fn ge_constraints_need_phase1() {
    // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2, y ≥ 3 → (7, 3), obj = 23.
    let mut p = LpProblem::new();
    let x = p.add_var("x", 2.0, f64::INFINITY);
    let y = p.add_var("y", 3.0, f64::INFINITY);
    p.add_row(&[(x, 1.0), (y, 1.0)], ConstraintSense::Ge, 10.0);
    p.set_objective(&[(x, 2.0), (y, 3.0)]);
    let s = opt(&p);
    assert!((s.objective - 23.0).abs() < 1e-8);
    assert!((s.x[0] - 7.0).abs() < 1e-8);
}

#[test]
fn detects_infeasible() {
    let mut p = LpProblem::new();
    let x = p.add_var("x", 0.0, 1.0);
    p.add_row(&[(x, 1.0)], ConstraintSense::Ge, 2.0);
    let s = solve(&p, &SimplexOptions::default()).unwrap();
    assert_eq!(s.status, LpStatus::Infeasible);
}

#[test]
fn detects_infeasible_conflicting_rows() {
    let mut p = LpProblem::new();
    let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
    p.add_row(&[(x, 1.0)], ConstraintSense::Ge, 5.0);
    p.add_row(&[(x, 1.0)], ConstraintSense::Le, 4.0);
    let s = solve(&p, &SimplexOptions::default()).unwrap();
    assert_eq!(s.status, LpStatus::Infeasible);
}

#[test]
fn detects_unbounded() {
    // min -x with x ≥ 0 free above.
    let mut p = LpProblem::new();
    let x = p.add_var("x", 0.0, f64::INFINITY);
    let y = p.add_var("y", 0.0, f64::INFINITY);
    p.add_row(&[(x, 1.0), (y, -1.0)], ConstraintSense::Le, 1.0);
    p.set_objective(&[(x, -1.0)]);
    let s = solve(&p, &SimplexOptions::default()).unwrap();
    assert_eq!(s.status, LpStatus::Unbounded);
}

#[test]
fn free_variables() {
    // min |style| problem: min x s.t. x ≥ y − 3, x ≥ −y + 1, y free.
    // Optimal x = −1 at y = 2.
    let mut p = LpProblem::new();
    let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
    let y = p.add_var("y", f64::NEG_INFINITY, f64::INFINITY);
    p.add_row(&[(x, 1.0), (y, -1.0)], ConstraintSense::Ge, -3.0);
    p.add_row(&[(x, 1.0), (y, 1.0)], ConstraintSense::Ge, 1.0);
    p.set_objective(&[(x, 1.0)]);
    let s = opt(&p);
    assert!((s.objective + 1.0).abs() < 1e-8);
}

#[test]
fn upper_bounds_without_rows() {
    // min −x − 2y with 0 ≤ x ≤ 3, 0 ≤ y ≤ 4, no rows: all at upper bounds.
    let mut p = LpProblem::new();
    let x = p.add_var("x", 0.0, 3.0);
    let y = p.add_var("y", 0.0, 4.0);
    p.set_objective(&[(x, -1.0), (y, -2.0)]);
    let s = opt(&p);
    assert!((s.objective + 11.0).abs() < 1e-9);
    assert!((s.x[0] - 3.0).abs() < 1e-9);
    assert!((s.x[1] - 4.0).abs() < 1e-9);
}

#[test]
fn bound_flip_path() {
    // Entering variable hits its own opposite bound before any basic
    // variable blocks: forces the bound-flip branch.
    // min −x s.t. x + y ≤ 100, 0 ≤ x ≤ 1, 0 ≤ y ≤ 1.
    let mut p = LpProblem::new();
    let x = p.add_var("x", 0.0, 1.0);
    let y = p.add_var("y", 0.0, 1.0);
    p.add_row(&[(x, 1.0), (y, 1.0)], ConstraintSense::Le, 100.0);
    p.set_objective(&[(x, -1.0)]);
    let s = opt(&p);
    assert!((s.x[0] - 1.0).abs() < 1e-9);
}

#[test]
fn negative_rhs_rows() {
    // min x s.t. −x ≤ −5  (i.e. x ≥ 5).
    let mut p = LpProblem::new();
    let x = p.add_var("x", 0.0, f64::INFINITY);
    p.add_row(&[(x, -1.0)], ConstraintSense::Le, -5.0);
    p.set_objective(&[(x, 1.0)]);
    let s = opt(&p);
    assert!((s.objective - 5.0).abs() < 1e-8);
}

#[test]
fn degenerate_problem_terminates() {
    // Classic degenerate LP (many ties in the ratio test).
    let mut p = LpProblem::new();
    // Beale's cycling example: min −0.75a + 150b − 0.02c + 6d.
    let a = p.add_var("a", 0.0, f64::INFINITY);
    let b = p.add_var("b", 0.0, f64::INFINITY);
    let c = p.add_var("c", 0.0, f64::INFINITY);
    let d = p.add_var("d", 0.0, f64::INFINITY);
    p.add_row(
        &[(a, 0.25), (b, -60.0), (c, -0.04), (d, 9.0)],
        ConstraintSense::Le,
        0.0,
    );
    p.add_row(
        &[(a, 0.5), (b, -90.0), (c, -0.02), (d, 3.0)],
        ConstraintSense::Le,
        0.0,
    );
    p.add_row(&[(c, 1.0)], ConstraintSense::Le, 1.0);
    p.set_objective(&[(a, -0.75), (b, 150.0), (c, -0.02), (d, 6.0)]);
    let s = solve(&p, &SimplexOptions::default()).unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    assert!(p.max_violation(&s.x) < 1e-7);
    // Known optimum: z = −0.05 at a = 0.04, c = 1.
    assert!(
        (s.objective + 0.05).abs() < 1e-8,
        "objective {}",
        s.objective
    );
}

#[test]
fn many_columns_sos_like() {
    // The shape that matters for the MINLP: hundreds of binaries with a
    // convexity row Σ z = 1 and a linking row Σ k·z_k = n.
    let mut p = LpProblem::new();
    let m = 500usize;
    let zs: Vec<_> = (0..m)
        .map(|k| p.add_var(&format!("z{k}"), 0.0, 1.0))
        .collect();
    let n = p.add_var("n", 1.0, 1000.0);
    let conv: Vec<_> = zs.iter().map(|&z| (z, 1.0)).collect();
    p.add_row(&conv, ConstraintSense::Eq, 1.0);
    let mut link: Vec<_> = zs
        .iter()
        .enumerate()
        .map(|(k, &z)| (z, (k + 1) as f64 * 2.0))
        .collect();
    link.push((n, -1.0));
    p.add_row(&link, ConstraintSense::Eq, 0.0);
    // Maximize n: should select the largest allowed value 2m = 1000.
    p.set_objective(&[(n, -1.0)]);
    let s = opt(&p);
    assert!((s.x[n] - 1000.0).abs() < 1e-6);
}

#[test]
fn fixed_variables_are_respected() {
    let mut p = LpProblem::new();
    let x = p.add_var("x", 2.0, 2.0);
    let y = p.add_var("y", 0.0, 10.0);
    p.add_row(&[(x, 1.0), (y, 1.0)], ConstraintSense::Le, 5.0);
    p.set_objective(&[(y, -1.0)]);
    let s = opt(&p);
    assert!((s.x[0] - 2.0).abs() < 1e-9);
    assert!((s.x[1] - 3.0).abs() < 1e-8);
}

#[test]
fn redundant_equality_rows() {
    // Duplicate equality rows leave a basic artificial in a redundant row;
    // the solve must still succeed.
    let mut p = LpProblem::new();
    let x = p.add_var("x", 0.0, 10.0);
    let y = p.add_var("y", 0.0, 10.0);
    p.add_row(&[(x, 1.0), (y, 1.0)], ConstraintSense::Eq, 6.0);
    p.add_row(&[(x, 2.0), (y, 2.0)], ConstraintSense::Eq, 12.0);
    p.set_objective(&[(x, 1.0)]);
    let s = opt(&p);
    assert!(s.objective.abs() < 1e-8); // x = 0, y = 6
}

#[test]
fn tightened_bounds_change_optimum() {
    // Branch-and-bound usage pattern: clone + tighten.
    let mut p = LpProblem::new();
    let x = p.add_var("x", 0.0, 10.0);
    p.set_objective(&[(x, -1.0)]);
    let s1 = opt(&p);
    assert!((s1.x[0] - 10.0).abs() < 1e-9);
    let mut p2 = p.clone();
    p2.set_bounds(x, 0.0, 3.5);
    let s2 = opt(&p2);
    assert!((s2.x[0] - 3.5).abs() < 1e-9);
}

#[test]
fn bland_unlatches_after_improvement() {
    // Regression: a stall used to latch Bland's rule for the rest of the
    // phase — strict improvement reset `stall` but never `bland`, so one
    // early degenerate plateau condemned every later pivot to smallest-
    // index pricing. This instance stalls at a degenerate origin vertex
    // (a chain of `x_j − x_{j+1} ≤ 0` rows, all binding at 0), then needs
    // a long improving tail over columns whose Dantzig order differs from
    // their index order. With the unlatch, the tail runs under Dantzig
    // pricing and finishes in 52 iterations; with the latch it crawled to
    // 89 on this instance. The bound below sits between the two.
    let n = 48;
    let mut p = LpProblem::new();
    let vars: Vec<_> = (0..n)
        .map(|j| p.add_var(&format!("x{j}"), 0.0, 1.0))
        .collect();
    for j in 0..n - 1 {
        p.add_row(
            &[(vars[j], 1.0), (vars[j + 1], -1.0)],
            ConstraintSense::Le,
            0.0,
        );
    }
    let all: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
    p.add_row(&all, ConstraintSense::Le, n as f64 / 2.0);
    // Dantzig order ≠ index order: coefficients cycle through magnitudes.
    let obj: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(j, &v)| (v, -((j % 7 + 1) as f64)))
        .collect();
    p.set_objective(&obj);

    let opts = SimplexOptions {
        stall_iters: 2, // latch quickly so the plateau trips Bland's rule
        ..SimplexOptions::default()
    };
    let s = solve(&p, &opts).unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    assert!(p.max_violation(&s.x) < 1e-7);
    assert!(
        s.iterations <= 70,
        "post-stall solve did not return to Dantzig pricing: {} iterations",
        s.iterations
    );
}
