//! Dual-value (shadow price) tests for the simplex.

use hslb_lp::{solve, ConstraintSense, LpProblem, LpStatus, SimplexOptions};

/// Solve and return (objective, duals).
fn solve_ok(p: &LpProblem) -> (f64, Vec<f64>) {
    let s = solve(p, &SimplexOptions::default()).unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    (s.objective, s.row_duals)
}

#[test]
fn duals_match_textbook_example() {
    // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 (min form: negate).
    // Known duals of the max problem: (0, 3/2, 1); min-form duals negate.
    let mut p = LpProblem::new();
    let x = p.add_var("x", 0.0, f64::INFINITY);
    let y = p.add_var("y", 0.0, f64::INFINITY);
    p.add_row(&[(x, 1.0)], ConstraintSense::Le, 4.0);
    p.add_row(&[(y, 2.0)], ConstraintSense::Le, 12.0);
    p.add_row(&[(x, 3.0), (y, 2.0)], ConstraintSense::Le, 18.0);
    p.set_objective(&[(x, -3.0), (y, -5.0)]);
    let (_, duals) = solve_ok(&p);
    assert!(duals[0].abs() < 1e-9, "slack row must have zero dual");
    assert!((duals[1] + 1.5).abs() < 1e-9, "dual[1] = {}", duals[1]);
    assert!((duals[2] + 1.0).abs() < 1e-9, "dual[2] = {}", duals[2]);
}

#[test]
fn duals_predict_rhs_perturbation() {
    // y_i ≈ dZ/d(rhs_i): perturb each rhs and compare against the dual.
    let mut p = LpProblem::new();
    let x = p.add_var("x", 0.0, f64::INFINITY);
    let y = p.add_var("y", 0.0, f64::INFINITY);
    p.add_row(&[(x, 1.0), (y, 2.0)], ConstraintSense::Le, 14.0);
    p.add_row(&[(x, 3.0), (y, -1.0)], ConstraintSense::Le, 0.0);
    p.add_row(&[(x, 1.0), (y, -1.0)], ConstraintSense::Ge, -2.0);
    p.set_objective(&[(x, -3.0), (y, -4.0)]);
    let (z0, duals) = solve_ok(&p);
    let eps = 1e-5;
    for (r, &dual) in duals.iter().enumerate().take(3) {
        let mut pp = p.clone();
        pp.set_rhs(r, pp.rhs(r) + eps);
        let (z1, _) = solve_ok(&pp);
        let fd = (z1 - z0) / eps;
        assert!(
            (fd - dual).abs() < 1e-4,
            "row {r}: dual {dual} vs finite-diff {fd}"
        );
    }
}

#[test]
fn equality_row_duals_via_perturbation() {
    let mut p = LpProblem::new();
    let x = p.add_var("x", 0.0, f64::INFINITY);
    let y = p.add_var("y", 0.0, f64::INFINITY);
    p.add_row(&[(x, 1.0), (y, 1.0)], ConstraintSense::Eq, 10.0);
    p.set_objective(&[(x, 1.0), (y, 2.0)]);
    let (z0, duals) = solve_ok(&p); // optimum: all x, z = 10, dual = 1
    assert!((z0 - 10.0).abs() < 1e-9);
    assert!((duals[0] - 1.0).abs() < 1e-9, "dual = {}", duals[0]);
}

#[test]
fn strong_duality_with_bounded_vars() {
    // With finite variable bounds, L(x) = cᵀx − yᵀ(Ax − b) is still
    // minimized at the optimum over the box; check cᵀx* = yᵀb + Σ bound
    // contributions via the Lagrangian identity on a concrete instance.
    let mut p = LpProblem::new();
    let x = p.add_var("x", 0.0, 2.0);
    let y = p.add_var("y", 0.0, 2.0);
    p.add_row(&[(x, 1.0), (y, 1.0)], ConstraintSense::Le, 3.0);
    p.set_objective(&[(x, -2.0), (y, -1.0)]);
    let s = solve(&p, &SimplexOptions::default()).unwrap();
    // Optimum: x = 2 (at its bound), y = 1 (row binding), z = −5.
    assert!((s.objective + 5.0).abs() < 1e-9);
    // Reduced cost view: dual of the row is −1 (from y's column, basic);
    // x's bound carries the remaining −1 of its coefficient.
    assert!((s.row_duals[0] + 1.0).abs() < 1e-9, "{:?}", s.row_duals);
}
