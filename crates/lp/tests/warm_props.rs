//! Property-based warm/cold equivalence: a warm dual-simplex resolve after
//! cut-row appends or bound tightenings must agree with a cold two-phase
//! solve of the freshly rebuilt problem — same status, objectives equal
//! within the exact-tie tolerance, and the warm point feasible for the
//! rebuilt problem. (Vertices may differ when the optimal face is not a
//! point, so x is compared through feasibility + objective, not bitwise.)

use hslb_lp::{
    solve, solve_from_basis, solve_keep, ConstraintSense, LpProblem, LpStatus, SimplexOptions,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

const TIE_TOL: f64 = 1e-7;

/// Random feasible box LP (origin feasible): bounds [0, ub], `≤` rows with
/// nonnegative coefficients and positive rhs.
fn random_feasible_lp(seed: u64, nvars: usize, nrows: usize) -> LpProblem {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut p = LpProblem::new();
    for j in 0..nvars {
        let ub = rng.gen_range(0.5..10.0);
        p.add_var(&format!("x{j}"), 0.0, ub);
    }
    for _ in 0..nrows {
        let terms: Vec<(usize, f64)> = (0..nvars).map(|j| (j, rng.gen_range(0.0..2.0))).collect();
        let rhs = rng.gen_range(0.5..8.0);
        p.add_row(&terms, ConstraintSense::Le, rhs);
    }
    let obj: Vec<(usize, f64)> = (0..nvars).map(|j| (j, rng.gen_range(-3.0..3.0))).collect();
    p.set_objective(&obj);
    p
}

/// Assert warm and cold answers agree (status; objective within the tie
/// tolerance; warm point feasible for the cold problem when optimal).
fn assert_agree(
    p: &LpProblem,
    warm: &hslb_lp::LpSolution,
    cold: &hslb_lp::LpSolution,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(warm.status, cold.status, "status diverged");
    if cold.status == LpStatus::Optimal {
        prop_assert!(
            (warm.objective - cold.objective).abs() <= TIE_TOL * (1.0 + cold.objective.abs()),
            "objectives diverged: warm {} cold {}",
            warm.objective,
            cold.objective
        );
        prop_assert!(
            p.max_violation(&warm.x) < 1e-6,
            "warm point infeasible for the rebuilt problem"
        );
        prop_assert!(
            (p.objective_value(&warm.x) - warm.objective).abs() <= 1e-6,
            "warm objective inconsistent with its own point"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kelley pattern: append random `≤` cut rows one at a time; every
    /// warm resolve must match the cold solve of the same row set. Cuts
    /// may have negative coefficients, so infeasibility must agree too.
    #[test]
    fn warm_cut_appends_match_cold(
        seed in 0u64..5_000,
        nvars in 2usize..7,
        nrows in 1usize..4,
        ncuts in 1usize..5,
    ) {
        let mut p = random_feasible_lp(seed, nvars, nrows);
        let opts = SimplexOptions::default();
        let (first, warm) = solve_keep(&p, &opts).unwrap();
        prop_assert_eq!(first.status, LpStatus::Optimal);
        let Some(mut warm) = warm else {
            // Redundant rows can park an artificial in the basis; the
            // warm handle is legitimately unavailable then.
            return Ok(());
        };

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x00c0_ffee);
        for _ in 0..ncuts {
            let terms: Vec<(usize, f64)> =
                (0..nvars).map(|j| (j, rng.gen_range(-1.5..2.0))).collect();
            let rhs = rng.gen_range(-1.0..6.0);
            warm.append_le_row(&terms, rhs).unwrap();
            p.add_row(&terms, ConstraintSense::Le, rhs);

            let warm_sol = warm.resolve(&opts).unwrap();
            let cold_sol = solve(&p, &opts).unwrap();
            assert_agree(&p, &warm_sol, &cold_sol)?;
            if cold_sol.status != LpStatus::Optimal {
                break; // once infeasible, stays infeasible
            }
        }
    }

    /// B&B pattern: tighten one variable's bounds at a time (raise lb or
    /// lower ub); every warm resolve must match the cold rebuild.
    #[test]
    fn warm_bound_tightenings_match_cold(
        seed in 0u64..5_000,
        nvars in 2usize..7,
        nrows in 1usize..4,
        nsteps in 1usize..6,
    ) {
        let mut p = random_feasible_lp(seed, nvars, nrows);
        let opts = SimplexOptions::default();
        let (_, warm) = solve_keep(&p, &opts).unwrap();
        let Some(mut warm) = warm else { return Ok(()) };

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xb0a2_51de);
        for _ in 0..nsteps {
            let j = rng.gen_range(0..nvars);
            let (lo, hi) = p.bounds(j);
            let cut = rng.gen_range(0.0..1.0);
            let (nlo, nhi) = if rng.gen_bool(0.5) {
                (lo + cut * (hi - lo), hi) // raise lb (floor of a branch)
            } else {
                (lo, hi - cut * (hi - lo)) // lower ub (ceil of a branch)
            };
            p.set_bounds(j, nlo, nhi);
            warm.set_var_bounds(j, nlo, nhi);

            let warm_sol = warm.resolve(&opts).unwrap();
            let cold_sol = solve(&p, &opts).unwrap();
            assert_agree(&p, &warm_sol, &cold_sol)?;
        }
    }

    /// Mixed sequence (cuts and tightenings interleaved), with a basis
    /// snapshot re-install cross-check at the end: `solve_from_basis` on
    /// the final problem must agree with both the warm handle and cold.
    #[test]
    fn warm_mixed_edits_and_snapshot_match_cold(
        seed in 0u64..5_000,
        nvars in 2usize..6,
        nsteps in 2usize..6,
    ) {
        let mut p = random_feasible_lp(seed, nvars, 2);
        let opts = SimplexOptions::default();
        let (_, warm) = solve_keep(&p, &opts).unwrap();
        let Some(mut warm) = warm else { return Ok(()) };

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed_cafe);
        let mut last: Option<(hslb_lp::LpSolution, hslb_lp::LpSolution)> = None;
        for _ in 0..nsteps {
            if rng.gen_bool(0.5) {
                let terms: Vec<(usize, f64)> =
                    (0..nvars).map(|j| (j, rng.gen_range(0.0..2.0))).collect();
                let rhs = rng.gen_range(0.5..6.0);
                warm.append_le_row(&terms, rhs).unwrap();
                p.add_row(&terms, ConstraintSense::Le, rhs);
            } else {
                let j = rng.gen_range(0..nvars);
                let (lo, hi) = p.bounds(j);
                let nhi = lo + rng.gen_range(0.3..1.0) * (hi - lo);
                p.set_bounds(j, lo, nhi);
                warm.set_var_bounds(j, lo, nhi);
            }
            let warm_sol = warm.resolve(&opts).unwrap();
            let cold_sol = solve(&p, &opts).unwrap();
            assert_agree(&p, &warm_sol, &cold_sol)?;
            last = Some((warm_sol, cold_sol));
        }

        // Snapshot round-trip: the exported basis re-installed against the
        // cold problem must land on the same objective.
        if let Some((_, cold_sol)) = last {
            if cold_sol.status == LpStatus::Optimal {
                let snap = warm.basis();
                prop_assert!(snap.is_consistent());
                match solve_from_basis(&p, &snap, &opts) {
                    // A tiny refactorization pivot can make a recorded
                    // basis numerically singular; that is the fallback
                    // ladder's cold rung, not a correctness failure.
                    Err(_) => {}
                    Ok(re) => assert_agree(&p, &re, &cold_sol)?,
                }
            }
        }
    }
}
