//! LP problem container: variables with bounds, sparse rows, objective.

/// Index of a variable in an [`LpProblem`].
pub type VarId = usize;
/// Index of a constraint row in an [`LpProblem`].
pub type RowId = usize;

/// Sense of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintSense {
    /// `Σ aᵢxᵢ ≤ rhs`
    Le,
    /// `Σ aᵢxᵢ ≥ rhs`
    Ge,
    /// `Σ aᵢxᵢ = rhs`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Row {
    /// Sparse coefficients `(variable, coefficient)`; variables may repeat,
    /// in which case coefficients add.
    pub terms: Vec<(VarId, f64)>,
    pub sense: ConstraintSense,
    pub rhs: f64,
}

/// A linear program `minimize cᵀx subject to rows, l ≤ x ≤ u`.
///
/// Maximization is expressed by negating the objective at the call site.
/// Bounds may be infinite (`f64::NEG_INFINITY` / `f64::INFINITY`).
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) rows: Vec<Row>,
    /// Dense objective, indexed by variable; grows with the variables.
    pub(crate) objective: Vec<f64>,
}

impl LpProblem {
    /// Create an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a variable with bounds `[lb, ub]`, returning its id.
    ///
    /// Panics if `lb > ub` or either bound is NaN.
    pub fn add_var(&mut self, name: &str, lb: f64, ub: f64) -> VarId {
        assert!(
            !lb.is_nan() && !ub.is_nan(),
            "NaN bound for variable {name}"
        );
        assert!(lb <= ub, "inverted bounds [{lb}, {ub}] for variable {name}");
        self.vars.push(VarDef {
            name: name.to_string(),
            lb,
            ub,
        });
        self.objective.push(0.0);
        self.vars.len() - 1
    }

    /// Add a constraint row; returns its id. Coefficients for repeated
    /// variables are summed. Panics on out-of-range variable ids or a NaN
    /// coefficient / rhs.
    pub fn add_row(&mut self, terms: &[(VarId, f64)], sense: ConstraintSense, rhs: f64) -> RowId {
        assert!(!rhs.is_nan(), "NaN rhs");
        for &(v, c) in terms {
            assert!(v < self.vars.len(), "row references unknown variable {v}");
            assert!(!c.is_nan(), "NaN coefficient on variable {v}");
        }
        self.rows.push(Row {
            terms: terms.to_vec(),
            sense,
            rhs,
        });
        self.rows.len() - 1
    }

    /// Set the (minimization) objective from sparse terms; unmentioned
    /// variables get coefficient zero. Repeated variables accumulate.
    pub fn set_objective(&mut self, terms: &[(VarId, f64)]) {
        self.objective.iter_mut().for_each(|c| *c = 0.0);
        for &(v, c) in terms {
            assert!(
                v < self.vars.len(),
                "objective references unknown variable {v}"
            );
            self.objective[v] += c;
        }
    }

    /// Set a single objective coefficient.
    pub fn set_objective_coeff(&mut self, var: VarId, coeff: f64) {
        self.objective[var] = coeff;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Variable bounds `[lb, ub]`.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        (self.vars[var].lb, self.vars[var].ub)
    }

    /// Tighten (replace) the bounds of a variable.
    ///
    /// Panics if the new bounds are inverted. Used heavily by
    /// branch-and-bound, which clones the problem and narrows bounds.
    pub fn set_bounds(&mut self, var: VarId, lb: f64, ub: f64) {
        assert!(lb <= ub, "inverted bounds [{lb}, {ub}]");
        self.vars[var].lb = lb;
        self.vars[var].ub = ub;
    }

    /// Name of a variable.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var].name
    }

    /// Right-hand side of a row.
    pub fn rhs(&self, row: RowId) -> f64 {
        self.rows[row].rhs
    }

    /// Sense of a row.
    pub fn row_sense(&self, row: RowId) -> ConstraintSense {
        self.rows[row].sense
    }

    /// Objective coefficient of a variable.
    pub fn objective_coeff(&self, var: VarId) -> f64 {
        self.objective[var]
    }

    /// The column of a variable: `(row, summed coefficient)` pairs over
    /// rows where it appears, in row order. O(rows·terms); meant for
    /// exporters, not the solve path.
    pub fn column(&self, var: VarId) -> Vec<(RowId, f64)> {
        let mut out = Vec::new();
        for (r, row) in self.rows.iter().enumerate() {
            let coeff: f64 = row
                .terms
                .iter()
                .filter(|&&(v, _)| v == var)
                .map(|&(_, c)| c)
                .sum();
            if coeff != 0.0 {
                out.push((r, coeff));
            }
        }
        out
    }

    /// Replace a row's right-hand side (sensitivity analysis / cut
    /// tightening).
    pub fn set_rhs(&mut self, row: RowId, rhs: f64) {
        assert!(!rhs.is_nan(), "NaN rhs");
        self.rows[row].rhs = rhs;
    }

    /// Evaluate the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Activity (left-hand-side value) of row `r` at a point.
    pub fn row_activity(&self, r: RowId, x: &[f64]) -> f64 {
        self.rows[r].terms.iter().map(|&(v, c)| c * x[v]).sum()
    }

    /// Maximum constraint violation of `x` over all rows and bounds.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0_f64;
        for (i, row) in self.rows.iter().enumerate() {
            let act = self.row_activity(i, x);
            let viol = match row.sense {
                ConstraintSense::Le => act - row.rhs,
                ConstraintSense::Ge => row.rhs - act,
                ConstraintSense::Eq => (act - row.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        for (v, def) in self.vars.iter().enumerate() {
            worst = worst.max(def.lb - x[v]).max(x[v] - def.ub);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0, 10.0);
        let y = p.add_var("y", -1.0, f64::INFINITY);
        let r = p.add_row(&[(x, 1.0), (y, 2.0)], ConstraintSense::Le, 4.0);
        p.set_objective(&[(x, 3.0), (y, -1.0)]);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_rows(), 1);
        assert_eq!(p.bounds(y), (-1.0, f64::INFINITY));
        assert_eq!(p.row_activity(r, &[2.0, 1.0]), 4.0);
        assert_eq!(p.objective_value(&[2.0, 1.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "inverted bounds")]
    fn rejects_inverted_bounds() {
        let mut p = LpProblem::new();
        p.add_var("x", 1.0, 0.0);
    }

    #[test]
    fn max_violation_measures_rows_and_bounds() {
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0, 1.0);
        p.add_row(&[(x, 1.0)], ConstraintSense::Ge, 2.0);
        // x = 3 violates its upper bound by 2 and satisfies the row.
        assert!((p.max_violation(&[3.0]) - 2.0).abs() < 1e-12);
        // x = 0.5 violates the row by 1.5.
        assert!((p.max_violation(&[0.5]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn objective_repeated_terms_accumulate() {
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0, 1.0);
        p.set_objective(&[(x, 1.0), (x, 2.0)]);
        assert_eq!(p.objective_value(&[1.0]), 3.0);
    }
}
