//! Reusable basis snapshots.
//!
//! A [`Basis`] records, for a solved LP in the equality form the solver
//! uses internally (`[structurals | slacks]`, one slack per row), which
//! column is basic in each row and where every nonbasic column sits
//! (lower bound, upper bound, or parked free at zero). That pair of
//! vectors is everything needed to resume simplex on a *modified* problem
//! without re-running phase 1: [`solve_from_basis`] refactorizes the
//! tableau from the snapshot by Gauss–Jordan pivots in **row order** (no
//! hash- or address-ordered containers anywhere — snapshots must replay
//! bit-identically across runs and threads), then repairs feasibility with
//! the dual simplex and certifies optimality with a primal pass.
//!
//! A snapshot can go stale: the problem it is installed against may make
//! the recorded basis singular (a pivot column with no usable pivot
//! element) or leave neither primal nor dual feasibility to start from.
//! Both cases surface as `Err`, and every caller answers with the same
//! fallback ladder: warm → cold two-phase solve.

use crate::dual::dual_iterate;
use crate::problem::{ConstraintSense, LpProblem};
use crate::simplex::{extract, iterate, Tableau, VarState};
use crate::{LpError, LpSolution, LpStatus, SimplexOptions};
use hslb_numerics::Matrix;

/// Where a column sits in a recorded basis snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnState {
    /// In the basis (exactly one row's `basic` entry names this column).
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Free nonbasic column parked at zero.
    FreeZero,
}

/// A basis snapshot extracted from a solved tableau: the `basis` vector
/// (basic column per row) and the `state` vector (per-column position)
/// over `[structurals | slacks]` columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Basic column per row, in row order.
    pub basic: Vec<usize>,
    /// State per column: structurals first, then one slack per row.
    pub state: Vec<ColumnState>,
}

impl Basis {
    /// Number of constraint rows the snapshot covers.
    pub fn num_rows(&self) -> usize {
        self.basic.len()
    }

    /// Number of columns (structurals plus slacks) the snapshot covers.
    pub fn num_cols(&self) -> usize {
        self.state.len()
    }

    /// Structural variable count implied by the snapshot shape.
    pub fn num_structurals(&self) -> usize {
        self.state.len() - self.basic.len()
    }

    /// Internal consistency: every `basic` entry is a distinct in-range
    /// column marked `Basic`, and nothing else is marked `Basic`.
    /// Index-ordered scan over a plain bit vector — deterministic.
    pub fn is_consistent(&self) -> bool {
        let ncols = self.state.len();
        let mut in_basis = vec![false; ncols];
        for &b in &self.basic {
            if b >= ncols || in_basis[b] {
                return false;
            }
            in_basis[b] = true;
        }
        self.state
            .iter()
            .zip(&in_basis)
            .all(|(s, &b)| (*s == ColumnState::Basic) == b)
    }
}

/// Warm-start a solve from a recorded basis snapshot.
///
/// The problem's *shape* must match the snapshot exactly
/// (`basic.len() == p.num_rows()`, `state.len() == num_vars + num_rows`);
/// what may differ from the problem the snapshot was taken on are the
/// variable bounds, row right-hand sides, row coefficients, and the
/// objective. Returns `Err` on shape mismatch, a singular (stale) basis,
/// or when the snapshot offers neither dual nor primal feasibility to
/// resume from — callers then fall back to the cold two-phase
/// [`crate::solve`].
pub fn solve_from_basis(
    p: &LpProblem,
    basis: &Basis,
    opts: &SimplexOptions,
) -> Result<LpSolution, LpError> {
    let n = p.num_vars();
    let m = p.num_rows();
    if basis.basic.len() != m || basis.state.len() != n + m {
        return Err(LpError::Numerical("basis shape mismatch"));
    }
    if !basis.is_consistent() {
        return Err(LpError::Numerical("inconsistent basis snapshot"));
    }
    let tol = opts.tol;

    // ----- equality form, b carried as an extra rightmost column -----
    let mut lb = Vec::with_capacity(n + m);
    let mut ub = Vec::with_capacity(n + m);
    for v in &p.vars {
        lb.push(v.lb);
        ub.push(v.ub);
    }
    for row in &p.rows {
        let (sl, su) = match row.sense {
            ConstraintSense::Le => (0.0, f64::INFINITY),
            ConstraintSense::Ge => (f64::NEG_INFINITY, 0.0),
            ConstraintSense::Eq => (0.0, 0.0),
        };
        lb.push(sl);
        ub.push(su);
    }
    let bcol_idx = n + m;
    let mut t = Matrix::zeros(m, n + m + 1);
    for (i, row) in p.rows.iter().enumerate() {
        for &(v, c) in &row.terms {
            t[(i, v)] += c;
        }
        t[(i, n + i)] = 1.0;
        t[(i, bcol_idx)] = row.rhs;
    }

    // ----- refactorize: Gauss–Jordan on the recorded basic columns -----
    // Row order, smallest first: deterministic and replayable.
    for r in 0..m {
        let q = basis.basic[r];
        let piv = t[(r, q)];
        if piv.abs() <= tol.max(1e-10) {
            return Err(LpError::Numerical("singular basis snapshot"));
        }
        {
            let row = t.row_mut(r);
            for v in row.iter_mut() {
                *v /= piv;
            }
            row[q] = 1.0;
        }
        for i in 0..m {
            if i == r {
                continue;
            }
            let f = t[(i, q)];
            if f.abs() > 0.0 {
                let stride = n + m + 1;
                let data = t.as_mut_slice();
                let (ri, rr) = if i < r {
                    let (head, tail) = data.split_at_mut(r * stride);
                    (&mut head[i * stride..(i + 1) * stride], &tail[..stride])
                } else {
                    let (head, tail) = data.split_at_mut(i * stride);
                    (&mut tail[..stride], &head[r * stride..(r + 1) * stride])
                };
                for (vi, vr) in ri.iter_mut().zip(rr.iter()) {
                    *vi -= f * vr;
                }
                ri[q] = 0.0;
            }
        }
    }

    // ----- basic values: xb = B⁻¹b − Σ_nonbasic (B⁻¹A)_j · x_j -----
    let state: Vec<VarState> = basis
        .state
        .iter()
        .map(|s| match s {
            ColumnState::Basic => VarState::Basic,
            ColumnState::AtLower => VarState::AtLower,
            ColumnState::AtUpper => VarState::AtUpper,
            ColumnState::FreeZero => VarState::FreeZero,
        })
        .collect();
    let mut xb = vec![0.0; m];
    for (r, x) in xb.iter_mut().enumerate() {
        let mut v = t[(r, bcol_idx)];
        let row = t.row(r);
        for j in 0..n + m {
            let xj = match state[j] {
                VarState::Basic => continue,
                VarState::AtLower => lb[j],
                VarState::AtUpper => ub[j],
                VarState::FreeZero => 0.0,
            };
            if xj.abs() > 0.0 {
                v -= row[j] * xj;
            }
        }
        if !v.is_finite() {
            return Err(LpError::Numerical("non-finite basic value from snapshot"));
        }
        *x = v;
    }

    // ----- strip the b column and assemble the tableau -----
    let mut tt = Matrix::zeros(m, n + m);
    for i in 0..m {
        tt.row_mut(i).copy_from_slice(&t.row(i)[..n + m]);
    }
    let mut cost = vec![0.0; n + m];
    cost[..n].copy_from_slice(&p.objective);
    let mut tab = Tableau {
        t: tt,
        xb,
        basis: basis.basic.clone(),
        state,
        lb,
        ub,
        d: vec![0.0; n + m],
        cost,
        first_artificial: n + m,
    };
    tab.recompute_costs();

    // ----- resume: dual if the reduced costs allow it, else primal -----
    let mut iters = 0usize;
    let st = if dual_feasible(&tab, tol) {
        let st = dual_iterate(&mut tab, opts, &mut iters)?;
        if st == LpStatus::Infeasible {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                x: extract(&tab, n),
                objective: f64::INFINITY,
                iterations: iters,
                row_duals: vec![0.0; m],
            });
        }
        iterate(&mut tab, opts, &mut iters)?
    } else if primal_feasible(&tab, tol) {
        iterate(&mut tab, opts, &mut iters)?
    } else {
        return Err(LpError::Numerical("stale basis: neither feasibility"));
    };

    let x = extract(&tab, n);
    let objective = p.objective_value(&x);
    let row_duals: Vec<f64> = (0..m).map(|i| -tab.d[n + i]).collect();
    Ok(LpSolution {
        status: st,
        x,
        objective,
        iterations: iters,
        row_duals,
    })
}

/// Sign-feasibility of the reduced-cost row: nonbasic at-lower columns
/// need `d ≥ 0`, at-upper need `d ≤ 0`, free need `d ≈ 0` (all within a
/// drift allowance — the primal pass after the dual loop certifies).
fn dual_feasible(tab: &Tableau, tol: f64) -> bool {
    let slack = tol.max(1e-9) * 10.0;
    for j in 0..tab.ncols() {
        if tab.lb[j] == tab.ub[j] {
            continue;
        }
        let d = tab.d[j];
        let ok = match tab.state[j] {
            VarState::Basic => true,
            VarState::AtLower => d >= -slack,
            VarState::AtUpper => d <= slack,
            VarState::FreeZero => d.abs() <= slack,
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Every basic value within its column's bounds (within tolerance).
fn primal_feasible(tab: &Tableau, tol: f64) -> bool {
    tab.basis.iter().zip(&tab.xb).all(|(&b, &v)| {
        let pad = tol.max(1e-9) * 10.0;
        v >= tab.lb[b] - pad && v <= tab.ub[b] + pad
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::solve_keep;
    use crate::solve;

    fn sample() -> LpProblem {
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0, 8.0);
        let y = p.add_var("y", 0.0, 8.0);
        p.add_row(&[(x, 1.0), (y, 1.0)], ConstraintSense::Le, 10.0);
        p.set_objective(&[(x, -1.0), (y, -2.0)]);
        p
    }

    #[test]
    fn snapshot_is_consistent_and_reinstalls() {
        let p = sample();
        let opts = SimplexOptions::default();
        let (cold, warm) = solve_keep(&p, &opts).unwrap();
        let basis = warm.unwrap().basis();
        assert!(basis.is_consistent());
        assert_eq!(basis.num_rows(), 1);
        assert_eq!(basis.num_structurals(), 2);

        // Re-install against the same problem: already optimal, so the
        // resumed solve should do no real work and agree exactly.
        let re = solve_from_basis(&p, &basis, &opts).unwrap();
        assert_eq!(re.status, LpStatus::Optimal);
        assert_eq!(re.x, cold.x);
        assert_eq!(re.objective, cold.objective);
    }

    #[test]
    fn reinstall_after_bound_tightening_matches_cold() {
        let p = sample();
        let opts = SimplexOptions::default();
        let (_, warm) = solve_keep(&p, &opts).unwrap();
        let basis = warm.unwrap().basis();

        let mut p2 = sample();
        p2.set_bounds(1, 0.0, 5.0); // optimum had y = 8
        let warm_sol = solve_from_basis(&p2, &basis, &opts).unwrap();
        let cold_sol = solve(&p2, &opts).unwrap();
        assert_eq!(warm_sol.status, LpStatus::Optimal);
        assert!((warm_sol.objective - cold_sol.objective).abs() < 1e-9);
        for (a, b) in warm_sol.x.iter().zip(&cold_sol.x) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let p = sample();
        let opts = SimplexOptions::default();
        let (_, warm) = solve_keep(&p, &opts).unwrap();
        let basis = warm.unwrap().basis();
        let mut p2 = sample();
        p2.add_row(&[(0, 1.0)], ConstraintSense::Le, 4.0);
        assert!(solve_from_basis(&p2, &basis, &opts).is_err());
    }

    #[test]
    fn inconsistent_snapshot_is_rejected() {
        let p = sample();
        let opts = SimplexOptions::default();
        let bad = Basis {
            basic: vec![0, 0],
            state: vec![ColumnState::Basic; 4],
        };
        assert!(!bad.is_consistent());
        // Shape is wrong for `p` too, but consistency alone must reject.
        assert!(solve_from_basis(&p, &bad, &opts).is_err());
    }
}
