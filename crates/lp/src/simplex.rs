//! Two-phase bounded-variable primal simplex on a dense tableau.

use crate::problem::{ConstraintSense, LpProblem};
use hslb_numerics::Matrix;

/// Termination status of a simplex solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
}

/// Hard failures (distinct from infeasible/unbounded, which are answers).
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The iteration limit was exhausted before termination.
    IterationLimit { iterations: usize },
    /// Numerical breakdown (NaN propagated into the tableau).
    Numerical(&'static str),
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::IterationLimit { iterations } => {
                write!(f, "simplex iteration limit reached ({iterations})")
            }
            LpError::Numerical(what) => write!(f, "numerical breakdown: {what}"),
        }
    }
}

impl std::error::Error for LpError {}

/// Options controlling the simplex iteration.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Absolute iteration limit across both phases.
    pub max_iters: usize,
    /// Feasibility / pivot tolerance.
    pub tol: f64,
    /// Number of non-improving iterations after which pricing switches from
    /// Dantzig to Bland's rule (anti-cycling).
    pub stall_iters: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iters: 50_000,
            tol: 1e-9,
            stall_iters: 200,
        }
    }
}

/// Result of a simplex solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal / infeasible / unbounded.
    pub status: LpStatus,
    /// Values of the structural variables (meaningful when `Optimal`; a
    /// feasible point of the phase-1 relaxation otherwise).
    pub x: Vec<f64>,
    /// Objective value `cᵀx` (meaningful when `Optimal`).
    pub objective: f64,
    /// Total simplex iterations across both phases.
    pub iterations: usize,
    /// Dual value (shadow price) per constraint row: the rate of change
    /// of the optimal objective per unit of that row's rhs. Read off the
    /// final reduced-cost row at the slack columns (`y_i = −d_{slack_i}`).
    /// Meaningful when `Optimal`; zero for rows whose constraint is slack.
    pub row_duals: Vec<f64>,
}

/// Where a nonbasic variable currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarState {
    Basic,
    AtLower,
    AtUpper,
    /// Free nonbasic variable parked at zero.
    FreeZero,
}

/// The dense working problem: structurals, then one slack per row, then
/// artificials. All rows are equalities `A·x = b` with bounds on columns.
/// Shared with the dual-simplex warm path (`crate::dual`), which edits it
/// incrementally instead of rebuilding.
#[derive(Debug, Clone)]
pub(crate) struct Tableau {
    /// `B⁻¹·A`, m × ncols.
    pub(crate) t: Matrix,
    /// Values of the basic variables, one per row.
    pub(crate) xb: Vec<f64>,
    /// Basic column per row.
    pub(crate) basis: Vec<usize>,
    /// Per-column state.
    pub(crate) state: Vec<VarState>,
    /// Per-column bounds.
    pub(crate) lb: Vec<f64>,
    pub(crate) ub: Vec<f64>,
    /// Reduced-cost row for the current phase.
    pub(crate) d: Vec<f64>,
    /// Current-phase cost per column.
    pub(crate) cost: Vec<f64>,
    /// First artificial column index (== ncols when none).
    pub(crate) first_artificial: usize,
}

impl Tableau {
    pub(crate) fn ncols(&self) -> usize {
        self.lb.len()
    }

    /// Current value of column `j` given its state.
    pub(crate) fn value(&self, j: usize) -> f64 {
        match self.state[j] {
            VarState::Basic => {
                // Rare path; callers use xb by row where possible. A
                // `Basic` state without a basis row is a broken tableau.
                #[allow(clippy::expect_used)]
                let r = self
                    .basis
                    .iter()
                    .position(|&b| b == j)
                    .expect("basic var in basis");
                self.xb[r]
            }
            VarState::AtLower => self.lb[j],
            VarState::AtUpper => self.ub[j],
            VarState::FreeZero => 0.0,
        }
    }

    /// Recompute the reduced-cost row from scratch for the current costs.
    pub(crate) fn recompute_costs(&mut self) {
        self.d.copy_from_slice(&self.cost);
        for (r, &bcol) in self.basis.iter().enumerate() {
            let cb = self.cost[bcol];
            if cb == 0.0 {
                continue;
            }
            let row = self.t.row(r);
            for (dj, a) in self.d.iter_mut().zip(row) {
                *dj -= cb * a;
            }
        }
        // Reduced costs of basic columns are exactly zero by construction;
        // enforce it to stop drift from excluding them as "eligible".
        for &bcol in &self.basis {
            self.d[bcol] = 0.0;
        }
    }

    /// Objective of the current phase at the current point.
    pub(crate) fn phase_objective(&self) -> f64 {
        let mut z = 0.0;
        for j in 0..self.ncols() {
            let c = self.cost[j];
            if c == 0.0 {
                continue;
            }
            z += c * match self.state[j] {
                VarState::Basic => continue_basic(self, j),
                VarState::AtLower => self.lb[j],
                VarState::AtUpper => self.ub[j],
                VarState::FreeZero => 0.0,
            };
        }
        z
    }
}

/// Helper: value of a basic column (linear scan is fine — only used for
/// objective reporting, not in the pivot loop).
fn continue_basic(tab: &Tableau, j: usize) -> f64 {
    // Callers pass a column the tableau reports as basic.
    #[allow(clippy::expect_used)]
    let r = tab
        .basis
        .iter()
        .position(|&b| b == j)
        .expect("basic var in basis");
    tab.xb[r]
}

/// Solve an LP with the two-phase bounded-variable simplex.
///
/// # Examples
///
/// ```
/// use hslb_lp::{solve, ConstraintSense, LpProblem, LpStatus, SimplexOptions};
///
/// // maximize x + 2y  s.t.  x + y ≤ 10, 0 ≤ x,y ≤ 8  (minimize −x − 2y)
/// let mut p = LpProblem::new();
/// let x = p.add_var("x", 0.0, 8.0);
/// let y = p.add_var("y", 0.0, 8.0);
/// p.add_row(&[(x, 1.0), (y, 1.0)], ConstraintSense::Le, 10.0);
/// p.set_objective(&[(x, -1.0), (y, -2.0)]);
///
/// let s = solve(&p, &SimplexOptions::default()).unwrap();
/// assert_eq!(s.status, LpStatus::Optimal);
/// assert_eq!(s.x, vec![2.0, 8.0]);
/// assert_eq!(s.objective, -18.0);
/// ```
pub fn solve(p: &LpProblem, opts: &SimplexOptions) -> Result<LpSolution, LpError> {
    solve_impl(p, opts, false).map(|(s, _)| s)
}

/// Two-phase solve that can also hand back the live tableau.
///
/// When `keep` is set and the solve terminates `Optimal`, the second tuple
/// element is a [`WarmLp`](crate::dual::WarmLp) wrapping the final tableau
/// (artificial columns stripped) for incremental re-solves: cut-row appends
/// and bound tightenings followed by dual-simplex repair. It is `None` when
/// a redundant row left an artificial basic — callers fall back to cold
/// solves in that (rare) case.
pub(crate) fn solve_impl(
    p: &LpProblem,
    opts: &SimplexOptions,
    keep: bool,
) -> Result<(LpSolution, Option<crate::dual::WarmLp>), LpError> {
    let n = p.num_vars();
    let m = p.num_rows();
    let tol = opts.tol;

    // ----- assemble the equality form -----
    // Columns: [structurals | slacks | artificials...]
    let mut lb = Vec::with_capacity(n + m);
    let mut ub = Vec::with_capacity(n + m);
    for v in &p.vars {
        lb.push(v.lb);
        ub.push(v.ub);
    }
    for row in &p.rows {
        // a·x + s = rhs with slack bounds by sense.
        let (sl, su) = match row.sense {
            ConstraintSense::Le => (0.0, f64::INFINITY),
            ConstraintSense::Ge => (f64::NEG_INFINITY, 0.0),
            ConstraintSense::Eq => (0.0, 0.0),
        };
        lb.push(sl);
        ub.push(su);
    }

    // Dense constraint matrix over structurals + slacks.
    let mut a = Matrix::zeros(m, n + m);
    let mut b = vec![0.0; m];
    for (i, row) in p.rows.iter().enumerate() {
        for &(v, c) in &row.terms {
            a[(i, v)] += c;
        }
        a[(i, n + i)] = 1.0;
        b[i] = row.rhs;
    }

    // Initial nonbasic point: every structural at its finite bound nearest
    // zero (or zero if free). Slacks are candidates for the initial basis.
    let mut state = vec![VarState::AtLower; n + m];
    for j in 0..n {
        state[j] = initial_state(lb[j], ub[j]);
    }
    let x0: Vec<f64> = (0..n)
        .map(|j| match state[j] {
            VarState::AtLower => lb[j],
            VarState::AtUpper => ub[j],
            VarState::FreeZero => 0.0,
            VarState::Basic => unreachable!(),
        })
        .collect();

    // Residual per row at the initial structural point.
    let mut resid = vec![0.0; m];
    for i in 0..m {
        let mut s = b[i];
        for &(v, c) in &p.rows[i].terms {
            s -= c * x0[v];
        }
        resid[i] = s; // the value the slack would need to take
    }

    // Choose basis: slack when its needed value is within bounds, otherwise
    // clamp the slack to its nearest bound and add an artificial.
    let mut basis = vec![0usize; m];
    let mut xb = vec![0.0; m];
    let mut art_cols: Vec<(usize, f64)> = Vec::new(); // (row, sign)
    for i in 0..m {
        let sj = n + i;
        if resid[i] >= lb[sj] - tol && resid[i] <= ub[sj] + tol {
            basis[i] = sj;
            state[sj] = VarState::Basic;
            xb[i] = resid[i].clamp(lb[sj], ub[sj]);
        } else {
            // Park the slack at the bound nearest the needed value.
            let clamped = if resid[i] < lb[sj] { lb[sj] } else { ub[sj] };
            state[sj] = if clamped == lb[sj] {
                VarState::AtLower
            } else {
                VarState::AtUpper
            };
            let r = resid[i] - clamped;
            art_cols.push((i, r.signum()));
            xb[i] = r.abs();
        }
    }

    // Append artificial columns.
    let first_artificial = n + m;
    let ncols = n + m + art_cols.len();
    let mut full = Matrix::zeros(m, ncols);
    for i in 0..m {
        let src = a.row(i);
        full.row_mut(i)[..n + m].copy_from_slice(src);
    }
    for (k, &(row, sign)) in art_cols.iter().enumerate() {
        full[(row, first_artificial + k)] = sign;
        lb.push(0.0);
        ub.push(f64::INFINITY);
        state.push(VarState::Basic);
    }
    for (k, &(row, _)) in art_cols.iter().enumerate() {
        basis[row] = first_artificial + k;
    }

    // B is diagonal with entries 1 (slack basic) or ±1 (artificial basic);
    // normalize rows so the tableau is B⁻¹·A.
    for (row, sign) in &art_cols {
        if *sign < 0.0 {
            let r = full.row_mut(*row);
            for v in r.iter_mut() {
                *v = -*v;
            }
        }
    }

    let mut tab = Tableau {
        t: full,
        xb,
        basis,
        state,
        lb,
        ub,
        d: vec![0.0; ncols],
        cost: vec![0.0; ncols],
        first_artificial,
    };

    let mut total_iters = 0usize;

    // ----- phase 1 -----
    if !art_cols.is_empty() {
        for j in first_artificial..ncols {
            tab.cost[j] = 1.0;
        }
        tab.recompute_costs();
        let st = iterate(&mut tab, opts, &mut total_iters)?;
        if st == LpStatus::Unbounded {
            // Phase-1 objective is bounded below by zero; reaching here
            // means numerical trouble.
            return Err(LpError::Numerical("phase-1 reported unbounded"));
        }
        let infeas = tab.phase_objective();
        if infeas > 1e-7 {
            return Ok((
                LpSolution {
                    status: LpStatus::Infeasible,
                    x: extract(&tab, n),
                    objective: f64::INFINITY,
                    iterations: total_iters,
                    row_duals: vec![0.0; m],
                },
                None,
            ));
        }
        // Fix artificials at zero so they can never re-enter.
        for j in first_artificial..ncols {
            tab.lb[j] = 0.0;
            tab.ub[j] = 0.0;
            if tab.state[j] != VarState::Basic {
                tab.state[j] = VarState::AtLower;
            }
        }
        // Pivot basic artificials out where possible (they sit at zero, so
        // these pivots are degenerate and safe).
        drive_out_artificials(&mut tab, tol);
    }

    // ----- phase 2 -----
    for j in 0..tab.ncols() {
        tab.cost[j] = if j < n { p.objective[j] } else { 0.0 };
    }
    tab.recompute_costs();
    let st = iterate(&mut tab, opts, &mut total_iters)?;

    let x = extract(&tab, n);
    let objective = p.objective_value(&x);
    // Duals: for slack column s_i (unit column e_i, zero cost) the final
    // reduced cost is d = 0 − yᵀe_i, so y_i = −d[slack_i].
    let row_duals: Vec<f64> = (0..m).map(|i| -tab.d[n + i]).collect();
    let warm = if keep && st == LpStatus::Optimal {
        crate::dual::WarmLp::from_tableau(tab, n)
    } else {
        None
    };
    Ok((
        LpSolution {
            status: st,
            x,
            objective,
            iterations: total_iters,
            row_duals,
        },
        warm,
    ))
}

pub(crate) fn initial_state(lb: f64, ub: f64) -> VarState {
    match (lb.is_finite(), ub.is_finite()) {
        (true, true) => {
            if lb.abs() <= ub.abs() {
                VarState::AtLower
            } else {
                VarState::AtUpper
            }
        }
        (true, false) => VarState::AtLower,
        (false, true) => VarState::AtUpper,
        (false, false) => VarState::FreeZero,
    }
}

/// Read structural variable values out of the tableau.
pub(crate) fn extract(tab: &Tableau, n: usize) -> Vec<f64> {
    let mut x = vec![0.0; n];
    for (j, xj) in x.iter_mut().enumerate() {
        *xj = match tab.state[j] {
            VarState::Basic => 0.0, // filled below from xb
            VarState::AtLower => tab.lb[j],
            VarState::AtUpper => tab.ub[j],
            VarState::FreeZero => 0.0,
        };
    }
    for (r, &bcol) in tab.basis.iter().enumerate() {
        if bcol < n {
            x[bcol] = tab.xb[r];
        }
    }
    x
}

/// Degenerate pivots to remove artificials from the basis. Rows whose
/// non-artificial entries are all ~zero are redundant; their artificial
/// stays basic at value zero (bounds [0,0] keep it pinned).
fn drive_out_artificials(tab: &mut Tableau, tol: f64) {
    tab.drive_out_artificials_impl(tol);
}

impl Tableau {
    fn drive_out_artificials_impl(&mut self, tol: f64) {
        for r in 0..self.basis.len() {
            let bcol = self.basis[r];
            if bcol < self.first_artificial {
                continue;
            }
            // Find any eligible non-artificial, nonbasic pivot column.
            let mut pivot_col = None;
            for j in 0..self.first_artificial {
                if self.state[j] == VarState::Basic {
                    continue;
                }
                if self.t[(r, j)].abs() > tol {
                    pivot_col = Some(j);
                    break;
                }
            }
            if let Some(q) = pivot_col {
                let vq = self.value(q);
                self.pivot(r, q, vq);
            }
        }
    }

    /// Pivot column `q` into the basis at row `r`; `new_val` is the value
    /// the entering variable takes.
    pub(crate) fn pivot(&mut self, r: usize, q: usize, new_val: f64) {
        let ncols = self.ncols();
        let leaving = self.basis[r];
        let piv = self.t[(r, q)];
        debug_assert!(piv.abs() > 0.0, "zero pivot");
        // Normalize pivot row.
        {
            let row = self.t.row_mut(r);
            for v in row.iter_mut() {
                *v /= piv;
            }
            row[q] = 1.0;
        }
        // Eliminate q from all other rows and the cost row.
        for i in 0..self.basis.len() {
            if i == r {
                continue;
            }
            let f = self.t[(i, q)];
            if f == 0.0 {
                continue;
            }
            // Split-borrow rows i and r.
            let stride = ncols;
            let (ri, rr) = {
                let data = self.t.as_mut_slice();
                if i < r {
                    let (head, tail) = data.split_at_mut(r * stride);
                    (&mut head[i * stride..(i + 1) * stride], &tail[..stride])
                } else {
                    let (head, tail) = data.split_at_mut(i * stride);
                    (&mut tail[..stride], &head[r * stride..(r + 1) * stride])
                }
            };
            for (vi, vr) in ri.iter_mut().zip(rr.iter()) {
                *vi -= f * vr;
            }
            ri[q] = 0.0;
        }
        let dq = self.d[q];
        if dq != 0.0 {
            let row = self.t.row(r);
            for (dj, a) in self.d.iter_mut().zip(row) {
                *dj -= dq * a;
            }
            self.d[q] = 0.0;
        }
        // Status bookkeeping. The leaving variable's new state is set by the
        // caller of the ratio test; here we only know it leaves at a bound,
        // which `iterate` records before calling pivot. For drive-out pivots
        // the leaving artificial sits at zero == both bounds.
        self.basis[r] = q;
        self.state[q] = VarState::Basic;
        if self.state[leaving] == VarState::Basic {
            // Caller did not pre-set it (drive-out path): park at lower.
            self.state[leaving] = VarState::AtLower;
        }
        self.xb[r] = new_val;
    }
}

/// Core simplex loop for the current phase's costs. Returns `Optimal` when
/// no eligible entering column remains, `Unbounded` when a ratio test finds
/// no blocking bound.
pub(crate) fn iterate(
    tab: &mut Tableau,
    opts: &SimplexOptions,
    total_iters: &mut usize,
) -> Result<LpStatus, LpError> {
    let tol = opts.tol;
    let mut stall = 0usize;
    let mut last_obj = f64::INFINITY;
    let mut bland = false;

    loop {
        if *total_iters >= opts.max_iters {
            return Err(LpError::IterationLimit {
                iterations: *total_iters,
            });
        }
        *total_iters += 1;

        // ---- pricing ----
        let mut entering: Option<(usize, f64, f64)> = None; // (col, |d|, dir)
        for j in 0..tab.ncols() {
            let st = tab.state[j];
            // Basic and fixed columns (incl. zeroed artificials) never enter.
            if st == VarState::Basic || tab.lb[j] == tab.ub[j] {
                continue;
            }
            let dj = tab.d[j];
            let dir = match st {
                VarState::AtLower if dj < -tol => 1.0,
                VarState::AtUpper if dj > tol => -1.0,
                VarState::FreeZero if dj.abs() > tol => -dj.signum(),
                _ => continue,
            };
            let score = dj.abs();
            if bland {
                entering = Some((j, score, dir));
                break;
            }
            if entering.is_none_or(|(_, s, _)| score > s) {
                entering = Some((j, score, dir));
            }
        }

        let Some((q, _, dir)) = entering else {
            return Ok(LpStatus::Optimal);
        };

        // ---- ratio test ----
        // Entering moves by t·dir from its current value; basics move by
        // -t·dir·col.
        let mut t_best = f64::INFINITY;
        let mut leave: Option<(usize, VarState)> = None; // (row, leaving state)
        for r in 0..tab.basis.len() {
            let w = dir * tab.t[(r, q)];
            let bcol = tab.basis[r];
            let candidate = if w > tol && tab.lb[bcol].is_finite() {
                // basic decreases toward its lower bound
                Some(((tab.xb[r] - tab.lb[bcol]) / w, VarState::AtLower))
            } else if w < -tol && tab.ub[bcol].is_finite() {
                // basic increases toward its upper bound
                Some(((tab.ub[bcol] - tab.xb[r]) / (-w), VarState::AtUpper))
            } else {
                None
            };
            if let Some((t, st)) = candidate {
                let t = t.max(0.0);
                let better = t < t_best - 1e-12
                    // Bland anti-cycling: among ties, leave by smallest
                    // basis column index.
                    || (bland
                        && t <= t_best + 1e-12
                        && leave.is_none_or(|(lr, _)| bcol < tab.basis[lr]));
                if better {
                    t_best = t.min(t_best);
                    leave = Some((r, st));
                }
            }
        }
        // Bound-flip limit for the entering variable itself.
        let span = tab.ub[q] - tab.lb[q];
        let flip_limit = if tab.state[q] == VarState::FreeZero {
            f64::INFINITY
        } else if span.is_finite() {
            span
        } else {
            f64::INFINITY
        };

        if flip_limit < t_best {
            // ---- bound flip, no basis change ----
            let t = flip_limit;
            for r in 0..tab.basis.len() {
                let w = dir * tab.t[(r, q)];
                tab.xb[r] -= t * w;
            }
            tab.state[q] = match tab.state[q] {
                VarState::AtLower => VarState::AtUpper,
                VarState::AtUpper => VarState::AtLower,
                other => other,
            };
        } else if leave.is_none() {
            return Ok(LpStatus::Unbounded);
        } else {
            // The branch above returned when `leave` was `None`.
            #[allow(clippy::unwrap_used)]
            let (r, leave_state) = leave.unwrap();
            let t = t_best;
            // Update basic values.
            for i in 0..tab.basis.len() {
                let w = dir * tab.t[(i, q)];
                tab.xb[i] -= t * w;
            }
            let v_enter = tab.value(q) + dir * t;
            let leaving = tab.basis[r];
            tab.state[leaving] = leave_state;
            tab.pivot(r, q, v_enter);
        }

        // ---- stall detection → Bland's rule ----
        let obj = tab.phase_objective();
        if obj < last_obj - 1e-12 {
            last_obj = obj;
            stall = 0;
            // Strict improvement means the degenerate plateau is behind
            // us: return to Dantzig pricing. Leaving Bland's rule latched
            // here made the entire rest of the phase crawl through
            // smallest-index pivots after a single early stall.
            bland = false;
        } else {
            stall += 1;
            if stall > opts.stall_iters {
                bland = true;
            }
        }
        if !obj.is_finite() {
            return Err(LpError::Numerical("objective became non-finite"));
        }
    }
}
