//! A dense bounded-variable primal simplex LP solver.
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//!
//! This crate stands in for CLP, the LP engine the paper's MINLP solver
//! (MINOTAUR) uses for its LP/NLP-based branch-and-bound. The LPs that
//! arise there are
//!
//! * small in the row dimension (a handful of layout constraints plus a
//!   growing pool of outer-approximation cuts), and
//! * wide in the column dimension (one binary per allowed ocean/atmosphere
//!   node count — a couple of thousand columns),
//!
//! so the implementation keeps **variable bounds implicit** (a
//! bounded-variable simplex in the style of Chvátal ch. 8) instead of
//! expanding `0 ≤ z ≤ 1` into rows: the working tableau stays `m × n` with
//! `m` in the tens, and each pivot is a single cache-friendly row sweep.
//!
//! Features:
//!
//! * two-phase method with artificial variables (phase 1 minimizes the
//!   total infeasibility; artificials are fixed to zero afterwards),
//! * bound flips (a nonbasic variable may move bound-to-bound without a
//!   basis change),
//! * Dantzig pricing with an automatic switch to Bland's rule after a
//!   stall (and back to Dantzig on the next strict improvement),
//!   guaranteeing termination on degenerate problems,
//! * infeasibility and unboundedness detection via status codes,
//! * warm re-solves: [`solve_keep`] hands back the live tableau as a
//!   [`WarmLp`] that accepts appended `≤` cut rows and bound tightenings
//!   and re-attains feasibility with a bounded-variable **dual simplex**
//!   (DESIGN.md §14); [`Basis`] snapshots extracted from a solved
//!   tableau re-install against a rebuilt problem via
//!   [`solve_from_basis`]. Warm paths fail closed: any error falls back
//!   to the cold two-phase solve.

mod basis;
mod dual;
mod mps;
mod problem;
mod simplex;

pub use basis::{solve_from_basis, Basis, ColumnState};
pub use dual::{solve_keep, WarmLp};
pub use mps::to_mps;
pub use problem::{ConstraintSense, LpProblem, RowId, VarId};
pub use simplex::{solve, LpError, LpSolution, LpStatus, SimplexOptions};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_smoke() {
        // max x + y s.t. x + y ≤ 1, 0 ≤ x,y ≤ 1  (minimize the negation)
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0, 1.0);
        let y = p.add_var("y", 0.0, 1.0);
        p.add_row(&[(x, 1.0), (y, 1.0)], ConstraintSense::Le, 1.0);
        p.set_objective(&[(x, -1.0), (y, -1.0)]);
        let s = solve(&p, &SimplexOptions::default()).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 1.0).abs() < 1e-9);
    }
}
