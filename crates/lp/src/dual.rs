//! Warm-started re-solves: a live tableau plus a bounded-variable **dual
//! simplex** loop.
//!
//! The MINLP driver's LPs change in exactly two ways between solves:
//!
//! * a cut round appends one `≤` row (an outer-approximation cut), and
//! * a branch-and-bound descent tightens a variable's bounds.
//!
//! Both edits preserve dual feasibility of the optimal basis (an appended
//! slack has zero cost, so its reduced cost starts at the sign-feasible
//! value 0; a bound change never touches the reduced-cost row) while
//! possibly breaking primal feasibility. That is the textbook entry point
//! for the dual simplex: pick the most-violated basic variable as the
//! leaving row, restore its bound, and let the dual ratio test keep the
//! reduced costs sign-feasible. A handful of pivots replaces a full
//! two-phase cold solve.
//!
//! [`WarmLp`] wraps the final tableau of an optimal solve (artificials
//! stripped) and supports `append_le_row` / `set_var_bounds` / `resolve`.
//! Every consumer keeps the **fallback ladder**: a warm resolve that errors
//! (iteration limit, numerical breakdown, shape drift) is answered by a
//! cold two-phase solve of the freshly rebuilt problem, never by giving up.

use crate::basis::{Basis, ColumnState};
use crate::problem::LpProblem;
use crate::simplex::{extract, iterate, solve_impl, Tableau, VarState};
use crate::{LpError, LpSolution, LpStatus, SimplexOptions};

/// Cold two-phase solve that also hands back the live tableau for warm
/// re-solves. The second element is `None` when the solve did not end
/// `Optimal`, or when a redundant row left an artificial basic (the
/// stripped tableau would be rank-deficient); callers treat `None` as
/// "cold-only from here".
pub fn solve_keep(
    p: &LpProblem,
    opts: &SimplexOptions,
) -> Result<(LpSolution, Option<WarmLp>), LpError> {
    solve_impl(p, opts, true)
}

/// A solved LP kept live for incremental edits and dual-simplex repair.
///
/// Columns are `[structurals | slacks]` with one slack per row, in row
/// order; appended rows append their slack column on the right, so the
/// slack of row `i` is always column `n + i`. Artificials from the cold
/// solve are stripped at construction. The phase-2 cost row is retained,
/// so `resolve` reports objectives consistent with [`crate::solve`].
#[derive(Debug, Clone)]
pub struct WarmLp {
    tab: Tableau,
    /// Structural variable count.
    n: usize,
}

impl WarmLp {
    /// Wrap the final tableau of an optimal phase-2 solve. Returns `None`
    /// when an artificial column is still basic (redundant row): stripping
    /// it would leave a row without a basic column.
    pub(crate) fn from_tableau(tab: Tableau, n: usize) -> Option<WarmLp> {
        let m = tab.basis.len();
        let keep_cols = n + m;
        if tab.basis.iter().any(|&b| b >= keep_cols) {
            return None;
        }
        let mut t = hslb_numerics::Matrix::zeros(m, keep_cols);
        for i in 0..m {
            t.row_mut(i).copy_from_slice(&tab.t.row(i)[..keep_cols]);
        }
        let tab = Tableau {
            t,
            xb: tab.xb,
            basis: tab.basis,
            state: tab.state[..keep_cols].to_vec(),
            lb: tab.lb[..keep_cols].to_vec(),
            ub: tab.ub[..keep_cols].to_vec(),
            d: tab.d[..keep_cols].to_vec(),
            cost: tab.cost[..keep_cols].to_vec(),
            first_artificial: keep_cols,
        };
        Some(WarmLp { tab, n })
    }

    /// Number of structural variables.
    pub fn num_structurals(&self) -> usize {
        self.n
    }

    /// Number of constraint rows currently in the tableau.
    pub fn num_rows(&self) -> usize {
        self.tab.basis.len()
    }

    /// Current bounds of structural variable `j`.
    pub fn var_bounds(&self, j: usize) -> (f64, f64) {
        (self.tab.lb[j], self.tab.ub[j])
    }

    /// Export the basis snapshot (`basis`/`state` vectors) of the current
    /// tableau. The snapshot is over `[structurals | slacks]` columns and
    /// can be re-installed against an equivalent cold problem with
    /// [`crate::solve_from_basis`].
    pub fn basis(&self) -> Basis {
        Basis {
            basic: self.tab.basis.clone(),
            state: self
                .tab
                .state
                .iter()
                .map(|s| match s {
                    VarState::Basic => ColumnState::Basic,
                    VarState::AtLower => ColumnState::AtLower,
                    VarState::AtUpper => ColumnState::AtUpper,
                    VarState::FreeZero => ColumnState::FreeZero,
                })
                .collect(),
        }
    }

    /// Replace the bounds of structural variable `j`, re-parking a
    /// nonbasic variable on the matching new bound and updating the basic
    /// values for the displacement. A basic variable pushed out of its new
    /// bounds is left for the next `resolve` (dual simplex) to repair.
    pub fn set_var_bounds(&mut self, j: usize, lb: f64, ub: f64) {
        debug_assert!(j < self.n, "only structural bounds change under B&B");
        let tab = &mut self.tab;
        let old_state = tab.state[j];
        if old_state == VarState::Basic {
            tab.lb[j] = lb;
            tab.ub[j] = ub;
            return;
        }
        let v0 = match old_state {
            VarState::AtLower => tab.lb[j],
            VarState::AtUpper => tab.ub[j],
            _ => 0.0,
        };
        tab.lb[j] = lb;
        tab.ub[j] = ub;
        let (v1, st) = match old_state {
            VarState::AtLower if lb.is_finite() => (lb, VarState::AtLower),
            VarState::AtUpper if ub.is_finite() => (ub, VarState::AtUpper),
            VarState::AtLower if ub.is_finite() => (ub, VarState::AtUpper),
            VarState::AtUpper if lb.is_finite() => (lb, VarState::AtLower),
            _ => (0.0, VarState::FreeZero),
        };
        tab.state[j] = st;
        let delta = v1 - v0;
        if delta.abs() > 0.0 {
            for r in 0..tab.basis.len() {
                let w = tab.t[(r, j)];
                if w.abs() > 0.0 {
                    tab.xb[r] -= delta * w;
                }
            }
        }
    }

    /// Append a `≤` constraint row over structural variables. The new
    /// slack enters the basis for the new row; its value is the row's
    /// residual at the current point and may be negative — the next
    /// `resolve` restores feasibility with dual pivots.
    pub fn append_le_row(&mut self, terms: &[(usize, f64)], rhs: f64) -> Result<(), LpError> {
        self.append_le_rows(&[(terms, rhs)])
    }

    /// [`Self::append_le_row`] for a batch: the tableau is widened once
    /// for all the new slack columns (one `memmove` instead of one per
    /// cut), then each row is expressed in the current basis and appended
    /// in order — arithmetic identical to appending the rows one by one.
    pub fn append_le_rows(&mut self, rows: &[(&[(usize, f64)], f64)]) -> Result<(), LpError> {
        if rows.is_empty() {
            return Ok(());
        }
        self.tab.t.grow_cols(rows.len());
        for &(terms, rhs) in rows {
            let m = self.tab.basis.len();
            // The final width; columns of slacks from later batch entries
            // are zero in every row, so they never perturb the arithmetic.
            let ncols = self.tab.t.cols();
            let slack_col = self.tab.lb.len();

            // Raw coefficients over existing columns, then express the row
            // in the current basis: subtract a[basic_r] × (tableau row r).
            // Basic columns are unit vectors across all rows, so one pass
            // in any row order lands on exact zeros at every basic column.
            let mut raw = vec![0.0; ncols];
            let mut activity = 0.0;
            for &(v, c) in terms {
                debug_assert!(v < self.n, "cut rows are over structurals");
                raw[v] += c;
                activity += c * self.tab.value(v);
            }
            for r in 0..m {
                let bcol = self.tab.basis[r];
                let f = raw[bcol];
                if f.abs() > 0.0 {
                    let row = self.tab.t.row(r);
                    for (rv, tv) in raw.iter_mut().zip(row) {
                        *rv -= f * tv;
                    }
                    raw[bcol] = 0.0;
                }
            }

            let tab = &mut self.tab;
            raw[slack_col] = 1.0;
            tab.t
                .push_row(&raw)
                .map_err(|_| LpError::Numerical("cut row append"))?;
            tab.lb.push(0.0);
            tab.ub.push(f64::INFINITY);
            tab.state.push(VarState::Basic);
            tab.basis.push(slack_col);
            tab.xb.push(rhs - activity);
            tab.d.push(0.0);
            tab.cost.push(0.0);
            tab.first_artificial = tab.lb.len();
        }
        Ok(())
    }

    /// Re-solve after edits: dual simplex back to primal feasibility, then
    /// a primal pass that certifies optimality (and mops up any reduced-
    /// cost drift from the pivot arithmetic). Errors mean the caller
    /// should fall back to a cold rebuild.
    pub fn resolve(&mut self, opts: &SimplexOptions) -> Result<LpSolution, LpError> {
        let m = self.tab.basis.len();
        let mut iters = 0usize;
        let st = dual_iterate(&mut self.tab, opts, &mut iters)?;
        if st == LpStatus::Infeasible {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                x: extract(&self.tab, self.n),
                objective: f64::INFINITY,
                iterations: iters,
                row_duals: vec![0.0; m],
            });
        }
        let st = iterate(&mut self.tab, opts, &mut iters)?;
        Ok(self.solution(st, iters))
    }

    /// Assemble an [`LpSolution`] from the current tableau.
    fn solution(&self, status: LpStatus, iterations: usize) -> LpSolution {
        let m = self.tab.basis.len();
        let x = extract(&self.tab, self.n);
        let mut objective = 0.0;
        for (xj, c) in x.iter().zip(&self.tab.cost) {
            objective += c * xj;
        }
        let row_duals: Vec<f64> = (0..m).map(|i| -self.tab.d[self.n + i]).collect();
        LpSolution {
            status,
            x,
            objective,
            iterations,
            row_duals,
        }
    }
}

/// Bounded-variable dual simplex. Requires a dual-feasible reduced-cost
/// row; terminates `Optimal` once every basic value is within its bounds
/// and `Infeasible` when a violated row admits no entering column (the row
/// is a certificate of primal infeasibility).
pub(crate) fn dual_iterate(
    tab: &mut Tableau,
    opts: &SimplexOptions,
    total_iters: &mut usize,
) -> Result<LpStatus, LpError> {
    let tol = opts.tol;
    let mut degenerate = 0usize;
    let mut bland = false;

    loop {
        if *total_iters >= opts.max_iters {
            return Err(LpError::IterationLimit {
                iterations: *total_iters,
            });
        }

        // ---- leaving row: largest bound violation among basics ----
        let m = tab.basis.len();
        let mut leave: Option<(usize, f64, bool)> = None; // (row, violation, below)
        for r in 0..m {
            let bcol = tab.basis[r];
            let v = tab.xb[r];
            let cand = if v < tab.lb[bcol] - tol {
                Some((tab.lb[bcol] - v, true))
            } else if v > tab.ub[bcol] + tol {
                Some((v - tab.ub[bcol], false))
            } else {
                None
            };
            let Some((viol, below)) = cand else { continue };
            if bland {
                // Anti-cycling: smallest row index.
                leave = Some((r, viol, below));
                break;
            }
            if leave.is_none_or(|(_, best, _)| viol > best) {
                leave = Some((r, viol, below));
            }
        }
        let Some((r, _, below)) = leave else {
            return Ok(LpStatus::Optimal);
        };
        *total_iters += 1;

        // ---- dual ratio test ----
        // The leaving basic exits at its violated bound. Moving xb[r]
        // toward that bound needs an entering column whose direction of
        // motion is admissible for its own state; among those, the
        // smallest |d|/|α| keeps every reduced cost sign-feasible.
        let mut enter: Option<(usize, f64)> = None; // (col, ratio)
        for j in 0..tab.ncols() {
            let st = tab.state[j];
            if st == VarState::Basic || tab.lb[j] == tab.ub[j] {
                continue;
            }
            let alpha = tab.t[(r, j)];
            if alpha.abs() <= tol {
                continue;
            }
            let ok = match st {
                // below: xb[r] must increase, so an at-lower variable
                // (which can only increase) needs α < 0, and an at-upper
                // variable (which can only decrease) needs α > 0.
                VarState::AtLower => (alpha < 0.0) == below,
                VarState::AtUpper => (alpha > 0.0) == below,
                VarState::FreeZero => true,
                VarState::Basic => continue,
            };
            if !ok {
                continue;
            }
            let ratio = tab.d[j].abs() / alpha.abs();
            // Ties resolve to the smallest column index via scan order.
            if enter.is_none_or(|(_, best)| ratio < best - 1e-12) {
                enter = Some((j, ratio));
            }
        }
        let Some((q, _)) = enter else {
            return Ok(LpStatus::Infeasible);
        };

        // ---- pivot ----
        let bcol = tab.basis[r];
        let target = if below { tab.lb[bcol] } else { tab.ub[bcol] };
        let alpha = tab.t[(r, q)];
        let delta = (tab.xb[r] - target) / alpha;
        if !delta.is_finite() {
            return Err(LpError::Numerical("dual step non-finite"));
        }
        if delta.abs() <= 1e-12 {
            degenerate += 1;
            if degenerate > opts.stall_iters {
                bland = true;
            }
        } else {
            degenerate = 0;
            bland = false;
        }
        for i in 0..m {
            if i == r {
                continue;
            }
            let w = tab.t[(i, q)];
            if w.abs() > 0.0 {
                tab.xb[i] -= delta * w;
            }
        }
        let v_enter = tab.value(q) + delta;
        tab.state[bcol] = if below {
            VarState::AtLower
        } else {
            VarState::AtUpper
        };
        tab.pivot(r, q, v_enter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ConstraintSense;
    use crate::solve;

    fn sample() -> LpProblem {
        // minimize −x − 2y  s.t.  x + y ≤ 10, 0 ≤ x,y ≤ 8
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0, 8.0);
        let y = p.add_var("y", 0.0, 8.0);
        p.add_row(&[(x, 1.0), (y, 1.0)], ConstraintSense::Le, 10.0);
        p.set_objective(&[(x, -1.0), (y, -2.0)]);
        p
    }

    #[test]
    fn solve_keep_matches_solve() {
        let p = sample();
        let opts = SimplexOptions::default();
        let cold = solve(&p, &opts).unwrap();
        let (kept, warm) = solve_keep(&p, &opts).unwrap();
        assert_eq!(kept.status, LpStatus::Optimal);
        assert_eq!(kept.x, cold.x);
        assert_eq!(kept.objective, cold.objective);
        assert!(warm.is_some(), "feasible LP should yield a warm handle");
    }

    #[test]
    fn appended_cut_matches_cold_rebuild() {
        let mut p = sample();
        let opts = SimplexOptions::default();
        let (_, warm) = solve_keep(&p, &opts).unwrap();
        let mut warm = warm.unwrap();

        // Cut off the old optimum (2, 8): x + 3y ≤ 20 (new unique optimum
        // at (5, 5) — deliberately not parallel to the objective).
        warm.append_le_row(&[(0, 1.0), (1, 3.0)], 20.0).unwrap();
        let warm_sol = warm.resolve(&opts).unwrap();

        p.add_row(&[(0, 1.0), (1, 3.0)], ConstraintSense::Le, 20.0);
        let cold_sol = solve(&p, &opts).unwrap();

        assert_eq!(warm_sol.status, LpStatus::Optimal);
        assert!((warm_sol.objective - cold_sol.objective).abs() < 1e-9);
        for (a, b) in warm_sol.x.iter().zip(&cold_sol.x) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(warm_sol.row_duals.len(), 2);
    }

    #[test]
    fn tightened_bound_matches_cold_rebuild() {
        let p = sample();
        let opts = SimplexOptions::default();
        let (_, warm) = solve_keep(&p, &opts).unwrap();
        let mut warm = warm.unwrap();

        // Optimum sits at y = 8; force y ≤ 5.
        warm.set_var_bounds(1, 0.0, 5.0);
        let warm_sol = warm.resolve(&opts).unwrap();

        let mut p2 = sample();
        p2.set_bounds(1, 0.0, 5.0);
        let cold_sol = solve(&p2, &opts).unwrap();

        assert_eq!(warm_sol.status, LpStatus::Optimal);
        assert!((warm_sol.objective - cold_sol.objective).abs() < 1e-9);
        for (a, b) in warm_sol.x.iter().zip(&cold_sol.x) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn infeasible_tightening_is_detected() {
        // x + y ≥ 12 with both ≤ 8 is feasible; then cap both at 5.
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0, 8.0);
        let y = p.add_var("y", 0.0, 8.0);
        p.add_row(&[(x, 1.0), (y, 1.0)], ConstraintSense::Ge, 12.0);
        p.set_objective(&[(x, 1.0), (y, 1.0)]);
        let opts = SimplexOptions::default();
        let (sol, warm) = solve_keep(&p, &opts).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        let mut warm = warm.unwrap();
        warm.set_var_bounds(0, 0.0, 5.0);
        warm.set_var_bounds(1, 0.0, 5.0);
        let re = warm.resolve(&opts).unwrap();
        assert_eq!(re.status, LpStatus::Infeasible);
    }

    #[test]
    fn repeated_cut_appends_stay_consistent() {
        // Kelley-style: cut the optimum repeatedly; each warm resolve must
        // track the cold rebuild of the same row set.
        let mut p = sample();
        let opts = SimplexOptions::default();
        let (_, warm) = solve_keep(&p, &opts).unwrap();
        let mut warm = warm.unwrap();
        let cuts = [
            (vec![(0usize, 1.0), (1usize, 2.0)], 14.0),
            (vec![(0, 2.0), (1, 1.0)], 13.0),
            (vec![(0, 1.0), (1, 1.0)], 8.5),
        ];
        for (terms, rhs) in &cuts {
            warm.append_le_row(terms, *rhs).unwrap();
            let ws = warm.resolve(&opts).unwrap();
            p.add_row(terms, ConstraintSense::Le, *rhs);
            let cs = solve(&p, &opts).unwrap();
            assert_eq!(ws.status, cs.status);
            assert!((ws.objective - cs.objective).abs() < 1e-9);
        }
        assert_eq!(warm.num_rows(), 4);
    }
}
