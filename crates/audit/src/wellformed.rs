//! Level 1b: model well-formedness audit.
//!
//! The solver's exactness argument assumes more than convex curves — it
//! assumes the generated MINLP *is* the Table I model for the declared
//! layout: the SOS-1 allowed sets are usable, the temporal constraint
//! graph has the layout's shape, the node-budget inequalities admit a
//! point at all, and every `Convexity::Convex` declaration is true. This
//! pass re-derives each of those properties from the model itself, so a
//! drifted model builder (or a hostile instance) fails loudly before
//! branch-and-bound starts.

use crate::certificate::EpsilonPolicy;
use crate::convexity::{curvature, Curvature};
use hslb_cesm::Layout;
use hslb_model::{ConstraintSense, Convexity, Model, VarType};

/// The objective shapes the layout builder can produce (the audit crate
/// cannot depend on the pipeline's `Objective`, which lives above it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveShape {
    /// Makespan minimization (paper eq. 1): min T.
    MinMax,
    /// Total-time minimization (paper eq. 3) in epigraph form.
    SumTime,
}

/// What the caller declared about the instance; the audit checks the
/// model against this, never the other way around.
#[derive(Debug, Clone, Copy)]
pub struct ModelExpectations {
    pub layout: Layout,
    pub shape: ObjectiveShape,
    /// Node budget N (Table I line 4).
    pub total_nodes: i64,
    /// T_sync constraints requested (Table I lines 18–19).
    pub tsync: bool,
    /// An ocean allowed set was configured (Table I line 5).
    pub ocean_set: bool,
    /// An atmosphere allowed set was configured (Table I line 6).
    pub atm_set: bool,
}

/// One failed well-formedness check.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelViolation {
    /// Stable rule id: `sos`, `structure`, `convexity`, `budget`.
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.message)
    }
}

/// The well-formedness report for one generated model.
#[derive(Debug, Clone)]
pub struct ModelAudit {
    pub violations: Vec<ModelViolation>,
    /// Constraints whose `Convexity::Convex` declaration the structural
    /// verifier confirmed.
    pub convex_verified: usize,
    pub sos_sets_checked: usize,
    pub linear_rows_checked: usize,
}

impl ModelAudit {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for ModelAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "  model: {} ({} convex rows verified, {} SOS sets, {} linear rows)",
            if self.passed() {
                "well-formed"
            } else {
                "MALFORMED"
            },
            self.convex_verified,
            self.sos_sets_checked,
            self.linear_rows_checked,
        )?;
        for v in &self.violations {
            writeln!(f, "    violation: {v}")?;
        }
        Ok(())
    }
}

/// The constraint names the layout builder emits for an expectation, as
/// `(name, declared convexity)` pairs. This is the audit's independent
/// copy of the Table I structure — if the builder drifts, the mismatch
/// surfaces here.
fn expected_rows(e: &ModelExpectations) -> Vec<(String, Convexity)> {
    use Convexity::{Convex, Linear, Nonconvex};
    let mut rows: Vec<(String, Convexity)> = Vec::new();
    if e.ocean_set {
        rows.push(("ocn_pick_one".into(), Linear));
        rows.push(("ocn_link".into(), Linear));
    }
    if e.atm_set {
        rows.push(("atm_pick_one".into(), Linear));
        rows.push(("atm_link".into(), Linear));
    }
    match e.shape {
        ObjectiveShape::MinMax => match e.layout {
            Layout::Hybrid => {
                rows.push(("icelnd_ge_ice".into(), Convex));
                rows.push(("icelnd_ge_lnd".into(), Convex));
                rows.push(("total_ge_atm_branch".into(), Convex));
                rows.push(("total_ge_ocn".into(), Convex));
                if e.tsync {
                    rows.push(("sync_lnd_not_too_fast".into(), Nonconvex));
                    rows.push(("sync_lnd_not_too_slow".into(), Nonconvex));
                }
                rows.push(("budget".into(), Linear));
                rows.push(("icelnd_within_atm".into(), Linear));
            }
            Layout::SequentialWithOcean => {
                rows.push(("total_ge_seq".into(), Convex));
                rows.push(("total_ge_ocn".into(), Convex));
                for label in ["lnd", "ice", "atm"] {
                    rows.push((format!("{label}_within_rest"), Linear));
                }
            }
            Layout::FullySequential => {
                rows.push(("total_ge_all_seq".into(), Convex));
            }
        },
        ObjectiveShape::SumTime => {
            rows.push(("sum_epigraph".into(), Convex));
            match e.layout {
                Layout::Hybrid => {
                    rows.push(("budget".into(), Linear));
                    rows.push(("icelnd_within_atm".into(), Linear));
                }
                Layout::SequentialWithOcean => {
                    for label in ["lnd", "ice", "atm"] {
                        rows.push((format!("{label}_within_rest"), Linear));
                    }
                }
                Layout::FullySequential => {}
            }
        }
    }
    rows
}

/// Interval of a linear expression over the variable box.
fn linear_range(model: &Model, pairs: &[(usize, f64)], constant: f64) -> (f64, f64) {
    let mut lo = constant;
    let mut hi = constant;
    for &(v, k) in pairs {
        let (l, u) = model.bounds(v);
        if k >= 0.0 {
            lo += k * l;
            hi += k * u;
        } else {
            lo += k * u;
            hi += k * l;
        }
    }
    (lo, hi)
}

/// Node-count values a component variable can take: the SOS weights when
/// an allowed set is attached, else the (integer) bound interval.
enum AllowedValues {
    Set(Vec<f64>),
    Interval(f64, f64),
}

impl AllowedValues {
    /// Smallest value ≥ `min`, if any.
    fn smallest_at_least(&self, min: f64) -> Option<f64> {
        match self {
            AllowedValues::Set(vals) => vals.iter().copied().find(|&v| v >= min),
            AllowedValues::Interval(lo, hi) => {
                let v = lo.max(min).ceil();
                (v <= *hi).then_some(v)
            }
        }
    }
}

fn allowed_values(model: &Model, label: &str, var: Option<usize>) -> AllowedValues {
    for s in &model.sos1 {
        if s.name == format!("{label}_set") {
            return AllowedValues::Set(s.members.iter().map(|&(_, w)| w).collect());
        }
    }
    match var {
        Some(v) => {
            let (lo, hi) = model.bounds(v);
            AllowedValues::Interval(lo, hi)
        }
        None => AllowedValues::Interval(1.0, f64::INFINITY),
    }
}

fn find_var(model: &Model, name: &str) -> Option<usize> {
    (0..model.num_vars()).find(|&v| model.var_name(v) == name)
}

/// Audit a generated layout model against the declared expectations.
pub fn audit_model(model: &Model, expect: &ModelExpectations, eps: EpsilonPolicy) -> ModelAudit {
    let mut violations: Vec<ModelViolation> = Vec::new();
    let mut push = |rule: &'static str, message: String| {
        violations.push(ModelViolation { rule, message });
    };

    // --- SOS-1 allowed sets: nonempty, ordered, binary members, within
    // the node budget, pairwise disjoint.
    let nf = expect.total_nodes as f64;
    for s in &model.sos1 {
        if s.members.is_empty() {
            push("sos", format!("SOS-1 set `{}` is empty", s.name));
            continue;
        }
        let mut prev = f64::NEG_INFINITY;
        for &(v, w) in &s.members {
            if w <= prev {
                push(
                    "sos",
                    format!(
                        "SOS-1 set `{}` weights not strictly increasing at {w}",
                        s.name
                    ),
                );
            }
            prev = w;
            if !(1.0..=nf).contains(&w) {
                push(
                    "sos",
                    format!(
                        "SOS-1 set `{}` weight {w} outside the node budget [1, {}]",
                        s.name, expect.total_nodes
                    ),
                );
            }
            if v >= model.num_vars() {
                push(
                    "sos",
                    format!("SOS-1 set `{}` references unknown var {v}", s.name),
                );
            } else if model.var_type(v) != VarType::Binary {
                push(
                    "sos",
                    format!(
                        "SOS-1 set `{}` member `{}` is not binary",
                        s.name,
                        model.var_name(v)
                    ),
                );
            }
        }
    }
    for (i, a) in model.sos1.iter().enumerate() {
        for b in model.sos1.iter().skip(i + 1) {
            let overlap = a
                .members
                .iter()
                .any(|&(v, _)| b.members.iter().any(|&(w, _)| v == w));
            if overlap {
                push(
                    "sos",
                    format!("SOS-1 sets `{}` and `{}` share members", a.name, b.name),
                );
            }
        }
    }

    // --- Temporal structure: the constraint graph must match the
    // declared layout exactly — every expected row present with the
    // declared convexity class, no unexpected rows.
    let expected = expected_rows(expect);
    for (name, conv) in &expected {
        match model.constraints.iter().find(|c| &c.name == name) {
            None => push(
                "structure",
                format!(
                    "missing constraint `{name}` required by {:?}",
                    expect.layout
                ),
            ),
            Some(c) => {
                if std::mem::discriminant(&c.convexity) != std::mem::discriminant(conv) {
                    push(
                        "structure",
                        format!(
                            "constraint `{name}` declared {:?}, layout requires {:?}",
                            c.convexity, conv
                        ),
                    );
                }
            }
        }
    }
    for c in &model.constraints {
        if !expected.iter().any(|(name, _)| name == &c.name) {
            push(
                "structure",
                format!(
                    "unexpected constraint `{}` not in the {:?}/{:?} graph",
                    c.name, expect.layout, expect.shape
                ),
            );
        }
    }

    // --- Declared convexity verified structurally. `Linear` must extract
    // as affine; `Convex` must verify through the curvature rules in the
    // normalized g ≤ 0 orientation. `Nonconvex` rows are the solver's
    // problem (it branch-enforces them) — nothing to verify.
    let lb: Vec<f64> = (0..model.num_vars()).map(|v| model.bounds(v).0).collect();
    let ub: Vec<f64> = (0..model.num_vars()).map(|v| model.bounds(v).1).collect();
    let mut convex_verified = 0usize;
    for c in &model.constraints {
        match c.convexity {
            Convexity::Linear => {
                if !c.expr.is_linear() {
                    push(
                        "convexity",
                        format!("constraint `{}` declared Linear but is not affine", c.name),
                    );
                }
            }
            Convexity::Convex => {
                if c.expr.is_linear() {
                    convex_verified += 1;
                    continue;
                }
                let cur = curvature(&c.expr, &lb, &ub, eps);
                let ok = match c.sense {
                    ConstraintSense::Le => cur.is_convex_ok(),
                    ConstraintSense::Ge => matches!(
                        cur,
                        Curvature::Concave | Curvature::Affine | Curvature::Constant
                    ),
                    // A nonlinear equality can never be convex in g ≤ 0
                    // form (the compiler rejects it too).
                    ConstraintSense::Eq => false,
                };
                if ok {
                    convex_verified += 1;
                } else {
                    push(
                        "convexity",
                        format!(
                            "constraint `{}` declared Convex but verifies as {cur:?} \
                             (sense {:?})",
                            c.name, c.sense
                        ),
                    );
                }
            }
            Convexity::Nonconvex => {}
        }
    }

    // --- Node-budget inequalities: each linear row must admit a point of
    // the variable box on its own…
    let mut linear_rows_checked = 0usize;
    for c in &model.constraints {
        let Some(lin) = c.expr.as_linear() else {
            continue;
        };
        linear_rows_checked += 1;
        let (lo, hi) = linear_range(model, &lin.pairs(), lin.constant);
        let sat = match c.sense {
            ConstraintSense::Le => lo <= c.rhs,
            ConstraintSense::Ge => hi >= c.rhs,
            ConstraintSense::Eq => lo <= c.rhs && c.rhs <= hi,
        };
        if !sat {
            push(
                "budget",
                format!(
                    "linear row `{}` unsatisfiable over the bounds: \
                     range [{lo:.3}, {hi:.3}] vs rhs {:.3}",
                    c.name, c.rhs
                ),
            );
        }
    }

    // …and the layout's budget rows must be *mutually* satisfiable
    // against the memory floors and the discrete allowed sets.
    let floor = |name: &str| find_var(model, name).map(|v| model.bounds(v).0);
    if let (Some(f_lnd), Some(f_ice), Some(f_atm), Some(f_ocn)) = (
        floor("n_lnd"),
        floor("n_ice"),
        floor("n_atm"),
        floor("n_ocn"),
    ) {
        let atm_vals = allowed_values(model, "atm", find_var(model, "n_atm"));
        let ocn_vals = allowed_values(model, "ocn", find_var(model, "n_ocn"));
        match expect.layout {
            Layout::Hybrid => {
                // Need n_atm ≥ n_ice + n_lnd and n_atm + n_ocn ≤ N with
                // every variable at or above its floor.
                let need_atm = f_atm.max(f_ice + f_lnd);
                let ocn_min = ocn_vals.smallest_at_least(f_ocn);
                let atm_min = atm_vals.smallest_at_least(need_atm);
                match (atm_min, ocn_min) {
                    (Some(va), Some(vo)) if va + vo <= nf => {}
                    _ => push(
                        "budget",
                        format!(
                            "hybrid budget infeasible: no atmosphere value ≥ {need_atm:.0} \
                             and ocean value ≥ {f_ocn:.0} fit within {} nodes",
                            expect.total_nodes
                        ),
                    ),
                }
            }
            Layout::SequentialWithOcean => {
                let ocn_min = ocn_vals.smallest_at_least(f_ocn);
                match ocn_min {
                    Some(vo) => {
                        for (label, fl) in [("lnd", f_lnd), ("ice", f_ice), ("atm", f_atm)] {
                            if fl + vo > nf {
                                push(
                                    "budget",
                                    format!(
                                        "sequential budget infeasible: floor({label}) = {fl:.0} \
                                         plus smallest ocean {vo:.0} exceeds {} nodes",
                                        expect.total_nodes
                                    ),
                                );
                            }
                        }
                    }
                    None => push(
                        "budget",
                        format!("no ocean value at or above its floor {f_ocn:.0}"),
                    ),
                }
            }
            Layout::FullySequential => {
                for (label, fl) in [
                    ("lnd", f_lnd),
                    ("ice", f_ice),
                    ("atm", f_atm),
                    ("ocn", f_ocn),
                ] {
                    if fl > nf {
                        push(
                            "budget",
                            format!(
                                "floor({label}) = {fl:.0} exceeds the {} node budget",
                                expect.total_nodes
                            ),
                        );
                    }
                }
            }
        }
    } else {
        push(
            "structure",
            "model is missing one of the node variables n_lnd/n_ice/n_atm/n_ocn".to_string(),
        );
    }

    violations.sort_by(|a, b| (a.rule, &a.message).cmp(&(b.rule, &b.message)));
    ModelAudit {
        violations,
        convex_verified,
        sos_sets_checked: model.sos1.len(),
        linear_rows_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hslb_model::{Expr, ObjectiveSense};

    fn eps() -> EpsilonPolicy {
        EpsilonPolicy::default()
    }

    /// A hand-built MinMax/FullySequential model in the builder's shape.
    fn tiny_model(convex_curve: bool) -> Model {
        let mut m = Model::new();
        let n_ice = m.integer("n_ice", 1.0, 64.0).unwrap();
        let n_lnd = m.integer("n_lnd", 1.0, 64.0).unwrap();
        let n_atm = m.integer("n_atm", 1.0, 64.0).unwrap();
        let n_ocn = m.integer("n_ocn", 1.0, 64.0).unwrap();
        let t = m.continuous("T", 0.0, 1e9).unwrap();
        let term = |n| {
            if convex_curve {
                Expr::c(100.0) / Expr::var(n) + Expr::c(0.5) * Expr::var(n).pow(1.2)
            } else {
                Expr::c(100.0) / Expr::var(n) + Expr::c(-0.5) * Expr::var(n).pow(1.2)
            }
        };
        m.constrain(
            "total_ge_all_seq",
            term(n_ice) + term(n_lnd) + term(n_atm) + term(n_ocn) - Expr::var(t),
            ConstraintSense::Le,
            0.0,
            Convexity::Convex,
        )
        .unwrap();
        m.set_objective(Expr::var(t), ObjectiveSense::Minimize)
            .unwrap();
        m
    }

    fn expectations() -> ModelExpectations {
        ModelExpectations {
            layout: Layout::FullySequential,
            shape: ObjectiveShape::MinMax,
            total_nodes: 64,
            tsync: false,
            ocean_set: false,
            atm_set: false,
        }
    }

    #[test]
    fn well_formed_model_passes() {
        let audit = audit_model(&tiny_model(true), &expectations(), eps());
        assert!(audit.passed(), "{:?}", audit.violations);
        assert_eq!(audit.convex_verified, 1);
    }

    #[test]
    fn false_convex_declaration_is_caught() {
        let audit = audit_model(&tiny_model(false), &expectations(), eps());
        assert!(!audit.passed());
        assert!(audit.violations.iter().any(|v| v.rule == "convexity"));
    }

    #[test]
    fn missing_temporal_row_is_caught() {
        let mut e = expectations();
        e.layout = Layout::Hybrid; // expects icelnd_* rows the model lacks
        let audit = audit_model(&tiny_model(true), &e, eps());
        assert!(audit
            .violations
            .iter()
            .any(|v| v.rule == "structure" && v.message.contains("icelnd_ge_ice")));
        // The FullySequential row is now unexpected, too.
        assert!(audit
            .violations
            .iter()
            .any(|v| v.rule == "structure" && v.message.contains("total_ge_all_seq")));
    }

    #[test]
    fn unsatisfiable_budget_row_is_caught() {
        let mut m = tiny_model(true);
        // floors sum to 4 but demand n_ice + n_lnd ≥ … impossible row:
        let n_ice = 0;
        let n_lnd = 1;
        m.constrain(
            "budget",
            Expr::var(n_ice) + Expr::var(n_lnd),
            ConstraintSense::Le,
            1.0, // both floors are 1 ⇒ min LHS is 2 > 1
            Convexity::Linear,
        )
        .unwrap();
        let mut e = expectations();
        e.shape = ObjectiveShape::SumTime; // irrelevant; keeps row name legal
        let audit = audit_model(&m, &e, eps());
        assert!(audit
            .violations
            .iter()
            .any(|v| v.rule == "budget" && v.message.contains("budget")));
    }

    #[test]
    fn overlapping_sos_sets_are_caught() {
        let mut m = tiny_model(true);
        let z1 = m.binary("z1").unwrap();
        let z2 = m.binary("z2").unwrap();
        m.add_sos1("ocn_set", vec![(z1, 2.0), (z2, 4.0)]).unwrap();
        m.add_sos1("atm_set", vec![(z1, 8.0), (z2, 16.0)]).unwrap();
        let mut e = expectations();
        e.ocean_set = true;
        e.atm_set = true;
        let audit = audit_model(&m, &e, eps());
        assert!(audit
            .violations
            .iter()
            .any(|v| v.rule == "sos" && v.message.contains("share")));
    }

    #[test]
    fn sos_weight_above_budget_is_caught() {
        let mut m = tiny_model(true);
        let z1 = m.binary("z1").unwrap();
        let z2 = m.binary("z2").unwrap();
        m.add_sos1("ocn_set", vec![(z1, 2.0), (z2, 768.0)]).unwrap();
        let mut e = expectations();
        e.ocean_set = true;
        let audit = audit_model(&m, &e, eps());
        assert!(audit
            .violations
            .iter()
            .any(|v| v.rule == "sos" && v.message.contains("outside the node budget")));
    }

    #[test]
    fn violations_are_sorted_and_deterministic() {
        let mut e = expectations();
        e.layout = Layout::Hybrid;
        let a = audit_model(&tiny_model(false), &e, eps());
        let b = audit_model(&tiny_model(false), &e, eps());
        let msgs: Vec<String> = a.violations.iter().map(|v| v.to_string()).collect();
        assert_eq!(
            msgs,
            b.violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        );
        let mut sorted = msgs.clone();
        sorted.sort();
        assert_eq!(msgs, sorted);
    }
}
