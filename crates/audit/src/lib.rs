//! Static analysis for the HSLB pipeline.
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//!
//! The paper's global-optimality claim is a *static* property of the
//! instance: Quesada–Grossmann outer approximation is exact only when
//! every fitted performance term `T_j(n) = a/n + b·n^c + d` has
//! nonnegative coefficients and exponent ≥ 1, and the generated MINLP
//! actually has the Table I shape the proof assumes. The solver used to
//! trust both; this crate checks them.
//!
//! Two analysis levels:
//!
//! * **Level 1 — instance analysis** ([`audit_instance`]): runs over a
//!   fitted curve set plus the compiled-from [`hslb_model::Model`] before
//!   every solve and produces an [`InstanceAudit`]:
//!   * a [`ConvexityCertificate`] — per-component coefficient-sign and
//!     exponent checks under an explicit [`EpsilonPolicy`] for near-zero
//!     fitted coefficients;
//!   * a [`ModelAudit`] — SOS-1 allowed sets nonempty/disjoint/within the
//!     node budget, the constraint graph matches the declared layout's
//!     temporal structure, node-budget inequalities mutually satisfiable,
//!     and every `Convexity::Convex` declaration verified against the
//!     expression tree by a structural convexity checker
//!     ([`convexity::curvature`]).
//!
//!   A failed audit routes the instance to the degradation ladder's
//!   exhaustive rung instead of letting branch-and-bound claim a global
//!   optimum it cannot prove.
//!
//! * **Level 2 — source analysis** ([`source`], `audit-source` binary): a
//!   token-level scanner over the workspace's own `src/` trees enforcing
//!   project rules clippy cannot express (nondeterminism primitives in
//!   solver paths, float `==`/`!=` outside the tolerance helpers, lock
//!   acquisitions inside the multistart drain-lock critical section,
//!   telemetry reads feeding solver control flow). Files are lexed by
//!   [`lex`] — a hand-rolled std-only Rust lexer — so comments and
//!   string literals can neither create false findings nor mask real
//!   ones. Exceptions live in a reviewed allowlist file; diagnostics are
//!   deterministic and sorted.
//!
//! * **Level 3 — concurrency analysis** ([`locks`], same binary): lock-
//!   site discovery across the workspace, brace-scoped guard-lifetime
//!   tracking per function, and a cross-crate lock acquisition graph
//!   (edges "B acquired while a guard of A is live", including through
//!   direct intra-crate calls one level deep) with cycle detection,
//!   held-across-blocking-call detection, and rank-lattice checking
//!   against the service crate's `ranked` wrappers (DESIGN.md §16).
//!   Findings flow through the same allowlist under four rule ids:
//!   `unranked-lock`, `lock-cycle`, `lock-rank`, `lock-blocking`.

pub mod certificate;
pub mod convexity;
pub mod lex;
pub mod locks;
pub mod source;
pub mod wellformed;

pub use certificate::{
    certify, CoeffClass, CoefficientFinding, ComponentCertificate, ConvexityCertificate,
    EpsilonPolicy,
};
pub use convexity::{curvature, Curvature};
pub use wellformed::{audit_model, ModelAudit, ModelExpectations, ObjectiveShape};

use hslb_cesm::Component;
use hslb_model::Model;
use hslb_nlsq::ScalingCurve;

/// The combined Level-1 result for one solve: the fit-side certificate
/// plus the model-side well-formedness report.
#[derive(Debug, Clone)]
pub struct InstanceAudit {
    pub certificate: ConvexityCertificate,
    pub model: ModelAudit,
}

impl InstanceAudit {
    /// True when both analyses found nothing.
    pub fn passed(&self) -> bool {
        self.certificate.passed() && self.model.passed()
    }

    /// Total violation count across both analyses.
    pub fn violation_count(&self) -> usize {
        self.certificate.violation_count() + self.model.violations.len()
    }

    /// One-line machine-readable summary (threaded into solver stats).
    pub fn summary(&self) -> String {
        if self.passed() {
            format!(
                "pass: {} components certified convex, model well-formed",
                self.certificate.components.len()
            )
        } else {
            let mut parts: Vec<String> = self
                .certificate
                .components
                .iter()
                .filter(|c| !c.passed())
                .map(|c| format!("{}: {}", c.component, c.violations.join("; ")))
                .collect();
            parts.extend(self.model.violations.iter().map(|v| v.to_string()));
            format!("fail: {}", parts.join(" | "))
        }
    }
}

impl std::fmt::Display for InstanceAudit {
    /// Deterministic, diff-friendly report: one line per check, sorted by
    /// component then rule.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "instance audit: {}",
            if self.passed() { "PASS" } else { "FAIL" }
        )?;
        write!(f, "{}", self.certificate)?;
        write!(f, "{}", self.model)
    }
}

/// Run the full Level-1 instance analysis: certify the fitted curves and
/// audit the generated model against the declared layout expectations.
pub fn audit_instance(
    curves: &[(Component, ScalingCurve)],
    model: &Model,
    expect: &ModelExpectations,
) -> InstanceAudit {
    let eps = EpsilonPolicy::default();
    InstanceAudit {
        certificate: certify(curves, eps),
        model: audit_model(model, expect, eps),
    }
}
