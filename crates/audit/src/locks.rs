//! Level 3: the concurrency auditor — a cross-crate lock acquisition
//! graph with cycle, rank, and held-across-blocking-call checks.
//!
//! The serving stack is the concurrency-densest part of the repo: six
//! modules in `crates/service/src` hold mutex/condvar state, and ROADMAP
//! items 4–5 (drift-rebalancing control loop, sweep fan-out) only add
//! cross-lock interactions. Level 2's `lock-in-queue` rule polices one
//! anchored critical section; this module generalizes it:
//!
//! 1. **Lock-site discovery.** Every `.lock()` / `.try_lock()` (and
//!    `.read()` / `.write()` on receivers declared as `RwLock`) in the
//!    workspace becomes a node keyed `crate/receiver` — e.g. the
//!    admission queue's shard mutex is `service/queue`. Receiver-field
//!    naming is a repo convention the queue module already documents
//!    ("no helper indirection"), which is what makes name-keyed nodes
//!    sound here.
//! 2. **Guard-lifetime tracking.** Within each `fn` body, guards are
//!    tracked brace-scoped: a `let`-bound guard lives until its block
//!    closes, an explicit `drop(guard)`, or a consuming
//!    `Condvar::wait(guard)`; an unbound (temporary) guard lives to the
//!    end of its statement.
//! 3. **The acquisition graph.** An edge `A → B` means "a guard of A
//!    was live when B was acquired" — directly, or one level deep
//!    through a direct intra-crate call (`helper()` / `self.helper()` /
//!    `Type::helper(…)` where the callee's body acquires locks). One
//!    level is deliberate: the repo convention is that helpers either
//!    release before returning or *return* the guard (detected via a
//!    `…Guard` return type, e.g. the fit cache's `fn lock`); a full
//!    call graph would mostly add unresolvable dynamic-dispatch noise
//!    (see DESIGN.md §16).
//! 4. **Checks.**
//!    * `lock-cycle` — a cycle in the graph is a potential deadlock.
//!    * `lock-rank` — edges between locks with declared ranks (the
//!      service crate's `RankedMutex<T, { rank::NAME }>` wrappers) must
//!      go strictly low → high.
//!    * `lock-blocking` — no guard live across `thread::sleep`,
//!      `JoinHandle::join()`, channel `recv`/`recv_timeout`, listener
//!      `accept`, `TcpStream::connect`, stream/file `.read(`/`.write(`,
//!      or a `Condvar` wait consuming a *different* guard.
//!    * `unranked-lock` — every lock primitive in `crates/service/src`
//!      must be a ranked wrapper: raw `Mutex`/`RwLock`/`Condvar`
//!      identifiers are findings (the `ranked` module itself excepted —
//!      it is the trusted primitive layer, audited by its own runtime
//!      asserts and `tests/ranked.rs`).
//!
//! Findings route through the same `scripts/audit.allow` mechanism as
//! Level 2; the graph itself is dumped machine-readably by
//! `audit-source --json` (committed as `AUDIT_lockgraph.json`).
//!
//! Like every static analyzer this one is approximate — the lexer-level
//! facts (comments, strings, brace depth) are exact, while receiver
//! identity is name-based and temporaries are statement-scoped. The
//! approximations are chosen to be conservative for this codebase's
//! conventions and are pinned by the fixture tests at the bottom.

use crate::lex::{self, Kind, Tok};
use crate::source::Finding;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// A lock node in the acquisition graph.
#[derive(Debug, Clone, Default)]
pub struct LockNode {
    /// Declared rank, when the lock is a `RankedMutex` with a
    /// `rank::NAME` const-generic argument.
    pub rank: Option<u16>,
    /// The rank constant's name, for human-readable dumps.
    pub rank_name: Option<String>,
    /// Acquisition sites: (path, line), sorted.
    pub sites: Vec<(String, usize)>,
}

/// One acquisition-order edge: a guard of `from` was live when `to` was
/// acquired at `path:line` (through `via` when indirect).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub path: String,
    pub line: usize,
    /// The intra-crate callee for one-level call-through edges.
    pub via: Option<String>,
}

/// The cross-crate lock acquisition graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Node id (`crate/name`) → node.
    pub nodes: BTreeMap<String, LockNode>,
    /// Sorted, deduplicated edges.
    pub edges: Vec<LockEdge>,
}

/// The full Level 3 result.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    pub graph: LockGraph,
    /// Raw findings (the caller routes them through the allowlist),
    /// sorted by (path, line, rule).
    pub findings: Vec<Finding>,
}

/// Receiver names treated as blocking IO endpoints for `.read(` /
/// `.write(`, never as `RwLock` handles.
const IO_RECEIVERS: [&str; 9] = [
    "stream", "listener", "socket", "sock", "tcp", "file", "stdin", "stdout", "stderr",
];

/// Method receivers that are locked-but-not-locks (`io::stdout().lock()`).
const STDIO_RECEIVERS: [&str; 3] = ["stdout", "stderr", "stdin"];

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "loop", "return", "fn", "move", "in", "as", "let", "else",
];

fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("unknown").to_string()
    } else {
        "root".to_string()
    }
}

/// The trusted ranked-wrapper module: its internals hold the raw
/// primitives by design and are excluded from discovery and the
/// unranked-lock ident scan.
fn is_ranked_module(path: &str) -> bool {
    path.ends_with("service/src/ranked.rs")
}

fn in_service(path: &str) -> bool {
    path.starts_with("crates/service/src") || path.starts_with("crates/sweep/src")
}

/// Truncate a token stream at the first `#[cfg(test)]` attribute (test
/// modules end a file's audited region, same convention as Level 2).
fn truncate_at_cfg_test(toks: Vec<Tok>) -> Vec<Tok> {
    let pat: [(Kind, &str); 7] = [
        (Kind::Punct, "#"),
        (Kind::Punct, "["),
        (Kind::Ident, "cfg"),
        (Kind::Punct, "("),
        (Kind::Ident, "test"),
        (Kind::Punct, ")"),
        (Kind::Punct, "]"),
    ];
    for i in 0..toks.len().saturating_sub(pat.len()) {
        if pat
            .iter()
            .enumerate()
            .all(|(k, p)| toks[i + k].is(p.0, p.1))
        {
            return toks[..i].to_vec();
        }
    }
    toks
}

/// One parsed file.
struct FileCtx {
    path: String,
    krate: String,
    toks: Vec<Tok>,
    lines: Vec<String>,
}

/// One discovered function.
struct FnInfo {
    name: String,
    file: usize,
    /// Token range of the body, *inside* the outer braces.
    body: (usize, usize),
    /// The signature mentions a `…Guard` type: callers binding the
    /// result hold the callee's lock.
    returns_guard: bool,
    /// Locks acquired directly in the body (node ids, deduped).
    direct: Vec<String>,
}

/// Everything pass 0 learns about declarations.
#[derive(Default)]
struct Decls {
    /// (crate, name) → rank value, from `RankedMutex<…, { rank::N }>`
    /// field/binding declarations joined with the `ranked.rs` consts.
    ranks: BTreeMap<(String, String), (u16, String)>,
    /// Per-crate receiver names declared as `RwLock` (std or vendored):
    /// only these make `.read(`/`.write(` lock acquisitions.
    rwlock_names: BTreeMap<String, BTreeSet<String>>,
}

/// What one call-shaped token pattern means.
enum Event {
    /// Acquire the given lock node.
    Acquire { node: String, line: usize },
    /// `self.helper()`-style call that Level 3 resolves one level deep.
    Call { name: String, line: usize },
    /// A Condvar wait consuming the guard bound to `arg`.
    Wait { arg: Option<String>, line: usize },
    /// A blocking call (description for the finding message).
    Blocking { what: &'static str, line: usize },
}

/// A live guard during the pass-2 walk.
struct Guard {
    binding: Option<String>,
    locks: Vec<String>,
    depth: i64,
    temp: bool,
}

/// Analyze preloaded sources (pure; fixtures call this directly).
pub fn analyze_sources(sources: &[(String, String)]) -> LockAnalysis {
    let files: Vec<FileCtx> = sources
        .iter()
        .map(|(path, content)| FileCtx {
            path: path.clone(),
            krate: crate_of(path),
            toks: truncate_at_cfg_test(lex::lex(content)),
            lines: content.lines().map(|l| l.to_string()).collect(),
        })
        .collect();

    let decls = scan_decls(&files);
    let mut fns = scan_fns(&files);

    // Pass 1: per-function direct acquisitions (used for call-through).
    for f in fns.iter_mut() {
        let (file, body) = (f.file, f.body);
        let mut direct = BTreeSet::new();
        let ctx = &files[file];
        if is_ranked_module(&ctx.path) {
            continue;
        }
        let mut i = body.0;
        while i < body.1 {
            if let Some((ev, next)) = classify_at(ctx, &decls, i, body.1) {
                if let Event::Acquire { node, .. } = ev {
                    direct.insert(node);
                }
                i = next;
            } else {
                i += 1;
            }
        }
        f.direct = direct.into_iter().collect();
    }

    // Resolution maps: fn name → indices, same-file preferred.
    let mut by_file: BTreeMap<(usize, String), Vec<usize>> = BTreeMap::new();
    let mut by_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_file.entry((f.file, f.name.clone())).or_default().push(i);
        by_crate
            .entry((files[f.file].krate.clone(), f.name.clone()))
            .or_default()
            .push(i);
    }
    let resolve = |file: usize, name: &str| -> Vec<usize> {
        if let Some(v) = by_file.get(&(file, name.to_string())) {
            v.clone()
        } else {
            by_crate
                .get(&(files[file].krate.clone(), name.to_string()))
                .cloned()
                .unwrap_or_default()
        }
    };

    // Pass 2: guard tracking, edges, blocking findings.
    let mut analysis = LockAnalysis::default();
    let mut edges: BTreeSet<LockEdge> = BTreeSet::new();
    for f in &fns {
        let ctx = &files[f.file];
        if is_ranked_module(&ctx.path) {
            continue;
        }
        walk_fn(ctx, &decls, f, &fns, &resolve, &mut analysis, &mut edges);
    }
    analysis.graph.edges = edges.into_iter().collect();

    // Node table: every acquisition site plus every ranked declaration.
    for ((krate, name), (rank, rank_name)) in &decls.ranks {
        let node = analysis
            .graph
            .nodes
            .entry(format!("{krate}/{name}"))
            .or_default();
        node.rank = Some(*rank);
        node.rank_name = Some(rank_name.clone());
    }
    for n in analysis.graph.nodes.values_mut() {
        n.sites.sort();
        n.sites.dedup();
    }

    unranked_lock_scan(&files, &decls, &mut analysis);
    rank_check(&mut analysis);
    cycle_check(&mut analysis);

    analysis
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    analysis
}

/// Analyze the workspace rooted at `root` (same file set as Level 2).
pub fn analyze_workspace(root: &Path) -> std::io::Result<LockAnalysis> {
    Ok(analyze_sources(&crate::source::workspace_sources(root)?))
}

// ---------------------------------------------------------------------
// Pass 0: declarations.
// ---------------------------------------------------------------------

fn scan_decls(files: &[FileCtx]) -> Decls {
    let mut decls = Decls::default();
    // Rank constants live in the service crate's ranked module:
    // `pub const NAME: u16 = N;`.
    let mut consts: BTreeMap<String, u16> = BTreeMap::new();
    for ctx in files.iter().filter(|c| is_ranked_module(&c.path)) {
        let t = &ctx.toks;
        for i in 0..t.len().saturating_sub(6) {
            if t[i].ident("const")
                && t[i + 1].kind == Kind::Ident
                && t[i + 2].punct(":")
                && t[i + 3].ident("u16")
                && t[i + 4].punct("=")
                && t[i + 5].kind == Kind::Num
            {
                if let Ok(v) = t[i + 5].text.parse::<u16>() {
                    consts.insert(t[i + 1].text.clone(), v);
                }
            }
        }
    }

    for ctx in files {
        let t = &ctx.toks;
        for i in 0..t.len() {
            if t[i].kind != Kind::Ident {
                continue;
            }
            let ty = t[i].text.as_str();
            let is_ranked = ty == "RankedMutex" || ty == "RankedCondvar";
            let is_rwlock = ty == "RwLock";
            if !is_ranked && !is_rwlock {
                continue;
            }
            let Some(name) = decl_name_before(t, i) else {
                continue;
            };
            if is_rwlock {
                decls
                    .rwlock_names
                    .entry(ctx.krate.clone())
                    .or_default()
                    .insert(name);
            } else if let Some(rank_name) = generic_rank_ref(t, i) {
                if let Some(&v) = consts.get(&rank_name) {
                    decls
                        .ranks
                        .insert((ctx.krate.clone(), name), (v, rank_name));
                }
            }
        }
    }
    decls
}

/// Walk back from a type identifier to the `name :` it annotates,
/// skipping wrapper paths (`Arc<`, `std::sync::`, `&`, lifetimes).
fn decl_name_before(t: &[Tok], ty_idx: usize) -> Option<String> {
    let mut j = ty_idx;
    for _ in 0..8 {
        if j == 0 {
            return None;
        }
        j -= 1;
        let tok = &t[j];
        let skip = tok.kind == Kind::Lifetime
            || (tok.kind == Kind::Punct && matches!(tok.text.as_str(), "<" | "&" | "::"))
            || (tok.kind == Kind::Ident
                && matches!(
                    tok.text.as_str(),
                    "Arc" | "Box" | "std" | "sync" | "parking_lot" | "crate" | "ranked" | "super"
                ));
        if skip {
            continue;
        }
        if tok.punct(":") && j > 0 && t[j - 1].kind == Kind::Ident {
            return Some(t[j - 1].text.clone());
        }
        return None;
    }
    None
}

/// Inside the generic arguments after `RankedMutex` / `RankedCondvar`,
/// find the trailing `rank::NAME` const argument.
fn generic_rank_ref(t: &[Tok], ty_idx: usize) -> Option<String> {
    if ty_idx + 1 >= t.len() || !t[ty_idx + 1].punct("<") {
        return None;
    }
    let mut angle = 1i32;
    let mut i = ty_idx + 2;
    let mut found = None;
    while i < t.len() && angle > 0 && i < ty_idx + 256 {
        match (&t[i].kind, t[i].text.as_str()) {
            (Kind::Punct, "<") => angle += 1,
            (Kind::Punct, ">") => angle -= 1,
            (Kind::Punct, ";") => break,
            (Kind::Ident, "rank")
                if i + 2 < t.len() && t[i + 1].punct("::") && t[i + 2].kind == Kind::Ident =>
            {
                found = Some(t[i + 2].text.clone());
            }
            _ => {}
        }
        i += 1;
    }
    found
}

// ---------------------------------------------------------------------
// Function discovery.
// ---------------------------------------------------------------------

fn scan_fns(files: &[FileCtx]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    for (fi, ctx) in files.iter().enumerate() {
        let t = &ctx.toks;
        let mut i = 0;
        while i + 1 < t.len() {
            if !(t[i].ident("fn") && t[i + 1].kind == Kind::Ident) {
                i += 1;
                continue;
            }
            let name = t[i + 1].text.clone();
            // Find the body `{`: skip generic params / return types,
            // where `<>` depth guards against const-generic braces in
            // the signature (`-> RankedGuard<'_, T, { rank::X }>`).
            let mut angle = 0i32;
            let mut j = i + 2;
            let mut body_open = None;
            while j < t.len() {
                match (&t[j].kind, t[j].text.as_str()) {
                    (Kind::Punct, "<") => angle += 1,
                    (Kind::Punct, ">") => angle = (angle - 1).max(0),
                    (Kind::Punct, ";") if angle == 0 => break, // trait decl
                    (Kind::Punct, "{") if angle == 0 => {
                        body_open = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = body_open else {
                i = j.max(i + 2);
                continue;
            };
            // Match the closing brace.
            let mut depth = 1i64;
            let mut k = open + 1;
            while k < t.len() && depth > 0 {
                if t[k].punct("{") {
                    depth += 1;
                } else if t[k].punct("}") {
                    depth -= 1;
                }
                k += 1;
            }
            let returns_guard = t[i + 2..open]
                .iter()
                .any(|tok| tok.kind == Kind::Ident && tok.text.ends_with("Guard"));
            fns.push(FnInfo {
                name,
                file: fi,
                body: (open + 1, k.saturating_sub(1)),
                returns_guard,
                direct: Vec::new(),
            });
            // Continue scanning *inside* the body too: nested fns are
            // rare but legal. Outer guard state never leaks into them in
            // practice (no guard is ever live at a nested-fn definition
            // in this repo).
            i = open + 1;
        }
    }
    fns
}

// ---------------------------------------------------------------------
// Event classification.
// ---------------------------------------------------------------------

/// The last identifier of the receiver chain ending just before token
/// `dot` (`conn.stream` → `stream`, `shards[i].queue` → `queue`).
fn receiver_before(t: &[Tok], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let prev = &t[dot - 1];
    if prev.kind == Kind::Ident {
        return Some(prev.text.clone());
    }
    if prev.punct(")") || prev.punct("]") {
        // Walk back over the bracketed group to the ident before it.
        let (close, open) = if prev.punct(")") {
            (")", "(")
        } else {
            ("]", "[")
        };
        let mut depth = 1i64;
        let mut j = dot - 1;
        while j > 0 && depth > 0 {
            j -= 1;
            if t[j].punct(close) {
                depth += 1;
            } else if t[j].punct(open) {
                depth -= 1;
            }
        }
        if j > 0 && t[j - 1].kind == Kind::Ident {
            return Some(t[j - 1].text.clone());
        }
    }
    None
}

/// True when the receiver is a lone `self` (helper call), not a field
/// chain ending in `self` (impossible) — i.e. `self.m(…)`.
fn bare_self(t: &[Tok], dot: usize) -> bool {
    dot >= 1 && t[dot - 1].ident("self") && (dot < 2 || !t[dot - 2].punct("."))
}

/// Classify the token pattern starting at `i` (within `end`). Returns
/// the event and the index to resume scanning at.
fn classify_at(ctx: &FileCtx, decls: &Decls, i: usize, end: usize) -> Option<(Event, usize)> {
    let t = &ctx.toks;
    // `thread::sleep(` — blocking.
    if t[i].ident("sleep")
        && i >= 2
        && t[i - 1].punct("::")
        && t[i - 2].ident("thread")
        && i + 1 < end
        && t[i + 1].punct("(")
    {
        return Some((
            Event::Blocking {
                what: "thread::sleep",
                line: t[i].line,
            },
            i + 2,
        ));
    }
    // `TcpStream::connect(` — blocking.
    if t[i].ident("connect")
        && i >= 2
        && t[i - 1].punct("::")
        && t[i - 2].ident("TcpStream")
        && i + 1 < end
        && t[i + 1].punct("(")
    {
        return Some((
            Event::Blocking {
                what: "TcpStream::connect",
                line: t[i].line,
            },
            i + 2,
        ));
    }
    // Method-call shapes: `. m (`.
    if !t[i].punct(".") || i + 2 >= end || t[i + 1].kind != Kind::Ident || !t[i + 2].punct("(") {
        return None;
    }
    let m = t[i + 1].text.as_str();
    let line = t[i + 1].line;
    let next = i + 3;
    match m {
        "lock" | "try_lock" => {
            if bare_self(t, i) {
                return Some((
                    Event::Call {
                        name: m.to_string(),
                        line,
                    },
                    next,
                ));
            }
            let recv = receiver_before(t, i).unwrap_or_else(|| "anon".to_string());
            if STDIO_RECEIVERS.contains(&recv.as_str()) {
                return None;
            }
            Some((
                Event::Acquire {
                    node: format!("{}/{}", ctx.krate, recv),
                    line,
                },
                next,
            ))
        }
        "read" | "write" => {
            let recv = receiver_before(t, i)?;
            let is_rwlock = decls
                .rwlock_names
                .get(&ctx.krate)
                .is_some_and(|s| s.contains(&recv));
            if is_rwlock {
                Some((
                    Event::Acquire {
                        node: format!("{}/{}", ctx.krate, recv),
                        line,
                    },
                    next,
                ))
            } else if IO_RECEIVERS.contains(&recv.as_str()) {
                Some((
                    Event::Blocking {
                        what: "stream/file IO",
                        line,
                    },
                    next,
                ))
            } else {
                None
            }
        }
        "wait" | "wait_timeout" | "wait_while" | "wait_timeout_while" => {
            let arg = (t[i + 3].kind == Kind::Ident).then(|| t[i + 3].text.clone());
            Some((Event::Wait { arg, line }, next))
        }
        "join" => {
            // `JoinHandle::join()` takes no arguments; `path.join(x)` and
            // `slice.join(sep)` always pass one.
            if i + 3 < end && t[i + 3].punct(")") {
                Some((
                    Event::Blocking {
                        what: "JoinHandle::join",
                        line,
                    },
                    next,
                ))
            } else {
                None
            }
        }
        "recv" | "recv_timeout" => Some((
            Event::Blocking {
                what: "channel recv",
                line,
            },
            next,
        )),
        "accept" => Some((
            Event::Blocking {
                what: "listener accept",
                line,
            },
            next,
        )),
        _ => {
            if bare_self(t, i) {
                Some((
                    Event::Call {
                        name: m.to_string(),
                        line,
                    },
                    next,
                ))
            } else {
                None
            }
        }
    }
}

/// Direct non-method call shapes for call-through resolution:
/// `helper(` or `Type::helper(` (receiver-typed method calls other than
/// `self.` are skipped — the receiver's type is unknown statically).
fn plain_call_at(t: &[Tok], i: usize, end: usize) -> Option<(String, usize)> {
    if t[i].kind != Kind::Ident || i + 1 >= end || !t[i + 1].punct("(") {
        return None;
    }
    let name = t[i].text.as_str();
    if CALL_KEYWORDS.contains(&name) {
        return None;
    }
    if i >= 1 {
        if t[i - 1].punct(".") {
            return None; // method call: handled by classify_at
        }
        if t[i - 1].punct("::") {
            // `Type::helper(` or `Self::helper(` — resolve; `std::…`
            // paths fail resolution harmlessly.
            return Some((name.to_string(), t[i].line));
        }
    }
    Some((name.to_string(), t[i].line))
}

// ---------------------------------------------------------------------
// Pass 2: guard tracking.
// ---------------------------------------------------------------------

/// The binding target of the statement containing token `at`:
/// `let [mut] x =`, `let (x, …) =`, `if let Ok(x) =`, or `x = …`.
fn stmt_binding(t: &[Tok], stmt_start: usize, at: usize) -> Option<String> {
    let mut j = stmt_start;
    // Skip `if` / `while` heads so `if let` / `while let` bind.
    while j < at && (t[j].ident("if") || t[j].ident("while")) {
        j += 1;
    }
    if j < at && t[j].ident("let") {
        j += 1;
        if j < at && t[j].ident("mut") {
            j += 1;
        }
        if j < at && t[j].kind == Kind::Ident {
            let name = t[j].text.clone();
            if j + 1 < at && (t[j + 1].punct(":") || t[j + 1].punct("=")) {
                if name == "_" {
                    return None;
                }
                return Some(name);
            }
            // Destructure through `Ok(` / `Some(` / `(`.
        }
        // First plain ident inside the pattern, skipping `mut`/`_`.
        let mut k = j;
        while k < at && !t[k].punct("=") {
            if t[k].kind == Kind::Ident
                && !t[k].ident("mut")
                && t[k].text != "_"
                && !t[k]
                    .text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase())
            {
                return Some(t[k].text.clone());
            }
            k += 1;
        }
        return None;
    }
    if j + 1 < at && t[j].kind == Kind::Ident && t[j + 1].punct("=") {
        return Some(t[j].text.clone());
    }
    None
}

/// Index just past the `)` matching the `(` at `open`.
fn match_paren(t: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 1i64;
    let mut j = open + 1;
    while j < end && depth > 0 {
        if t[j].punct("(") {
            depth += 1;
        } else if t[j].punct(")") {
            depth -= 1;
        }
        j += 1;
    }
    j
}

/// Chain adapters through which the lock guard itself flows to the
/// binding (`.lock().unwrap_or_else(|e| e.into_inner())`). Anything
/// else — `.clone()`, `.len()`, a field access — derives a *value*, and
/// the guard dies as a temporary at the end of the statement.
const GUARD_PRESERVING: [&str; 4] = ["unwrap", "expect", "unwrap_or_else", "map_err"];

/// Whether the method chain continuing after the call whose `(` is at
/// `open` still yields the guard (so a `let` binding holds the lock).
fn chain_yields_guard(t: &[Tok], open: usize, end: usize) -> bool {
    let mut j = match_paren(t, open, end);
    loop {
        if j + 2 < end && t[j].punct(".") && t[j + 1].kind == Kind::Ident && t[j + 2].punct("(") {
            if GUARD_PRESERVING.contains(&t[j + 1].text.as_str()) {
                j = match_paren(t, j + 2, end);
                continue;
            }
            return false;
        }
        if j + 1 < end && t[j].punct(".") {
            return false; // field access / tuple index — a copied value
        }
        return true;
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_fn(
    ctx: &FileCtx,
    decls: &Decls,
    f: &FnInfo,
    fns: &[FnInfo],
    resolve: &dyn Fn(usize, &str) -> Vec<usize>,
    analysis: &mut LockAnalysis,
    edges: &mut BTreeSet<LockEdge>,
) {
    let t = &ctx.toks;
    let mut depth: i64 = 1;
    let mut guards: Vec<Guard> = Vec::new();
    let mut stmt_start = f.body.0;
    let text_at = |line: usize| -> String {
        ctx.lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let blocking_finding = |analysis: &mut LockAnalysis, lock: &str, what: &str, line: usize| {
        analysis.findings.push(Finding {
            rule: "lock-blocking",
            path: ctx.path.clone(),
            line,
            text: text_at(line),
            message: format!("guard of `{lock}` held across a blocking call ({what})"),
        });
    };

    let mut i = f.body.0;
    while i < f.body.1 {
        let tok = &t[i];
        if tok.punct("{") {
            depth += 1;
            stmt_start = i + 1;
            i += 1;
            continue;
        }
        if tok.punct("}") {
            depth -= 1;
            guards.retain(|g| !g.temp && g.depth <= depth);
            stmt_start = i + 1;
            i += 1;
            continue;
        }
        if tok.punct(";") {
            guards.retain(|g| !g.temp);
            stmt_start = i + 1;
            i += 1;
            continue;
        }
        // Explicit `drop(guard)`.
        if tok.ident("drop")
            && i + 3 < f.body.1
            && t[i + 1].punct("(")
            && t[i + 2].kind == Kind::Ident
            && t[i + 3].punct(")")
        {
            let name = &t[i + 2].text;
            guards.retain(|g| g.binding.as_deref() != Some(name.as_str()));
            i += 4;
            continue;
        }

        if let Some((ev, next)) = classify_at(ctx, decls, i, f.body.1) {
            match ev {
                Event::Acquire { node, line } => {
                    for g in &guards {
                        for from in &g.locks {
                            edges.insert(LockEdge {
                                from: from.clone(),
                                to: node.clone(),
                                path: ctx.path.clone(),
                                line,
                                via: None,
                            });
                        }
                    }
                    analysis
                        .graph
                        .nodes
                        .entry(node.clone())
                        .or_default()
                        .sites
                        .push((ctx.path.clone(), line));
                    // A `let` only holds the guard when the chain after
                    // `.lock()` yields it — `….lock().….clone()` binds a
                    // copied value and the guard dies at the `;`.
                    let binding = stmt_binding(t, stmt_start, i)
                        .filter(|_| chain_yields_guard(t, i + 2, f.body.1));
                    let temp = binding.is_none();
                    guards.push(Guard {
                        binding,
                        locks: vec![node],
                        depth,
                        temp,
                    });
                }
                Event::Call { name, line } => {
                    let callees = resolve(f.file, &name);
                    let mut callee_locks: BTreeSet<String> = BTreeSet::new();
                    let mut callee_returns_guard = false;
                    for c in &callees {
                        callee_locks.extend(fns[*c].direct.iter().cloned());
                        callee_returns_guard |= fns[*c].returns_guard;
                    }
                    if !callee_locks.is_empty() {
                        for g in &guards {
                            for from in &g.locks {
                                for to in &callee_locks {
                                    edges.insert(LockEdge {
                                        from: from.clone(),
                                        to: to.clone(),
                                        path: ctx.path.clone(),
                                        line,
                                        via: Some(name.clone()),
                                    });
                                }
                            }
                        }
                        if callee_returns_guard {
                            let binding = stmt_binding(t, stmt_start, i)
                                .filter(|_| chain_yields_guard(t, i + 2, f.body.1));
                            let temp = binding.is_none();
                            guards.push(Guard {
                                binding,
                                locks: callee_locks.into_iter().collect(),
                                depth,
                                temp,
                            });
                        }
                    }
                }
                Event::Wait { arg, line } => {
                    // Guards other than the one consumed by the wait are
                    // held across the block — the "wait on a different
                    // mutex" deadlock shape.
                    let consumed = arg.as_deref();
                    let mut consumed_locks: Vec<String> = Vec::new();
                    for g in &guards {
                        if g.binding.as_deref() == consumed && consumed.is_some() {
                            consumed_locks = g.locks.clone();
                        } else {
                            for l in &g.locks {
                                blocking_finding(analysis, l, "Condvar wait on another lock", line);
                            }
                        }
                    }
                    if let Some(name) = consumed {
                        guards.retain(|g| g.binding.as_deref() != Some(name));
                        // `st = cv.wait(st)`-style rebinding keeps the
                        // guard live.
                        if let Some(rebound) = stmt_binding(t, stmt_start, i)
                            .filter(|_| chain_yields_guard(t, i + 2, f.body.1))
                        {
                            if !consumed_locks.is_empty() {
                                guards.push(Guard {
                                    binding: Some(rebound),
                                    locks: consumed_locks,
                                    depth,
                                    temp: false,
                                });
                            }
                        }
                    }
                }
                Event::Blocking { what, line } => {
                    for g in &guards {
                        for l in &g.locks {
                            blocking_finding(analysis, l, what, line);
                        }
                    }
                }
            }
            i = next;
            continue;
        }

        // Plain / qualified call-through (`helper(…)`, `Type::helper(…)`).
        if !guards.is_empty() {
            if let Some((name, line)) = plain_call_at(t, i, f.body.1) {
                let callees = resolve(f.file, &name);
                let mut callee_locks: BTreeSet<String> = BTreeSet::new();
                for c in &callees {
                    callee_locks.extend(fns[*c].direct.iter().cloned());
                }
                for g in &guards {
                    for from in &g.locks {
                        for to in &callee_locks {
                            edges.insert(LockEdge {
                                from: from.clone(),
                                to: to.clone(),
                                path: ctx.path.clone(),
                                line,
                                via: Some(name.clone()),
                            });
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Checks.
// ---------------------------------------------------------------------

/// Raw `Mutex` / `RwLock` / `Condvar` identifiers in the service crate
/// (outside the ranked module) are findings: every service lock must be
/// a ranked wrapper so both the runtime asserts and the rank lattice
/// cover it.
fn unranked_lock_scan(files: &[FileCtx], _decls: &Decls, analysis: &mut LockAnalysis) {
    for ctx in files {
        if !in_service(&ctx.path) || is_ranked_module(&ctx.path) {
            continue;
        }
        for tok in &ctx.toks {
            if tok.kind == Kind::Ident
                && matches!(tok.text.as_str(), "Mutex" | "RwLock" | "Condvar")
            {
                analysis.findings.push(Finding {
                    rule: "unranked-lock",
                    path: ctx.path.clone(),
                    line: tok.line,
                    text: ctx
                        .lines
                        .get(tok.line.saturating_sub(1))
                        .map(|l| l.trim().to_string())
                        .unwrap_or_default(),
                    message: format!(
                        "raw `{}` in the service crate: use the ranked wrappers \
                         (`ranked::RankedMutex` / `ranked::RankedCondvar`, DESIGN.md §16)",
                        tok.text
                    ),
                });
            }
        }
    }
}

/// Every edge between ranked locks must go strictly low → high.
fn rank_check(analysis: &mut LockAnalysis) {
    let mut findings = Vec::new();
    for e in &analysis.graph.edges {
        let (Some(from), Some(to)) = (
            analysis.graph.nodes.get(&e.from).and_then(|n| n.rank),
            analysis.graph.nodes.get(&e.to).and_then(|n| n.rank),
        ) else {
            continue;
        };
        if from >= to {
            findings.push(Finding {
                rule: "lock-rank",
                path: e.path.clone(),
                line: e.line,
                text: String::new(),
                message: format!(
                    "rank inversion: `{}` (rank {from}) held while acquiring `{}` (rank {to}){}",
                    e.from,
                    e.to,
                    e.via
                        .as_ref()
                        .map(|v| format!(" via `{v}()`"))
                        .unwrap_or_default()
                ),
            });
        }
    }
    analysis.findings.extend(findings);
}

/// DFS cycle detection over the acquisition graph: any cycle is a
/// potential deadlock (each back edge reported once, at its site).
fn cycle_check(analysis: &mut LockAnalysis) {
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in &analysis.graph.edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<&str, Color> = BTreeMap::new();
    for node in analysis.graph.nodes.keys() {
        color.insert(node.as_str(), Color::White);
    }
    for e in &analysis.graph.edges {
        color.entry(e.from.as_str()).or_insert(Color::White);
        color.entry(e.to.as_str()).or_insert(Color::White);
    }
    let mut findings = Vec::new();
    let roots: Vec<&str> = color.keys().copied().collect();
    for root in roots {
        if color[root] != Color::White {
            continue;
        }
        // Iterative DFS with an explicit path stack.
        let mut stack: Vec<(&str, usize)> = vec![(root, 0)];
        let mut path: Vec<&str> = vec![root];
        color.insert(root, Color::Gray);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let out = adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *next < out.len() {
                let e = out[*next];
                *next += 1;
                let to = e.to.as_str();
                match color.get(to).copied().unwrap_or(Color::White) {
                    Color::Gray => {
                        let start = path.iter().position(|&n| n == to).unwrap_or(0);
                        let mut cycle: Vec<&str> = path[start..].to_vec();
                        cycle.push(to);
                        findings.push(Finding {
                            rule: "lock-cycle",
                            path: e.path.clone(),
                            line: e.line,
                            text: String::new(),
                            message: format!(
                                "potential deadlock: lock acquisition cycle {}",
                                cycle.join(" -> ")
                            ),
                        });
                    }
                    Color::White => {
                        color.insert(to, Color::Gray);
                        stack.push((to, 0));
                        path.push(to);
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
                path.pop();
            }
        }
    }
    analysis.findings.extend(findings);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, code: &str) -> (String, String) {
        (path.to_string(), code.to_string())
    }

    fn rules(a: &LockAnalysis) -> Vec<&str> {
        a.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn two_lock_cycle_is_detected() {
        let a = analyze_sources(&[src(
            "crates/hslb/src/x.rs",
            "\
fn forward(s: &S) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    use_both(a, b);
}
fn backward(s: &S) {
    let b = s.beta.lock();
    let a = s.alpha.lock();
    use_both(a, b);
}
",
        )]);
        assert_eq!(a.graph.edges.len(), 2, "{:?}", a.graph.edges);
        assert!(
            rules(&a).contains(&"lock-cycle"),
            "expected a cycle finding: {:?}",
            a.findings
        );
        assert!(a
            .findings
            .iter()
            .any(|f| f.rule == "lock-cycle" && f.message.contains("hslb/alpha")));
    }

    #[test]
    fn ordered_nesting_produces_edges_but_no_cycle() {
        let a = analyze_sources(&[src(
            "crates/hslb/src/x.rs",
            "\
fn forward(s: &S) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    use_both(a, b);
}
",
        )]);
        assert_eq!(a.graph.edges.len(), 1);
        assert_eq!(a.graph.edges[0].from, "hslb/alpha");
        assert_eq!(a.graph.edges[0].to, "hslb/beta");
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn guard_across_sleep_is_flagged() {
        let a = analyze_sources(&[src(
            "crates/hslb/src/x.rs",
            "\
fn f(s: &S) {
    let g = s.state.lock();
    std::thread::sleep(d);
    drop(g);
}
",
        )]);
        assert_eq!(rules(&a), vec!["lock-blocking"], "{:?}", a.findings);
        assert!(a.findings[0].message.contains("thread::sleep"));
        assert_eq!(a.findings[0].line, 3);
    }

    #[test]
    fn scoped_guard_does_not_reach_the_sleep() {
        let a = analyze_sources(&[src(
            "crates/hslb/src/x.rs",
            "\
fn f(s: &S) {
    {
        let g = s.state.lock();
        g.touch();
    }
    std::thread::sleep(d);
}
",
        )]);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn dropped_guard_does_not_reach_the_join() {
        let a = analyze_sources(&[src(
            "crates/hslb/src/x.rs",
            "\
fn f(s: &S) {
    let g = s.workers.lock();
    drop(g);
    h.join();
}
",
        )]);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        // …while a held guard is flagged, and `path.join(\"x\")` is not a
        // thread join.
        let a = analyze_sources(&[src(
            "crates/hslb/src/x.rs",
            "\
fn f(s: &S) {
    let g = s.workers.lock();
    let p = dir.join(\"x\");
    h.join();
    drop(g);
    use_it(p);
}
",
        )]);
        assert_eq!(rules(&a), vec!["lock-blocking"], "{:?}", a.findings);
        assert_eq!(a.findings[0].line, 4);
    }

    #[test]
    fn condvar_wait_on_own_guard_is_clean_rebind_included() {
        let a = analyze_sources(&[src(
            "crates/service/src/q.rs",
            "\
fn pop(shard: &Shard) {
    let mut st = shard.queue.lock();
    loop {
        st = shard.available.wait(st);
    }
}
",
        )]);
        assert!(
            a.findings.iter().all(|f| f.rule != "lock-blocking"),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn condvar_wait_with_foreign_guard_is_flagged() {
        let a = analyze_sources(&[src(
            "crates/hslb/src/x.rs",
            "\
fn f(s: &S) {
    let other = s.cache.lock();
    let mut st = s.queue.lock();
    st = s.available.wait(st);
    drop(other);
}
",
        )]);
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == "lock-blocking" && f.message.contains("hslb/cache")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn call_through_edge_one_level() {
        let a = analyze_sources(&[src(
            "crates/hslb/src/x.rs",
            "\
fn outer(s: &S) {
    let g = s.alpha.lock();
    helper(s);
    drop(g);
}
fn helper(s: &S) {
    let h = s.beta.lock();
    h.touch();
}
",
        )]);
        assert_eq!(a.graph.edges.len(), 1, "{:?}", a.graph.edges);
        let e = &a.graph.edges[0];
        assert_eq!(
            (e.from.as_str(), e.to.as_str()),
            ("hslb/alpha", "hslb/beta")
        );
        assert_eq!(e.via.as_deref(), Some("helper"));
    }

    #[test]
    fn guard_returning_helper_binds_the_callee_lock() {
        // The fit-cache idiom: `fn lock(&self) -> MutexGuard<…>`.
        let a = analyze_sources(&[src(
            "crates/hslb/src/x.rs",
            "\
fn lock(s: &S) -> MutexGuard<'_, State> {
    s.inner.lock()
}
fn f(s: &S) {
    let st = self.lock();
    let other = s.beta.lock();
    use_both(st, other);
}
",
        )]);
        assert!(
            a.graph
                .edges
                .iter()
                .any(|e| e.from == "hslb/inner" && e.to == "hslb/beta"),
            "{:?}",
            a.graph.edges
        );
    }

    #[test]
    fn rwlock_read_write_only_on_declared_receivers() {
        let a = analyze_sources(&[src(
            "crates/minlp/src/x.rs",
            "\
struct Shared {
    pool: RwLock<CutPool>,
}
fn f(shared: &Shared, out: &mut String) {
    let p = shared.pool.read();
    item.write(out);
    use_it(p);
}
",
        )]);
        assert!(
            a.graph.nodes.contains_key("minlp/pool"),
            "{:?}",
            a.graph.nodes
        );
        assert!(
            !a.graph.nodes.contains_key("minlp/item"),
            "`.write(` on a non-RwLock receiver must not be a lock: {:?}",
            a.graph.nodes
        );
    }

    #[test]
    fn stream_io_under_a_guard_is_flagged() {
        let a = analyze_sources(&[src(
            "crates/service/src/x.rs",
            "\
fn f(s: &S, conn: &mut Conn) {
    let g = s.resolved.lock();
    conn.stream.write(front);
    drop(g);
}
",
        )]);
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == "lock-blocking" && f.message.contains("stream/file IO")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn ranked_decls_and_rank_inversion() {
        let ranked = src(
            "crates/service/src/ranked.rs",
            "\
pub mod rank {
    pub const QUEUE_SHARD: u16 = 100;
    pub const FRONT_DESK: u16 = 200;
}
",
        );
        let ok = src(
            "crates/service/src/good.rs",
            "\
struct A {
    queue: RankedMutex<State, { rank::QUEUE_SHARD }>,
    state: RankedMutex<Front, { rank::FRONT_DESK }>,
}
fn f(a: &A) {
    let q = a.queue.lock();
    let s = a.state.lock();
    use_both(q, s);
}
",
        );
        let a = analyze_sources(&[ranked.clone(), ok]);
        assert_eq!(
            a.graph.nodes.get("service/queue").and_then(|n| n.rank),
            Some(100)
        );
        assert!(
            a.findings.iter().all(|f| f.rule != "lock-rank"),
            "{:?}",
            a.findings
        );

        let bad = src(
            "crates/service/src/bad.rs",
            "\
struct A {
    queue: RankedMutex<State, { rank::QUEUE_SHARD }>,
    state: RankedMutex<Front, { rank::FRONT_DESK }>,
}
fn f(a: &A) {
    let s = a.state.lock();
    let q = a.queue.lock();
    use_both(q, s);
}
",
        );
        let a = analyze_sources(&[ranked, bad]);
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == "lock-rank" && f.message.contains("rank inversion")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn raw_lock_idents_in_service_are_unranked_findings() {
        let a = analyze_sources(&[src(
            "crates/service/src/x.rs",
            "use std::sync::{Condvar, Mutex};\nstruct S { m: Mutex<u32> }\n",
        )]);
        let unranked: Vec<_> = a
            .findings
            .iter()
            .filter(|f| f.rule == "unranked-lock")
            .collect();
        assert_eq!(unranked.len(), 3, "{:?}", a.findings);
        // The ranked module itself and non-service crates are exempt.
        let a = analyze_sources(&[
            src("crates/service/src/ranked.rs", "use std::sync::Mutex;\n"),
            src("crates/telemetry/src/lib.rs", "use std::sync::Mutex;\n"),
        ]);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn test_modules_are_not_scanned() {
        let a = analyze_sources(&[src(
            "crates/service/src/x.rs",
            "\
fn ok() {}
#[cfg(test)]
mod tests {
    use std::sync::Mutex;
    fn f(s: &S) {
        let g = s.a.lock();
        std::thread::sleep(d);
        drop(g);
    }
}
",
        )]);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert!(a.graph.nodes.is_empty());
    }

    #[test]
    fn clone_chain_binds_a_value_not_the_guard() {
        // The service `health()` shape: `let x = m.lock()….clone();`
        // binds a copy — no guard survives into the next statement, so
        // sequential clone-reads of two locks create no edge.
        let a = analyze_sources(&[src(
            "crates/service/src/x.rs",
            "\
fn health(s: &S) {
    let recovery = s.recovery.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let rebalances = s.rebalances.lock().unwrap_or_else(|e| e.into_inner()).clone();
    use_both(recovery, rebalances);
}
",
        )]);
        assert!(a.graph.edges.is_empty(), "{:?}", a.graph.edges);
        // …while the unwrap_or_else chain alone does yield the guard.
        let a = analyze_sources(&[src(
            "crates/service/src/x.rs",
            "\
fn f(s: &S) {
    let g = s.recovery.lock().unwrap_or_else(|e| e.into_inner());
    let h = s.rebalances.lock().unwrap_or_else(|e| e.into_inner());
    use_both(g, h);
}
",
        )]);
        assert_eq!(a.graph.edges.len(), 1, "{:?}", a.graph.edges);
    }

    #[test]
    fn self_loop_reacquisition_is_a_cycle() {
        let a = analyze_sources(&[src(
            "crates/hslb/src/x.rs",
            "\
fn f(s: &S) {
    let g = s.state.lock();
    let h = s.state.lock();
    use_both(g, h);
}
",
        )]);
        assert!(
            rules(&a).contains(&"lock-cycle"),
            "re-acquiring a non-reentrant mutex is a self-deadlock: {:?}",
            a.findings
        );
    }
}
