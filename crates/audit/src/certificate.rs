//! Level 1a: convexity certificates for fitted scaling curves.
//!
//! Outer approximation proves global optimality only when every
//! `T_j(n) = a/n + b·n^c + d` is convex over `n ≥ 1`, i.e. `a, b, d ≥ 0`
//! and `c ∉ (0, 1)`. Fits can drift outside that region — fault-injected
//! gathers, early-stopped multistarts, widened exponent bounds — so every
//! solve certifies its curves first and the pipeline degrades to the
//! exhaustive rung on failure instead of mislabeling an incumbent as a
//! proven optimum.

use hslb_cesm::Component;
use hslb_nlsq::ScalingCurve;

/// The explicit tolerance policy for near-zero fitted values.
///
/// Least-squares fits legitimately land *slightly* negative on a
/// coefficient whose true value is zero (a flat land curve, say). The
/// policy is: a coefficient in `[-coeff, 0)` is classified
/// [`CoeffClass::NearZero`] and **treated as exactly zero** — tolerated
/// here and mirrored by the model-side convexity verifier so both levels
/// agree on the sign of every constant. Anything below `-coeff` is a hard
/// violation. The same idea applies to the exponent: `|b| ≤ coeff` frees
/// `c` entirely (the power term is absent), and `c` within `exponent` of
/// the concave interval's endpoints `{0, 1}` is read as the endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonPolicy {
    /// Absolute tolerance on coefficient signs (`a`, `b`, `d`).
    pub coeff: f64,
    /// Absolute tolerance on the exponent's distance to `(0, 1)`.
    pub exponent: f64,
}

impl Default for EpsilonPolicy {
    /// Component times are O(1)–O(1e5) seconds, so 1e-9 sits far below
    /// fit noise while still catching any real sign flip.
    fn default() -> Self {
        EpsilonPolicy {
            coeff: 1e-9,
            exponent: 1e-9,
        }
    }
}

impl EpsilonPolicy {
    /// Classify one coefficient under the policy.
    pub fn classify(&self, value: f64) -> CoeffClass {
        if !value.is_finite() {
            CoeffClass::NonFinite
        } else if value >= 0.0 {
            CoeffClass::Nonnegative
        } else if value >= -self.coeff {
            CoeffClass::NearZero
        } else {
            CoeffClass::Negative
        }
    }

    /// The sign of a constant as the verifier sees it: values within
    /// `coeff` of zero are zero.
    pub fn sign(&self, value: f64) -> std::cmp::Ordering {
        if value.abs() <= self.coeff {
            std::cmp::Ordering::Equal
        } else {
            value.partial_cmp(&0.0).unwrap_or(std::cmp::Ordering::Less)
        }
    }
}

/// How a fitted coefficient relates to the nonnegativity requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoeffClass {
    /// `≥ 0`: exactly what convexity needs.
    Nonnegative,
    /// In `[-ε, 0)`: treated as zero, tolerated, recorded.
    NearZero,
    /// Below `-ε`: breaks convexity — a hard violation.
    Negative,
    /// NaN/∞: the fit itself is broken — a hard violation.
    NonFinite,
}

impl CoeffClass {
    pub fn is_violation(self) -> bool {
        matches!(self, CoeffClass::Negative | CoeffClass::NonFinite)
    }
}

/// One coefficient's audit line.
#[derive(Debug, Clone)]
pub struct CoefficientFinding {
    /// `"a"`, `"b"` or `"d"`.
    pub name: &'static str,
    pub value: f64,
    pub class: CoeffClass,
}

/// The certificate for one component's fitted curve.
#[derive(Debug, Clone)]
pub struct ComponentCertificate {
    pub component: Component,
    pub curve: ScalingCurve,
    /// Sign findings for `a`, `b`, `d` (in that order).
    pub coefficients: Vec<CoefficientFinding>,
    /// True when the exponent check passed (`c ∉ (ε, 1−ε)` whenever the
    /// power term is present).
    pub exponent_ok: bool,
    /// Deterministic violation messages (empty = certified convex).
    pub violations: Vec<String>,
}

impl ComponentCertificate {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The certificate for a whole fit set, ordered by component.
#[derive(Debug, Clone)]
pub struct ConvexityCertificate {
    pub epsilon: EpsilonPolicy,
    pub components: Vec<ComponentCertificate>,
}

impl ConvexityCertificate {
    pub fn passed(&self) -> bool {
        self.components.iter().all(ComponentCertificate::passed)
    }

    pub fn violation_count(&self) -> usize {
        self.components.iter().map(|c| c.violations.len()).sum()
    }
}

impl std::fmt::Display for ConvexityCertificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in &self.components {
            writeln!(
                f,
                "  curve {}: {} (a={:.6e} b={:.6e} c={:.6} d={:.6e})",
                c.component,
                if c.passed() { "convex" } else { "NOT CONVEX" },
                c.curve.a,
                c.curve.b,
                c.curve.c,
                c.curve.d,
            )?;
            for v in &c.violations {
                writeln!(f, "    violation: {v}")?;
            }
            for cf in &c.coefficients {
                if cf.class == CoeffClass::NearZero {
                    writeln!(
                        f,
                        "    note: {} = {:.3e} within ε = {:.1e} of zero; treated as 0",
                        cf.name, cf.value, self.epsilon.coeff
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// Certify one curve under the policy.
pub fn certify_component(
    component: Component,
    curve: &ScalingCurve,
    eps: EpsilonPolicy,
) -> ComponentCertificate {
    let mut violations = Vec::new();
    let coefficients: Vec<CoefficientFinding> = [("a", curve.a), ("b", curve.b), ("d", curve.d)]
        .into_iter()
        .map(|(name, value)| {
            let class = eps.classify(value);
            match class {
                CoeffClass::Negative => violations.push(format!(
                    "coefficient {name} = {value:.6e} < -ε (ε = {:.1e}): term is concave",
                    eps.coeff
                )),
                CoeffClass::NonFinite => {
                    violations.push(format!("coefficient {name} = {value} is not finite"))
                }
                _ => {}
            }
            CoefficientFinding { name, value, class }
        })
        .collect();

    // Exponent: only constrains when the power term is actually present.
    let b_present = curve.b.is_finite() && curve.b.abs() > eps.coeff;
    let mut exponent_ok = true;
    if !curve.c.is_finite() {
        exponent_ok = false;
        violations.push(format!("exponent c = {} is not finite", curve.c));
    } else if b_present && curve.c > eps.exponent && curve.c < 1.0 - eps.exponent {
        exponent_ok = false;
        violations.push(format!(
            "exponent c = {:.6} lies in the concave interval (0, 1) with b = {:.6e} ≠ 0",
            curve.c, curve.b
        ));
    }

    ComponentCertificate {
        component,
        curve: *curve,
        coefficients,
        exponent_ok,
        violations,
    }
}

/// Certify a set of fitted curves (sorted by component for deterministic
/// output).
pub fn certify(curves: &[(Component, ScalingCurve)], eps: EpsilonPolicy) -> ConvexityCertificate {
    let mut pairs: Vec<&(Component, ScalingCurve)> = curves.iter().collect();
    pairs.sort_by_key(|(c, _)| *c);
    ConvexityCertificate {
        epsilon: eps,
        components: pairs
            .into_iter()
            .map(|(c, curve)| certify_component(*c, curve, eps))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(a: f64, b: f64, c: f64, d: f64) -> ScalingCurve {
        ScalingCurve { a, b, c, d }
    }

    #[test]
    fn convex_curve_passes() {
        let cert = certify_component(
            Component::Atm,
            &curve(100.0, 0.5, 1.2, 3.0),
            EpsilonPolicy::default(),
        );
        assert!(cert.passed());
        assert!(cert.exponent_ok);
        // Matches the solver's own notion.
        assert!(cert.curve.is_convex());
    }

    #[test]
    fn negative_b_fails_with_deterministic_message() {
        let cert = certify_component(
            Component::Ice,
            &curve(10.0, -2.0, 1.5, 0.0),
            EpsilonPolicy::default(),
        );
        assert!(!cert.passed());
        assert!(cert.violations[0].contains("coefficient b"));
        // Same message every run.
        let again = certify_component(
            Component::Ice,
            &curve(10.0, -2.0, 1.5, 0.0),
            EpsilonPolicy::default(),
        );
        assert_eq!(cert.violations, again.violations);
    }

    #[test]
    fn concave_exponent_fails_only_when_b_present() {
        let eps = EpsilonPolicy::default();
        let bad = certify_component(Component::Ocn, &curve(10.0, 1.0, 0.5, 0.0), eps);
        assert!(!bad.passed() && !bad.exponent_ok);
        // b ≈ 0 frees the exponent: the power term is absent.
        let free = certify_component(Component::Ocn, &curve(10.0, 0.0, 0.5, 0.0), eps);
        assert!(free.passed());
        // Negative exponents are convex over n ≥ 1 (decreasing power).
        let neg = certify_component(Component::Ocn, &curve(10.0, 1.0, -0.5, 0.0), eps);
        assert!(neg.passed());
    }

    #[test]
    fn near_zero_negative_is_tolerated_and_recorded() {
        let eps = EpsilonPolicy::default();
        let cert = certify_component(Component::Lnd, &curve(5.0, -1e-12, 1.0, 0.0), eps);
        assert!(cert.passed(), "{:?}", cert.violations);
        assert_eq!(cert.coefficients[1].class, CoeffClass::NearZero);
        // is_convex() is stricter (exact zero); the ε-policy is the
        // documented divergence.
        assert!(!cert.curve.is_convex());
    }

    #[test]
    fn non_finite_fit_is_a_hard_violation() {
        let cert = certify_component(
            Component::Atm,
            &curve(f64::NAN, 1.0, 1.0, 0.0),
            EpsilonPolicy::default(),
        );
        assert!(!cert.passed());
        assert_eq!(cert.coefficients[0].class, CoeffClass::NonFinite);
    }

    #[test]
    fn certify_sorts_by_component() {
        let eps = EpsilonPolicy::default();
        let cs = certify(
            &[
                (Component::Ocn, curve(1.0, 0.0, 1.0, 0.0)),
                (Component::Lnd, curve(1.0, 0.0, 1.0, 0.0)),
            ],
            eps,
        );
        let order: Vec<Component> = cs.components.iter().map(|c| c.component).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }
}
