//! A structural convexity verifier for model expressions.
//!
//! Walks an [`hslb_model::Expr`] bottom-up carrying a (curvature, value
//! interval) pair per node — the disciplined-convex-programming
//! composition rules restricted to the node set the Table I models
//! actually produce (affine combinations, `const/affine`, `affine^p`,
//! constant scaling). The verdict is sound but deliberately incomplete:
//! [`Curvature::Unknown`] means "not verifiable by these rules", which
//! the model audit treats as a failed `Convexity::Convex` declaration —
//! exactly the conservative direction a global-optimality certificate
//! needs.
//!
//! Constants within the [`crate::EpsilonPolicy`] coefficient tolerance of
//! zero are treated as zero, so a fit that the certificate accepted with
//! a near-zero negative coefficient verifies here too — the two levels
//! share one sign convention.

use crate::certificate::EpsilonPolicy;
use hslb_model::Expr;
use std::cmp::Ordering;

/// Verified curvature of an expression over a bound box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Curvature {
    /// A constant.
    Constant,
    /// Affine in the variables.
    Affine,
    /// Verifiably convex.
    Convex,
    /// Verifiably concave.
    Concave,
    /// Not verifiable by the structural rules.
    Unknown,
}

impl Curvature {
    /// Can this stand where a convex function is required?
    pub fn is_convex_ok(self) -> bool {
        matches!(
            self,
            Curvature::Constant | Curvature::Affine | Curvature::Convex
        )
    }

    fn negate(self) -> Curvature {
        match self {
            Curvature::Convex => Curvature::Concave,
            Curvature::Concave => Curvature::Convex,
            other => other,
        }
    }

    /// Curvature of a sum of two terms.
    fn add(self, other: Curvature) -> Curvature {
        use Curvature::*;
        match (self, other) {
            (Unknown, _) | (_, Unknown) => Unknown,
            (Constant, x) | (x, Constant) => x,
            (Affine, x) | (x, Affine) => x,
            (Convex, Convex) => Convex,
            (Concave, Concave) => Concave,
            (Convex, Concave) | (Concave, Convex) => Unknown,
        }
    }

    /// Curvature after scaling by a constant of the given sign.
    fn scale(self, sign: Ordering) -> Curvature {
        match sign {
            Ordering::Equal => Curvature::Constant,
            Ordering::Greater => self,
            Ordering::Less => self.negate(),
        }
    }
}

/// A conservative value interval for a node (used for sign reasoning:
/// positive denominators, nonnegative power bases).
#[derive(Debug, Clone, Copy)]
struct Range {
    lo: f64,
    hi: f64,
}

impl Range {
    fn point(v: f64) -> Range {
        Range { lo: v, hi: v }
    }
    fn everything() -> Range {
        Range {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }
    fn add(self, o: Range) -> Range {
        Range {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
        }
    }
    fn neg(self) -> Range {
        Range {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
    fn scale(self, k: f64) -> Range {
        if k >= 0.0 {
            Range {
                lo: self.lo * k,
                hi: self.hi * k,
            }
        } else {
            Range {
                lo: self.hi * k,
                hi: self.lo * k,
            }
        }
    }
    fn nonneg(self) -> bool {
        self.lo >= 0.0
    }
    fn positive(self) -> bool {
        self.lo > 0.0
    }
}

struct Analysis {
    curvature: Curvature,
    range: Range,
    /// `Some(v)` when the node folds to a constant.
    constant: Option<f64>,
}

fn constant(v: f64) -> Analysis {
    Analysis {
        curvature: Curvature::Constant,
        range: Range::point(v),
        constant: Some(v),
    }
}

/// Verified curvature of `e` over the variable box `[lb, ub]`.
pub fn curvature(e: &Expr, lb: &[f64], ub: &[f64], eps: EpsilonPolicy) -> Curvature {
    analyze(e, lb, ub, eps).curvature
}

fn analyze(e: &Expr, lb: &[f64], ub: &[f64], eps: EpsilonPolicy) -> Analysis {
    match e {
        Expr::Const(v) => {
            // Near-zero constants are zero under the shared ε-policy.
            let v = if v.abs() <= eps.coeff { 0.0 } else { *v };
            constant(v)
        }
        Expr::Var(i) => Analysis {
            curvature: Curvature::Affine,
            range: Range {
                lo: lb.get(*i).copied().unwrap_or(f64::NEG_INFINITY),
                hi: ub.get(*i).copied().unwrap_or(f64::INFINITY),
            },
            constant: None,
        },
        Expr::Neg(inner) => {
            let a = analyze(inner, lb, ub, eps);
            Analysis {
                curvature: a.curvature.negate(),
                range: a.range.neg(),
                constant: a.constant.map(|v| -v),
            }
        }
        Expr::Sum(terms) => {
            let mut curvature = Curvature::Constant;
            let mut range = Range::point(0.0);
            let mut constant_sum = Some(0.0);
            for t in terms {
                let a = analyze(t, lb, ub, eps);
                curvature = curvature.add(a.curvature);
                range = range.add(a.range);
                constant_sum = match (constant_sum, a.constant) {
                    (Some(acc), Some(v)) => Some(acc + v),
                    _ => None,
                };
            }
            Analysis {
                curvature,
                range,
                constant: constant_sum,
            }
        }
        Expr::Prod(factors) => {
            // Verifiable only as constant × (at most one non-constant).
            let mut k = 1.0;
            let mut nonconst: Option<Analysis> = None;
            for f in factors {
                let a = analyze(f, lb, ub, eps);
                match a.constant {
                    Some(v) => k *= v,
                    None => {
                        if nonconst.is_some() {
                            return Analysis {
                                curvature: Curvature::Unknown,
                                range: Range::everything(),
                                constant: None,
                            };
                        }
                        nonconst = Some(a);
                    }
                }
            }
            match nonconst {
                None => constant(k),
                Some(a) => Analysis {
                    curvature: a.curvature.scale(eps.sign(k)),
                    range: a.range.scale(k),
                    constant: None,
                },
            }
        }
        Expr::Pow(base, p) => {
            let a = analyze(base, lb, ub, eps);
            if let Some(v) = a.constant {
                return constant(v.powf(*p));
            }
            // Affine base with a nonnegative range: x^p is convex for
            // p ≥ 1 or p ≤ 0, concave for 0 ≤ p ≤ 1 (exponents within the
            // ε-policy of an endpoint are read as the endpoint).
            let lo1 = 1.0 - eps.exponent;
            let hi0 = eps.exponent;
            let curvature = if a.curvature == Curvature::Affine && a.range.nonneg() {
                if *p >= lo1 || *p <= hi0 {
                    Curvature::Convex
                } else {
                    Curvature::Concave
                }
            } else {
                Curvature::Unknown
            };
            let range = if a.range.nonneg() {
                let (x, y) = (a.range.lo.powf(*p), a.range.hi.powf(*p));
                Range {
                    lo: x.min(y),
                    hi: x.max(y),
                }
            } else {
                Range::everything()
            };
            Analysis {
                curvature,
                range,
                constant: None,
            }
        }
        Expr::Div(num, den) => {
            let n = analyze(num, lb, ub, eps);
            let d = analyze(den, lb, ub, eps);
            if let Some(k) = d.constant {
                if eps.sign(k) == Ordering::Equal {
                    return Analysis {
                        curvature: Curvature::Unknown,
                        range: Range::everything(),
                        constant: None,
                    };
                }
                return Analysis {
                    curvature: n.curvature.scale(eps.sign(1.0 / k)),
                    range: n.range.scale(1.0 / k),
                    constant: n.constant.map(|v| v / k),
                };
            }
            // k / (affine, positive over the box): convex for k ≥ 0,
            // concave for k ≤ 0 (the workhorse `a/n` term).
            if let Some(k) = n.constant {
                if d.curvature == Curvature::Affine && d.range.positive() {
                    let curvature = Curvature::Convex.scale(eps.sign(k));
                    let range = if k >= 0.0 {
                        Range {
                            lo: k / d.range.hi,
                            hi: k / d.range.lo,
                        }
                    } else {
                        Range {
                            lo: k / d.range.lo,
                            hi: k / d.range.hi,
                        }
                    };
                    return Analysis {
                        curvature,
                        range,
                        constant: None,
                    };
                }
            }
            Analysis {
                curvature: Curvature::Unknown,
                range: Range::everything(),
                constant: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps() -> EpsilonPolicy {
        EpsilonPolicy::default()
    }

    /// The paper's performance term over n ∈ [1, 128]: a/n + b·n^c + d.
    fn perf(a: f64, b: f64, c: f64, d: f64) -> Expr {
        Expr::c(a) / Expr::var(0) + Expr::c(b) * Expr::var(0).pow(c) + d
    }

    #[test]
    fn convex_perf_term_verifies() {
        let e = perf(100.0, 0.5, 1.3, 2.0);
        assert_eq!(curvature(&e, &[1.0], &[128.0], eps()), Curvature::Convex);
    }

    #[test]
    fn epigraph_row_is_convex() {
        // a/n + b·n^c + d − T: the exact Table I row shape.
        let e = perf(100.0, 0.5, 1.3, 2.0) - Expr::var(1);
        assert_eq!(
            curvature(&e, &[1.0, 0.0], &[128.0, 1e9], eps()),
            Curvature::Convex
        );
    }

    #[test]
    fn negative_b_makes_the_term_unverifiable() {
        let e = perf(100.0, -0.5, 1.3, 2.0);
        assert_eq!(curvature(&e, &[1.0], &[128.0], eps()), Curvature::Unknown);
    }

    #[test]
    fn concave_exponent_is_caught() {
        let e = perf(0.0, 1.0, 0.5, 0.0);
        // a = 0 → that term is the constant 0; b·n^0.5 is concave.
        assert_eq!(curvature(&e, &[1.0], &[128.0], eps()), Curvature::Concave);
    }

    #[test]
    fn near_zero_negative_coefficient_is_read_as_zero() {
        let e = perf(100.0, -1e-12, 0.5, 2.0);
        // b ≈ 0 under the policy: the concave power term vanishes.
        assert_eq!(curvature(&e, &[1.0], &[128.0], eps()), Curvature::Convex);
    }

    #[test]
    fn affine_rows_are_affine() {
        let e = Expr::var(0) + Expr::var(1) - Expr::var(2);
        let c = curvature(&e, &[1.0; 3], &[128.0; 3], eps());
        assert_eq!(c, Curvature::Affine);
        assert!(c.is_convex_ok());
    }

    #[test]
    fn difference_of_convex_is_unknown() {
        // 1/a − 1/b (the T_sync shape) is not verifiable as convex.
        let e = Expr::var(0).recip() - Expr::var(1).recip();
        assert_eq!(
            curvature(&e, &[1.0, 1.0], &[64.0, 64.0], eps()),
            Curvature::Unknown
        );
    }

    #[test]
    fn division_by_possibly_zero_denominator_is_unknown() {
        let e = Expr::c(5.0) / Expr::var(0);
        assert_eq!(curvature(&e, &[0.0], &[128.0], eps()), Curvature::Unknown);
    }

    #[test]
    fn negative_numerator_over_positive_affine_is_concave() {
        let e = Expr::c(-5.0) / Expr::var(0);
        assert_eq!(curvature(&e, &[1.0], &[128.0], eps()), Curvature::Concave);
    }
}
