//! Level 2: a line-level source scanner for project rules clippy cannot
//! express.
//!
//! The scanner walks the workspace's own `src/` trees (vendored compat
//! crates are skipped — they mimic third-party APIs) and enforces seven
//! rules, each born from a real incident class in this repository:
//!
//! * **`nondeterminism`** — no `SystemTime` / `thread::sleep` in solver
//!   or fit code paths. Wall-clock reads make solves unreproducible;
//!   sleeps belong only to fault-injection modules (paths containing
//!   `fault`).
//! * **`float-eq`** — no float `==` / `!=` outside the approved
//!   tolerance helpers (`crates/numerics/src/float.rs`). Exact float
//!   comparison is how the NaN basin-seeding bug of PR 3 slipped in.
//! * **`lock-in-drain`** — no lock acquisition while a multistart
//!   drain-lock guard is live (a binding of `drain.lock()`). The PR 3
//!   early-stop cutoff race came from exactly this nesting class.
//! * **`lock-in-queue`** — the service-crate twin of `lock-in-drain`:
//!   no lock acquisition while an admission-queue shard guard (a binding
//!   of `queue.lock()`) is live. A worker popping under the shard lock
//!   while a submitter holds the front-desk lock and pushes is the
//!   deadlock shape this serving layer must never grow; the queue module
//!   therefore spells out `queue.lock()` at every site (no helper) so
//!   the scanner can anchor on it.
//! * **`telemetry-read`** — no telemetry *reads* (`.counter(…)`,
//!   `.snapshot(…)`, `.events(…)`, `.elapsed_ms(…)`) in solver/fit code
//!   paths. Instrumentation must be passive: results may be *written*
//!   from anywhere, but a solver decision based on a telemetry value
//!   would let observation change the answer.
//! * **`unwrap-in-unwind`** — no `.unwrap()` / `.expect(…)` inside a
//!   `catch_unwind` closure. The supervision layer treats a caught panic
//!   as an *injected or exceptional* fault; an unwrap inside the guarded
//!   region turns every recoverable `Err`/`None` into a panic the
//!   supervisor then dutifully retries, hiding the real error and
//!   burning the requeue budget on a deterministic failure.
//! * **`hash-order`** — no `HashMap`/`HashSet`/`.as_ptr(` in the LP
//!   crate (`crates/lp/src`). Basis snapshots and warm-start tableaux
//!   are handed between B&B nodes and across worker threads; keying or
//!   iterating them through anything hash-seed- or address-order-
//!   dependent would make the pivot sequence (and therefore the solved
//!   vertex bits) vary run to run, breaking the warm/cold bit-identity
//!   bar (DESIGN.md §14). Deterministic containers only: `Vec` indexed
//!   by variable/row position, or `BTreeMap`/`BTreeSet`.
//!
//! The `nondeterminism` and `telemetry-read` rules also cover the
//! service crate (`crates/service/src`): responses must be bit-identical
//! to one-shot pipeline runs, so the only randomness allowed there is
//! the load generator's explicitly seeded LCG, and no scheduling or
//! response decision may read telemetry.
//!
//! Mechanics, kept deliberately simple so diagnostics are reproducible:
//! files are scanned line by line; scanning stops at the first
//! `#[cfg(test)]` (test modules sit at the end of a file by repo
//! convention); full-line comments are skipped. Documented exceptions
//! live in an allowlist file (`scripts/audit.allow`) whose entries must
//! each carry a justification.

use std::fmt;
use std::path::{Path, PathBuf};

/// The rule catalog (ids are stable; the allowlist references them).
pub const RULES: [(&str, &str); 7] = [
    (
        "nondeterminism",
        "no SystemTime/thread::sleep outside fault-injection modules",
    ),
    (
        "float-eq",
        "no float ==/!= outside the approved tolerance helpers",
    ),
    (
        "lock-in-drain",
        "no lock acquisition inside the multistart drain-lock critical section",
    ),
    (
        "lock-in-queue",
        "no lock acquisition inside an admission-queue shard critical section",
    ),
    (
        "telemetry-read",
        "no telemetry reads feeding solver/fit/service control flow",
    ),
    (
        "unwrap-in-unwind",
        "no unwrap/expect inside a catch_unwind closure",
    ),
    (
        "hash-order",
        "no hash/address-order-dependent keying or iteration in the LP crate",
    ),
];

/// Crate `src/` prefixes counted as solver/fit code paths for the
/// `telemetry-read` and `nondeterminism` rules. The telemetry crate
/// itself and the bench/report layer legitimately read snapshots.
const SOLVER_PATHS: [&str; 6] = [
    "crates/numerics/src",
    "crates/lp/src",
    "crates/model/src",
    "crates/nlsq/src",
    "crates/minlp/src",
    "crates/hslb/src",
];

/// The serving layer, held to the same two rules: its determinism
/// contract (every response bit-identical to a one-shot run) outlaws
/// wall-clock/sleep primitives and telemetry-driven decisions just as
/// strictly as the solver paths. Reviewed exceptions (the load
/// generator's client-side retry backoff) live in the allowlist.
const SERVICE_PATHS: [&str; 1] = ["crates/service/src"];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub text: String,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}: `{}`",
            self.path, self.line, self.rule, self.message, self.text
        )
    }
}

/// A reviewed exception: suppresses findings of `rule` in files ending
/// with `path_suffix` on lines containing `substring`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    pub path_suffix: String,
    pub substring: String,
    pub justification: String,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the `rule | path-suffix | line-substring | justification`
    /// format. Blank lines and `#` comments are skipped; an entry without
    /// all four fields (justification included) is an error — exceptions
    /// must say why they exist.
    pub fn parse(content: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, raw) in content.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('|').map(str::trim).collect();
            if fields.len() != 4 || fields.iter().any(|f| f.is_empty()) {
                return Err(format!(
                    "allowlist line {}: expected `rule | path | substring | justification`, \
                     got `{line}`",
                    i + 1
                ));
            }
            if !RULES.iter().any(|&(id, _)| id == fields[0]) {
                return Err(format!(
                    "allowlist line {}: unknown rule `{}`",
                    i + 1,
                    fields[0]
                ));
            }
            entries.push(AllowEntry {
                rule: fields[0].to_string(),
                path_suffix: fields[1].to_string(),
                substring: fields[2].to_string(),
                justification: fields[3].to_string(),
            });
        }
        Ok(Allowlist { entries })
    }

    fn allows(&self, f: &Finding) -> bool {
        self.entries.iter().any(|e| {
            e.rule == f.rule && f.path.ends_with(&e.path_suffix) && f.text.contains(&e.substring)
        })
    }
}

/// Scan result: surviving findings plus accounting.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Findings not covered by the allowlist, sorted by (path, line,
    /// rule).
    pub findings: Vec<Finding>,
    pub allowlisted: usize,
    pub files_scanned: usize,
}

fn in_solver_path(path: &str) -> bool {
    SOLVER_PATHS.iter().any(|p| path.starts_with(p))
}

fn in_service_path(path: &str) -> bool {
    SERVICE_PATHS.iter().any(|p| path.starts_with(p))
}

/// True when `s` contains a float-ish token: a decimal literal, an `f64`/
/// `f32` path, or a float constant name.
fn has_float_token(s: &str) -> bool {
    let bytes = s.as_bytes();
    for i in 0..bytes.len() {
        if bytes[i] == b'.'
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && i + 1 < bytes.len()
            && bytes[i + 1].is_ascii_digit()
        {
            return true;
        }
    }
    s.contains("f64") || s.contains("f32") || s.contains("NAN") || s.contains("INFINITY")
}

/// The operand slice around a comparison, cut at expression delimiters.
fn operand_window(line: &str, op_start: usize, op_len: usize) -> (String, String) {
    let delims: &[char] = &[',', ';', '(', ')', '{', '}', '[', ']', '&', '|'];
    let left_raw = &line[..op_start];
    let left = left_raw
        .rfind(delims)
        .map(|i| &left_raw[i + 1..])
        .unwrap_or(left_raw);
    let right_raw = &line[op_start + op_len..];
    let right = right_raw
        .find(delims)
        .map(|i| &right_raw[..i])
        .unwrap_or(right_raw);
    (left.to_string(), right.to_string())
}

/// Pure per-file scan (separated from IO for tests). `path` is the
/// workspace-relative path used for path-scoped rules.
pub fn scan_file_content(path: &str, content: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let solver = in_solver_path(path);
    let service = in_service_path(path);
    let fault_module = path.contains("fault");
    let tolerance_helper = path.ends_with("numerics/src/float.rs");

    // lock-in-drain / lock-in-queue region state: Some(depth of the
    // enclosing block) while the respective guard is live.
    let mut drain_region: Option<i64> = None;
    let mut queue_region: Option<i64> = None;
    // unwrap-in-unwind region state: Some(depth at the `catch_unwind`
    // line); live while brace depth stays above it (the closure body).
    let mut unwind_region: Option<i64> = None;
    let mut depth: i64 = 0;

    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.contains("#[cfg(test)]") {
            break; // test modules end the audited region of a file
        }
        if line.starts_with("//") {
            continue;
        }
        let mut push = |rule: &'static str, message: String| {
            out.push(Finding {
                rule,
                path: path.to_string(),
                line: line_no,
                text: line.to_string(),
                message,
            });
        };

        // --- nondeterminism ---
        if (solver || service) && !fault_module {
            if line.contains("SystemTime") {
                push(
                    "nondeterminism",
                    "wall-clock read in a solver/fit code path".to_string(),
                );
            }
            if line.contains("thread::sleep") {
                push(
                    "nondeterminism",
                    "sleep outside a fault-injection module".to_string(),
                );
            }
        }

        // --- float-eq ---
        if !tolerance_helper {
            let bytes = line.as_bytes();
            let mut i = 0;
            while i + 1 < bytes.len() {
                // Byte-wise match: `=`/`!` are ASCII, so `i` and `i + 2`
                // are char boundaries whenever this hits.
                let is_eq = (bytes[i] == b'=' || bytes[i] == b'!') && bytes[i + 1] == b'=';
                if is_eq {
                    let neq = bytes[i] == b'!';
                    let before = if i > 0 { bytes[i - 1] } else { b' ' };
                    let after = if i + 2 < bytes.len() {
                        bytes[i + 2]
                    } else {
                        b' '
                    };
                    // Skip <=, >=, =>, === fragments and pattern `=>`.
                    let operator = !matches!(before, b'<' | b'>' | b'=' | b'!')
                        && after != b'='
                        && !(neq && after == b'!');
                    if operator {
                        let (l, r) = operand_window(line, i, 2);
                        if has_float_token(&l) || has_float_token(&r) {
                            push(
                                "float-eq",
                                "float equality outside the tolerance helpers".to_string(),
                            );
                            // One finding per line is enough.
                            break;
                        }
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
        }

        // --- lock-in-drain ---
        let depth_before = depth;
        depth += line.matches('{').count() as i64 - line.matches('}').count() as i64;
        if let Some(region_depth) = drain_region {
            if depth_before < region_depth || depth < region_depth {
                drain_region = None;
            } else if line.contains(".lock(")
                || line.contains(".read(")
                || line.contains(".write(")
                || line.contains(".try_lock(")
            {
                push(
                    "lock-in-drain",
                    "lock acquisition while the drain guard is held".to_string(),
                );
            }
        }
        if drain_region.is_none() && line.contains("drain.lock()") {
            drain_region = Some(depth_before);
        }

        // --- lock-in-queue --- (same mechanics, service-crate anchor)
        if let Some(region_depth) = queue_region {
            if depth_before < region_depth || depth < region_depth {
                queue_region = None;
            } else if line.contains(".lock(")
                || line.contains(".read(")
                || line.contains(".write(")
                || line.contains(".try_lock(")
            {
                push(
                    "lock-in-queue",
                    "lock acquisition while the admission-queue shard guard is held".to_string(),
                );
            }
        }
        if queue_region.is_none() && line.contains("queue.lock()") {
            queue_region = Some(depth_before);
        }

        // --- unwrap-in-unwind --- (closure-scoped: the region closes
        // when brace depth returns to the anchor line's depth)
        if let Some(region_depth) = unwind_region {
            if depth_before <= region_depth {
                unwind_region = None;
            } else if line.contains(".unwrap(") || line.contains(".expect(") {
                push(
                    "unwrap-in-unwind",
                    "unwrap/expect inside a catch_unwind closure".to_string(),
                );
            }
        }
        if line.contains("catch_unwind") {
            if line.contains(".unwrap(") || line.contains(".expect(") {
                push(
                    "unwrap-in-unwind",
                    "unwrap/expect on the catch_unwind line itself".to_string(),
                );
            }
            unwind_region = Some(depth_before);
        }

        // --- hash-order --- (LP crate only: warm-start state must never
        // be keyed or iterated in hash-seed or address order)
        if path.starts_with("crates/lp/src") {
            for pat in ["HashMap", "HashSet", ".as_ptr("] {
                if line.contains(pat) {
                    push(
                        "hash-order",
                        format!(
                            "`{pat}` in the LP crate: basis/tableau state must use \
                             deterministic containers (Vec or BTreeMap/BTreeSet)"
                        ),
                    );
                    break;
                }
            }
        }

        // --- telemetry-read ---
        if solver || service {
            for pat in [".snapshot(", ".events(", ".elapsed_ms(", ".counter("] {
                if line.contains(pat) {
                    push(
                        "telemetry-read",
                        format!("telemetry read `{pat}…)` in a solver/fit/service code path"),
                    );
                    break;
                }
            }
        }
    }
    out
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// The `src/` trees the workspace owns: `src/` at the root plus every
/// `crates/<name>/src`, excluding the vendored `crates/compat` stand-ins.
pub fn workspace_src_roots(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        names.sort();
        for c in names {
            if c.is_dir() && c.file_name().is_some_and(|n| n != "compat") {
                roots.push(c.join("src"));
            }
        }
    }
    Ok(roots)
}

/// Scan the workspace rooted at `root` under the allowlist.
pub fn scan_workspace(root: &Path, allow: &Allowlist) -> std::io::Result<ScanOutcome> {
    let mut files = Vec::new();
    for src in workspace_src_roots(root)? {
        collect_rs_files(&src, &mut files)?;
    }
    let mut outcome = ScanOutcome::default();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let content = std::fs::read_to_string(&file)?;
        outcome.files_scanned += 1;
        for f in scan_file_content(&rel, &content) {
            if allow.allows(&f) {
                outcome.allowlisted += 1;
            } else {
                outcome.findings.push(f);
            }
        }
    }
    outcome
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nondeterminism_only_flags_solver_paths() {
        let code = "let t = std::time::SystemTime::now();\n";
        assert_eq!(scan_file_content("crates/minlp/src/bb.rs", code).len(), 1);
        assert!(scan_file_content("crates/bench/src/lib.rs", code).is_empty());
        assert!(scan_file_content("crates/cesm/src/fault.rs", code).is_empty());
    }

    #[test]
    fn sleep_is_flagged_outside_fault_modules() {
        let code = "std::thread::sleep(d);\n";
        let f = scan_file_content("crates/nlsq/src/multistart.rs", code);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "nondeterminism");
    }

    #[test]
    fn float_eq_catches_literal_comparison() {
        let f = scan_file_content("crates/hslb/src/fit.rs", "if x == 0.0 {\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "float-eq");
        // != too
        let f = scan_file_content("crates/hslb/src/fit.rs", "if x != 1.5 {\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn float_eq_ignores_integer_and_ordering_comparisons() {
        for line in [
            "if n == 0 {\n",
            "if a <= 0.5 {\n",
            "if a >= 0.5 {\n",
            "match x { _ => 0.0 }\n",
            "assert!(i == j);\n",
        ] {
            assert!(
                scan_file_content("crates/hslb/src/fit.rs", line).is_empty(),
                "false positive on {line:?}"
            );
        }
    }

    #[test]
    fn float_eq_exempts_the_tolerance_helper_module() {
        let code = "if a == b { /* bitwise check */ }\nlet x = 1.0 == y;\n";
        assert!(scan_file_content("crates/numerics/src/float.rs", code).is_empty());
    }

    #[test]
    fn lock_in_drain_flags_nested_acquisition() {
        let code = "\
fn f() {
    let mut d = drain.lock();
    let peek = other.lock();
    d.push(1);
}
";
        let f = scan_file_content("crates/nlsq/src/multistart.rs", code);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-in-drain");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn lock_in_drain_region_ends_with_the_scope() {
        let code = "\
fn f() {
    {
        let mut d = drain.lock();
        d.push(1);
    }
    let after = other.lock();
}
";
        assert!(scan_file_content("crates/nlsq/src/multistart.rs", code).is_empty());
    }

    #[test]
    fn lock_in_queue_flags_nested_acquisition_in_the_service_crate() {
        let code = "\
fn push(&self) {
    let mut state = queue.lock().unwrap_or_else(|e| e.into_inner());
    let desk = front.lock();
    state.push(1);
}
";
        let f = scan_file_content("crates/service/src/queue.rs", code);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-in-queue");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn lock_in_queue_region_ends_with_the_scope() {
        let code = "\
fn push(&self) {
    {
        let mut state = queue.lock().unwrap_or_else(|e| e.into_inner());
        state.push(1);
    }
    shard.available.notify_one();
    let desk = front.lock();
}
";
        assert!(scan_file_content("crates/service/src/queue.rs", code).is_empty());
    }

    #[test]
    fn service_crate_is_held_to_nondeterminism_and_telemetry_rules() {
        let sleep = "std::thread::sleep(backoff);\n";
        let f = scan_file_content("crates/service/src/bin/loadgen.rs", sleep);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "nondeterminism");

        let read = "let n = telemetry.snapshot();\n";
        let f = scan_file_content("crates/service/src/service.rs", read);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "telemetry-read");

        // Telemetry writes stay legal in the service crate.
        let w = "telemetry.counter_add(\"service.submitted\", 1);\n";
        assert!(scan_file_content("crates/service/src/service.rs", w).is_empty());
    }

    #[test]
    fn telemetry_reads_flagged_in_solver_paths_only() {
        let code = "let n = telemetry.counter(\"x\");\n";
        let f = scan_file_content("crates/minlp/src/bb.rs", code);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "telemetry-read");
        // The bench/report layer may read snapshots.
        assert!(scan_file_content("crates/bench/src/bin/bench_suite.rs", code).is_empty());
        // Writes are fine anywhere.
        let w = "telemetry.counter_add(\"x\", 1);\n";
        assert!(scan_file_content("crates/minlp/src/bb.rs", w).is_empty());
    }

    #[test]
    fn unwrap_in_unwind_flags_the_closure_body() {
        let code = "\
fn attempt() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let sim = shared.sims.lock().unwrap();
        compute(&sim)
    }));
    result.unwrap_or_else(|_| fallback());
}
";
        let f = scan_file_content("crates/service/src/service.rs", code);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unwrap-in-unwind");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn unwrap_in_unwind_region_ends_with_the_closure() {
        let code = "\
fn attempt() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        compute(&shared)
    }));
    let after = result.unwrap();
}
";
        // `.unwrap()` after the closure closes is the panic-on-purpose
        // idiom this rule does not police (clippy's unwrap_used does).
        assert!(scan_file_content("crates/service/src/service.rs", code).is_empty());
        // A single-line catch_unwind carrying its own unwrap is flagged.
        let one = "let r = catch_unwind(|| x.lock().unwrap());\n";
        let f = scan_file_content("crates/service/src/service.rs", one);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unwrap-in-unwind");
    }

    #[test]
    fn hash_order_flags_hash_containers_in_the_lp_crate() {
        for line in [
            "use std::collections::HashMap;\n",
            "let seen: HashSet<usize> = HashSet::new();\n",
            "let key = row.as_ptr() as usize;\n",
        ] {
            let f = scan_file_content("crates/lp/src/basis.rs", line);
            assert_eq!(f.len(), 1, "expected a finding on {line:?}");
            assert_eq!(f[0].rule, "hash-order");
        }
    }

    #[test]
    fn hash_order_allows_deterministic_containers_and_other_crates() {
        // BTreeMap iteration order is key order — deterministic.
        let btree = "let fps: BTreeMap<u64, usize> = BTreeMap::new();\n";
        assert!(scan_file_content("crates/lp/src/basis.rs", btree).is_empty());
        // The rule is scoped to the LP crate: the bench/report layer may
        // use hash containers (it never feeds solver pivot decisions).
        let map = "use std::collections::HashMap;\n";
        assert!(scan_file_content("crates/bench/src/lib.rs", map).is_empty());
    }

    #[test]
    fn scanning_stops_at_cfg_test() {
        let code = "\
fn f() {}
#[cfg(test)]
mod tests {
    fn g() { let t = std::time::SystemTime::now(); }
}
";
        assert!(scan_file_content("crates/minlp/src/bb.rs", code).is_empty());
    }

    #[test]
    fn allowlist_requires_justification() {
        assert!(Allowlist::parse("float-eq | a.rs | x == 0.0 |").is_err());
        assert!(Allowlist::parse("bogus-rule | a.rs | x | why").is_err());
        let ok = Allowlist::parse(
            "# comment\nfloat-eq | parallel.rs | bound == other | heap identity\n",
        )
        .unwrap();
        assert_eq!(ok.entries.len(), 1);
        assert_eq!(ok.entries[0].justification, "heap identity");
    }

    #[test]
    fn allowlist_suppresses_matching_findings() {
        let allow = Allowlist::parse("float-eq | fit.rs | x == 0.0 | sentinel compare\n").unwrap();
        let f = &scan_file_content("crates/hslb/src/fit.rs", "if x == 0.0 {\n")[0];
        assert!(allow.allows(f));
        let g = &scan_file_content("crates/hslb/src/fit.rs", "if y == 2.0 {\n")[0];
        assert!(!allow.allows(g));
    }

    #[test]
    fn findings_render_deterministically() {
        let f = &scan_file_content("crates/hslb/src/fit.rs", "if x == 0.0 {\n")[0];
        assert_eq!(
            f.to_string(),
            "crates/hslb/src/fit.rs:1: [float-eq] float equality outside the tolerance \
             helpers: `if x == 0.0 {`"
        );
    }
}
