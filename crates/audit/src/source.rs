//! Level 2: a token-level source scanner for project rules clippy cannot
//! express.
//!
//! The scanner walks the workspace's own `src/` trees (vendored compat
//! crates are skipped — they mimic third-party APIs) and enforces seven
//! rules, each born from a real incident class in this repository:
//!
//! * **`nondeterminism`** — no `SystemTime` / `thread::sleep` in solver
//!   or fit code paths. Wall-clock reads make solves unreproducible;
//!   sleeps belong only to fault-injection modules (paths containing
//!   `fault`).
//! * **`float-eq`** — no float `==` / `!=` outside the approved
//!   tolerance helpers (`crates/numerics/src/float.rs`). Exact float
//!   comparison is how the NaN basin-seeding bug of PR 3 slipped in.
//! * **`lock-in-drain`** — no lock acquisition while a multistart
//!   drain-lock guard is live (a binding of `drain.lock()`). The PR 3
//!   early-stop cutoff race came from exactly this nesting class.
//! * **`lock-in-queue`** — the service-crate twin of `lock-in-drain`:
//!   no lock acquisition while an admission-queue shard guard (a binding
//!   of `queue.lock()`) is live. A worker popping under the shard lock
//!   while a submitter holds the front-desk lock and pushes is the
//!   deadlock shape this serving layer must never grow; the queue module
//!   therefore spells out `queue.lock()` at every site (no helper) so
//!   the scanner can anchor on it.
//! * **`telemetry-read`** — no telemetry *reads* (`.counter(…)`,
//!   `.snapshot(…)`, `.events(…)`, `.elapsed_ms(…)`) in solver/fit code
//!   paths. Instrumentation must be passive: results may be *written*
//!   from anywhere, but a solver decision based on a telemetry value
//!   would let observation change the answer.
//! * **`unwrap-in-unwind`** — no `.unwrap()` / `.expect(…)` inside a
//!   `catch_unwind` closure. The supervision layer treats a caught panic
//!   as an *injected or exceptional* fault; an unwrap inside the guarded
//!   region turns every recoverable `Err`/`None` into a panic the
//!   supervisor then dutifully retries, hiding the real error and
//!   burning the requeue budget on a deterministic failure.
//! * **`hash-order`** — no `HashMap`/`HashSet`/`.as_ptr(` in the LP
//!   crate (`crates/lp/src`). Basis snapshots and warm-start tableaux
//!   are handed between B&B nodes and across worker threads; keying or
//!   iterating them through anything hash-seed- or address-order-
//!   dependent would make the pivot sequence (and therefore the solved
//!   vertex bits) vary run to run, breaking the warm/cold bit-identity
//!   bar (DESIGN.md §14). Deterministic containers only: `Vec` indexed
//!   by variable/row position, or `BTreeMap`/`BTreeSet`.
//!
//! The `nondeterminism` and `telemetry-read` rules also cover the
//! service crate (`crates/service/src`): responses must be bit-identical
//! to one-shot pipeline runs, so the only randomness allowed there is
//! the load generator's explicitly seeded LCG, and no scheduling or
//! response decision may read telemetry.
//!
//! Four further rule ids — `unranked-lock`, `lock-cycle`, `lock-rank`,
//! `lock-blocking` — belong to Level 3, the concurrency auditor in
//! [`crate::locks`]; they share this module's [`Finding`] shape and the
//! allowlist mechanics.
//!
//! Mechanics: every file is lexed by [`crate::lex`] (comments vanish,
//! string/char literals become single opaque tokens), rules match token
//! patterns grouped by source line, and brace depth is counted on real
//! `{`/`}` punct tokens only. The line-scanner era's failure modes —
//! rule substrings inside block comments or raw strings creating false
//! findings, and braces inside comments/strings unbalancing a
//! critical-section region so a real nested lock goes unreported — are
//! pinned as regression fixtures at the bottom of this file. Scanning
//! still stops at the first `#[cfg(test)]` (test modules sit at the end
//! of a file by repo convention). Documented exceptions live in an
//! allowlist file (`scripts/audit.allow`) whose entries must each carry
//! a justification; entries that stop matching anything are flagged by
//! `audit-source --check-allow` so the list cannot rot.

use crate::lex::{self, Kind, Tok};
use std::fmt;
use std::path::{Path, PathBuf};

/// The rule catalog (ids are stable; the allowlist references them).
/// The first seven are Level 2 token rules; the last four are Level 3
/// concurrency-audit rules emitted by [`crate::locks`].
pub const RULES: [(&str, &str); 11] = [
    (
        "nondeterminism",
        "no SystemTime/thread::sleep outside fault-injection modules",
    ),
    (
        "float-eq",
        "no float ==/!= outside the approved tolerance helpers",
    ),
    (
        "lock-in-drain",
        "no lock acquisition inside the multistart drain-lock critical section",
    ),
    (
        "lock-in-queue",
        "no lock acquisition inside an admission-queue shard critical section",
    ),
    (
        "telemetry-read",
        "no telemetry reads feeding solver/fit/service control flow",
    ),
    (
        "unwrap-in-unwind",
        "no unwrap/expect inside a catch_unwind closure",
    ),
    (
        "hash-order",
        "no hash/address-order-dependent keying or iteration in the LP crate",
    ),
    (
        "unranked-lock",
        "every lock in the service crate must be a ranked wrapper",
    ),
    (
        "lock-cycle",
        "the cross-crate lock acquisition graph must be acyclic",
    ),
    (
        "lock-rank",
        "lock graph edges must respect the declared rank lattice",
    ),
    (
        "lock-blocking",
        "no guard held across a blocking call (IO, sleep, join, foreign wait)",
    ),
];

/// Crate `src/` prefixes counted as solver/fit code paths for the
/// `telemetry-read` and `nondeterminism` rules. The telemetry crate
/// itself and the bench/report layer legitimately read snapshots.
const SOLVER_PATHS: [&str; 6] = [
    "crates/numerics/src",
    "crates/lp/src",
    "crates/model/src",
    "crates/nlsq/src",
    "crates/minlp/src",
    "crates/hslb/src",
];

/// The serving layer, held to the same two rules: its determinism
/// contract (every response bit-identical to a one-shot run) outlaws
/// wall-clock/sleep primitives and telemetry-driven decisions just as
/// strictly as the solver paths. Reviewed exceptions (the load
/// generator's client-side retry backoff) live in the allowlist. The
/// sweep planner/predictor crate rides the same contract: a portfolio's
/// non-pruned entries must be bit-identical to one-shot runs, so its
/// planning and pruning decisions may not consult clocks either.
const SERVICE_PATHS: [&str; 2] = ["crates/service/src", "crates/sweep/src"];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub text: String,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}: `{}`",
            self.path, self.line, self.rule, self.message, self.text
        )
    }
}

/// A reviewed exception: suppresses findings of `rule` in files ending
/// with `path_suffix` on lines containing `substring`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    pub path_suffix: String,
    pub substring: String,
    pub justification: String,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the `rule | path-suffix | line-substring | justification`
    /// format. Blank lines and `#` comments are skipped; an entry without
    /// all four fields (justification included) is an error — exceptions
    /// must say why they exist.
    pub fn parse(content: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, raw) in content.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('|').map(str::trim).collect();
            if fields.len() != 4 || fields.iter().any(|f| f.is_empty()) {
                return Err(format!(
                    "allowlist line {}: expected `rule | path | substring | justification`, \
                     got `{line}`",
                    i + 1
                ));
            }
            if !RULES.iter().any(|&(id, _)| id == fields[0]) {
                return Err(format!(
                    "allowlist line {}: unknown rule `{}`",
                    i + 1,
                    fields[0]
                ));
            }
            entries.push(AllowEntry {
                rule: fields[0].to_string(),
                path_suffix: fields[1].to_string(),
                substring: fields[2].to_string(),
                justification: fields[3].to_string(),
            });
        }
        Ok(Allowlist { entries })
    }

    /// Index of the first entry suppressing `f`, if any. The index feeds
    /// the stale-entry check: an entry that never matches is rot.
    pub fn match_idx(&self, f: &Finding) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.rule == f.rule && f.path.ends_with(&e.path_suffix) && f.text.contains(&e.substring)
        })
    }

    /// True when some entry suppresses `f`.
    pub fn allows(&self, f: &Finding) -> bool {
        self.match_idx(f).is_some()
    }
}

/// Scan result: surviving findings plus accounting.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Findings not covered by the allowlist, sorted by (path, line,
    /// rule).
    pub findings: Vec<Finding>,
    pub allowlisted: usize,
    pub files_scanned: usize,
    /// Per-allowlist-entry suppression counts (same order as
    /// `Allowlist::entries`); `--check-allow` fails on zeros.
    pub allow_used: Vec<usize>,
}

impl ScanOutcome {
    /// Route one finding through the allowlist, updating the counters.
    pub fn absorb(&mut self, allow: &Allowlist, f: Finding) {
        match allow.match_idx(&f) {
            Some(i) => {
                self.allowlisted += 1;
                self.allow_used[i] += 1;
            }
            None => self.findings.push(f),
        }
    }

    /// Entries that suppressed nothing this scan: stale, prune them.
    pub fn stale_entries<'a>(&self, allow: &'a Allowlist) -> Vec<(usize, &'a AllowEntry)> {
        allow
            .entries
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.allow_used.get(i).copied().unwrap_or(0) == 0)
            .collect()
    }

    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }
}

fn in_solver_path(path: &str) -> bool {
    SOLVER_PATHS.iter().any(|p| path.starts_with(p))
}

fn in_service_path(path: &str) -> bool {
    SERVICE_PATHS.iter().any(|p| path.starts_with(p))
}

/// Contiguous token-pattern match: each pattern is `(kind, text)`.
fn has_seq(toks: &[Tok], pat: &[(Kind, &str)]) -> bool {
    find_seq(toks, pat).is_some()
}

fn find_seq(toks: &[Tok], pat: &[(Kind, &str)]) -> Option<usize> {
    if pat.is_empty() || toks.len() < pat.len() {
        return None;
    }
    (0..=toks.len() - pat.len()).find(|&i| {
        pat.iter()
            .enumerate()
            .all(|(k, p)| toks[i + k].is(p.0, p.1))
    })
}

/// `.name(` for any of `names` — a method call, never an ident in a
/// comment or string (those no longer exist post-lex).
fn has_method_call(toks: &[Tok], names: &[&str]) -> bool {
    toks.windows(3).any(|w| {
        w[0].punct(".")
            && w[1].kind == Kind::Ident
            && names.contains(&w[1].text.as_str())
            && w[2].punct("(")
    })
}

/// True when any token in the window is float-ish: a float literal, or
/// an identifier mentioning `f64`/`f32`/`NAN`/`INFINITY` (covers casts,
/// paths like `f64::EPSILON`, and `NEG_INFINITY`).
fn window_has_float(toks: &[Tok]) -> bool {
    toks.iter().any(|t| {
        t.is_float()
            || (t.kind == Kind::Ident
                && ["f64", "f32", "NAN", "INFINITY"]
                    .iter()
                    .any(|p| t.text.contains(p)))
    })
}

/// Delimiters bounding a comparison's operand window.
fn is_operand_delim(t: &Tok) -> bool {
    t.kind == Kind::Punct
        && matches!(
            t.text.as_str(),
            "," | ";" | "(" | ")" | "{" | "}" | "[" | "]" | "&" | "|" | "&&" | "||"
        )
}

/// The `#[cfg(test)]` attribute, which by repo convention starts the
/// test module that ends a file's audited region.
fn has_cfg_test(toks: &[Tok]) -> bool {
    has_seq(
        toks,
        &[
            (Kind::Punct, "#"),
            (Kind::Punct, "["),
            (Kind::Ident, "cfg"),
            (Kind::Punct, "("),
            (Kind::Ident, "test"),
            (Kind::Punct, ")"),
            (Kind::Punct, "]"),
        ],
    )
}

/// Group a token stream by 1-based source line (index 0 = line 1).
/// Multi-line tokens (block strings) count on their starting line.
pub(crate) fn tokens_by_line(toks: &[Tok], nlines: usize) -> Vec<Vec<Tok>> {
    let mut lines = vec![Vec::new(); nlines];
    for t in toks {
        if t.line >= 1 && t.line <= nlines {
            lines[t.line - 1].push(t.clone());
        }
    }
    lines
}

/// Pure per-file scan (separated from IO for tests). `path` is the
/// workspace-relative path used for path-scoped rules.
pub fn scan_file_content(path: &str, content: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let solver = in_solver_path(path);
    let service = in_service_path(path);
    let fault_module = path.contains("fault");
    let tolerance_helper = path.ends_with("numerics/src/float.rs");

    let raw_lines: Vec<&str> = content.lines().collect();
    let line_toks = tokens_by_line(&lex::lex(content), raw_lines.len());

    // lock-in-drain / lock-in-queue region state: Some(depth of the
    // enclosing block) while the respective guard is live.
    let mut drain_region: Option<i64> = None;
    let mut queue_region: Option<i64> = None;
    // unwrap-in-unwind region state: Some(depth at the `catch_unwind`
    // line); live while brace depth stays above it (the closure body).
    let mut unwind_region: Option<i64> = None;
    let mut depth: i64 = 0;

    let lock_anchor = |name: &'static str| {
        [
            (Kind::Ident, name),
            (Kind::Punct, "."),
            (Kind::Ident, "lock"),
            (Kind::Punct, "("),
            (Kind::Punct, ")"),
        ]
    };

    for (idx, toks) in line_toks.iter().enumerate() {
        let line_no = idx + 1;
        if has_cfg_test(toks) {
            break; // test modules end the audited region of a file
        }
        if toks.is_empty() {
            continue;
        }
        let text = raw_lines[idx].trim();
        let mut push = |rule: &'static str, message: String| {
            out.push(Finding {
                rule,
                path: path.to_string(),
                line: line_no,
                text: text.to_string(),
                message,
            });
        };

        // --- nondeterminism ---
        if (solver || service) && !fault_module {
            if toks.iter().any(|t| t.ident("SystemTime")) {
                push(
                    "nondeterminism",
                    "wall-clock read in a solver/fit code path".to_string(),
                );
            }
            if has_seq(
                toks,
                &[
                    (Kind::Ident, "thread"),
                    (Kind::Punct, "::"),
                    (Kind::Ident, "sleep"),
                ],
            ) {
                push(
                    "nondeterminism",
                    "sleep outside a fault-injection module".to_string(),
                );
            }
        }

        // --- float-eq --- (token operands: string literals can no
        // longer smuggle a float into the window)
        if !tolerance_helper {
            for (i, t) in toks.iter().enumerate() {
                if !(t.punct("==") || t.punct("!=")) {
                    continue;
                }
                let left_start = toks[..i]
                    .iter()
                    .rposition(is_operand_delim)
                    .map_or(0, |d| d + 1);
                let right_end = toks[i + 1..]
                    .iter()
                    .position(is_operand_delim)
                    .map_or(toks.len(), |d| i + 1 + d);
                if window_has_float(&toks[left_start..i])
                    || window_has_float(&toks[i + 1..right_end])
                {
                    push(
                        "float-eq",
                        "float equality outside the tolerance helpers".to_string(),
                    );
                    break; // one finding per line is enough
                }
            }
        }

        // --- lock-in-drain ---
        let depth_before = depth;
        depth += toks.iter().filter(|t| t.punct("{")).count() as i64
            - toks.iter().filter(|t| t.punct("}")).count() as i64;
        let acquires_lock = has_method_call(toks, &["lock", "read", "write", "try_lock"]);
        if let Some(region_depth) = drain_region {
            if depth_before < region_depth || depth < region_depth {
                drain_region = None;
            } else if acquires_lock {
                push(
                    "lock-in-drain",
                    "lock acquisition while the drain guard is held".to_string(),
                );
            }
        }
        if drain_region.is_none() && has_seq(toks, &lock_anchor("drain")) {
            drain_region = Some(depth_before);
        }

        // --- lock-in-queue --- (same mechanics, service-crate anchor)
        if let Some(region_depth) = queue_region {
            if depth_before < region_depth || depth < region_depth {
                queue_region = None;
            } else if acquires_lock {
                push(
                    "lock-in-queue",
                    "lock acquisition while the admission-queue shard guard is held".to_string(),
                );
            }
        }
        if queue_region.is_none() && has_seq(toks, &lock_anchor("queue")) {
            queue_region = Some(depth_before);
        }

        // --- unwrap-in-unwind --- (closure-scoped: the region closes
        // when brace depth returns to the anchor line's depth)
        let unwraps = has_method_call(toks, &["unwrap", "expect"]);
        if let Some(region_depth) = unwind_region {
            if depth_before <= region_depth {
                unwind_region = None;
            } else if unwraps {
                push(
                    "unwrap-in-unwind",
                    "unwrap/expect inside a catch_unwind closure".to_string(),
                );
            }
        }
        if toks.iter().any(|t| t.ident("catch_unwind")) {
            if unwraps {
                push(
                    "unwrap-in-unwind",
                    "unwrap/expect on the catch_unwind line itself".to_string(),
                );
            }
            unwind_region = Some(depth_before);
        }

        // --- hash-order --- (LP crate only: warm-start state must never
        // be keyed or iterated in hash-seed or address order)
        if path.starts_with("crates/lp/src") {
            let hit = if toks.iter().any(|t| t.ident("HashMap")) {
                Some("HashMap")
            } else if toks.iter().any(|t| t.ident("HashSet")) {
                Some("HashSet")
            } else if has_method_call(toks, &["as_ptr"]) {
                Some(".as_ptr(")
            } else {
                None
            };
            if let Some(pat) = hit {
                push(
                    "hash-order",
                    format!(
                        "`{pat}` in the LP crate: basis/tableau state must use \
                         deterministic containers (Vec or BTreeMap/BTreeSet)"
                    ),
                );
            }
        }

        // --- telemetry-read ---
        if solver || service {
            for name in ["snapshot", "events", "elapsed_ms", "counter"] {
                if has_method_call(toks, &[name]) {
                    push(
                        "telemetry-read",
                        format!("telemetry read `.{name}(…)` in a solver/fit/service code path"),
                    );
                    break;
                }
            }
        }
    }
    out
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// The `src/` trees the workspace owns: `src/` at the root plus every
/// `crates/<name>/src`, excluding the vendored `crates/compat` stand-ins.
pub fn workspace_src_roots(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        names.sort();
        for c in names {
            if c.is_dir() && c.file_name().is_some_and(|n| n != "compat") {
                roots.push(c.join("src"));
            }
        }
    }
    Ok(roots)
}

/// Load every workspace source file as `(workspace-relative path,
/// content)`, sorted by path. Shared by Level 2 and the Level 3 lock
/// analysis so both see the same file set.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    for src in workspace_src_roots(root)? {
        collect_rs_files(&src, &mut files)?;
    }
    let mut out = Vec::with_capacity(files.len());
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, std::fs::read_to_string(&file)?));
    }
    Ok(out)
}

/// Scan the workspace rooted at `root` under the allowlist.
pub fn scan_workspace(root: &Path, allow: &Allowlist) -> std::io::Result<ScanOutcome> {
    Ok(scan_sources(&workspace_sources(root)?, allow))
}

/// Pure Level 2 scan over preloaded sources.
pub fn scan_sources(sources: &[(String, String)], allow: &Allowlist) -> ScanOutcome {
    let mut outcome = ScanOutcome {
        allow_used: vec![0; allow.entries.len()],
        ..ScanOutcome::default()
    };
    for (rel, content) in sources {
        outcome.files_scanned += 1;
        for f in scan_file_content(rel, content) {
            outcome.absorb(allow, f);
        }
    }
    outcome.sort();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nondeterminism_only_flags_solver_paths() {
        let code = "let t = std::time::SystemTime::now();\n";
        assert_eq!(scan_file_content("crates/minlp/src/bb.rs", code).len(), 1);
        assert!(scan_file_content("crates/bench/src/lib.rs", code).is_empty());
        assert!(scan_file_content("crates/cesm/src/fault.rs", code).is_empty());
    }

    #[test]
    fn sleep_is_flagged_outside_fault_modules() {
        let code = "std::thread::sleep(d);\n";
        let f = scan_file_content("crates/nlsq/src/multistart.rs", code);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "nondeterminism");
    }

    #[test]
    fn float_eq_catches_literal_comparison() {
        let f = scan_file_content("crates/hslb/src/fit.rs", "if x == 0.0 {\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "float-eq");
        // != too
        let f = scan_file_content("crates/hslb/src/fit.rs", "if x != 1.5 {\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn float_eq_ignores_integer_and_ordering_comparisons() {
        for line in [
            "if n == 0 {\n",
            "if a <= 0.5 {\n",
            "if a >= 0.5 {\n",
            "match x { _ => 0.0 }\n",
            "assert!(i == j);\n",
        ] {
            assert!(
                scan_file_content("crates/hslb/src/fit.rs", line).is_empty(),
                "false positive on {line:?}"
            );
        }
    }

    #[test]
    fn float_eq_sees_casts_and_constants() {
        for line in [
            "if a == x as f64 {\n",
            "if a == f64::INFINITY {\n",
            "if a != f64::NEG_INFINITY {\n",
            "if a == f32::NAN {\n",
            "if x == 1e-9 {\n",
        ] {
            let f = scan_file_content("crates/hslb/src/fit.rs", line);
            assert_eq!(f.len(), 1, "expected a finding on {line:?}");
            assert_eq!(f[0].rule, "float-eq");
        }
    }

    #[test]
    fn float_eq_exempts_the_tolerance_helper_module() {
        let code = "if a == b { /* bitwise check */ }\nlet x = 1.0 == y;\n";
        assert!(scan_file_content("crates/numerics/src/float.rs", code).is_empty());
    }

    #[test]
    fn lock_in_drain_flags_nested_acquisition() {
        let code = "\
fn f() {
    let mut d = drain.lock();
    let peek = other.lock();
    d.push(1);
}
";
        let f = scan_file_content("crates/nlsq/src/multistart.rs", code);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-in-drain");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn lock_in_drain_region_ends_with_the_scope() {
        let code = "\
fn f() {
    {
        let mut d = drain.lock();
        d.push(1);
    }
    let after = other.lock();
}
";
        assert!(scan_file_content("crates/nlsq/src/multistart.rs", code).is_empty());
    }

    #[test]
    fn lock_in_queue_flags_nested_acquisition_in_the_service_crate() {
        let code = "\
fn push(&self) {
    let mut state = queue.lock().unwrap_or_else(|e| e.into_inner());
    let desk = front.lock();
    state.push(1);
}
";
        let f = scan_file_content("crates/service/src/queue.rs", code);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-in-queue");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn lock_in_queue_region_ends_with_the_scope() {
        let code = "\
fn push(&self) {
    {
        let mut state = queue.lock().unwrap_or_else(|e| e.into_inner());
        state.push(1);
    }
    shard.available.notify_one();
    let desk = front.lock();
}
";
        assert!(scan_file_content("crates/service/src/queue.rs", code).is_empty());
    }

    #[test]
    fn service_crate_is_held_to_nondeterminism_and_telemetry_rules() {
        let sleep = "std::thread::sleep(backoff);\n";
        let f = scan_file_content("crates/service/src/bin/loadgen.rs", sleep);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "nondeterminism");

        let read = "let n = telemetry.snapshot();\n";
        let f = scan_file_content("crates/service/src/service.rs", read);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "telemetry-read");

        // Telemetry writes stay legal in the service crate.
        let w = "telemetry.counter_add(\"service.submitted\", 1);\n";
        assert!(scan_file_content("crates/service/src/service.rs", w).is_empty());
    }

    #[test]
    fn telemetry_reads_flagged_in_solver_paths_only() {
        let code = "let n = telemetry.counter(\"x\");\n";
        let f = scan_file_content("crates/minlp/src/bb.rs", code);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "telemetry-read");
        // The bench/report layer may read snapshots.
        assert!(scan_file_content("crates/bench/src/bin/bench_suite.rs", code).is_empty());
        // Writes are fine anywhere.
        let w = "telemetry.counter_add(\"x\", 1);\n";
        assert!(scan_file_content("crates/minlp/src/bb.rs", w).is_empty());
    }

    #[test]
    fn unwrap_in_unwind_flags_the_closure_body() {
        let code = "\
fn attempt() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let sim = shared.sims.lock().unwrap();
        compute(&sim)
    }));
    result.unwrap_or_else(|_| fallback());
}
";
        let f = scan_file_content("crates/service/src/service.rs", code);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unwrap-in-unwind");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn unwrap_in_unwind_region_ends_with_the_closure() {
        let code = "\
fn attempt() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        compute(&shared)
    }));
    let after = result.unwrap();
}
";
        // `.unwrap()` after the closure closes is the panic-on-purpose
        // idiom this rule does not police (clippy's unwrap_used does).
        assert!(scan_file_content("crates/service/src/service.rs", code).is_empty());
        // A single-line catch_unwind carrying its own unwrap is flagged.
        let one = "let r = catch_unwind(|| x.lock().unwrap());\n";
        let f = scan_file_content("crates/service/src/service.rs", one);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unwrap-in-unwind");
    }

    #[test]
    fn hash_order_flags_hash_containers_in_the_lp_crate() {
        for line in [
            "use std::collections::HashMap;\n",
            "let seen: HashSet<usize> = HashSet::new();\n",
            "let key = row.as_ptr() as usize;\n",
        ] {
            let f = scan_file_content("crates/lp/src/basis.rs", line);
            assert_eq!(f.len(), 1, "expected a finding on {line:?}");
            assert_eq!(f[0].rule, "hash-order");
        }
    }

    #[test]
    fn hash_order_allows_deterministic_containers_and_other_crates() {
        // BTreeMap iteration order is key order — deterministic.
        let btree = "let fps: BTreeMap<u64, usize> = BTreeMap::new();\n";
        assert!(scan_file_content("crates/lp/src/basis.rs", btree).is_empty());
        // The rule is scoped to the LP crate: the bench/report layer may
        // use hash containers (it never feeds solver pivot decisions).
        let map = "use std::collections::HashMap;\n";
        assert!(scan_file_content("crates/bench/src/lib.rs", map).is_empty());
    }

    #[test]
    fn scanning_stops_at_cfg_test() {
        let code = "\
fn f() {}
#[cfg(test)]
mod tests {
    fn g() { let t = std::time::SystemTime::now(); }
}
";
        assert!(scan_file_content("crates/minlp/src/bb.rs", code).is_empty());
    }

    #[test]
    fn allowlist_requires_justification() {
        assert!(Allowlist::parse("float-eq | a.rs | x == 0.0 |").is_err());
        assert!(Allowlist::parse("bogus-rule | a.rs | x | why").is_err());
        let ok = Allowlist::parse(
            "# comment\nfloat-eq | parallel.rs | bound == other | heap identity\n",
        )
        .unwrap();
        assert_eq!(ok.entries.len(), 1);
        assert_eq!(ok.entries[0].justification, "heap identity");
    }

    #[test]
    fn allowlist_suppresses_matching_findings() {
        let allow = Allowlist::parse("float-eq | fit.rs | x == 0.0 | sentinel compare\n").unwrap();
        let f = &scan_file_content("crates/hslb/src/fit.rs", "if x == 0.0 {\n")[0];
        assert!(allow.allows(f));
        let g = &scan_file_content("crates/hslb/src/fit.rs", "if y == 2.0 {\n")[0];
        assert!(!allow.allows(g));
    }

    #[test]
    fn allowlist_accepts_lock_rule_ids() {
        let ok = Allowlist::parse(
            "lock-blocking | loadclient.rs | stream.read | client IO, no shared guard\n",
        )
        .unwrap();
        assert_eq!(ok.entries.len(), 1);
    }

    #[test]
    fn stale_entries_are_reported() {
        let allow = Allowlist::parse(
            "float-eq | fit.rs | x == 0.0 | sentinel\nfloat-eq | gone.rs | y == 1.0 | rotted\n",
        )
        .unwrap();
        let sources = vec![(
            "crates/hslb/src/fit.rs".to_string(),
            "fn f() { if x == 0.0 {} }\n".to_string(),
        )];
        let outcome = scan_sources(&sources, &allow);
        assert!(outcome.findings.is_empty());
        assert_eq!(outcome.allowlisted, 1);
        let stale = outcome.stale_entries(&allow);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].1.path_suffix, "gone.rs");
    }

    #[test]
    fn findings_render_deterministically() {
        let f = &scan_file_content("crates/hslb/src/fit.rs", "if x == 0.0 {\n")[0];
        assert_eq!(
            f.to_string(),
            "crates/hslb/src/fit.rs:1: [float-eq] float equality outside the tolerance \
             helpers: `if x == 0.0 {`"
        );
    }

    // ------------------------------------------------------------------
    // Pinned regressions: the line-scanner era's false positives and
    // masked findings, fixed by the token lexer. These fixtures are the
    // contract that the ported rules can never regress to line matching.
    // ------------------------------------------------------------------

    #[test]
    fn pinned_block_comment_cannot_create_findings() {
        // The old line scanner only skipped lines *starting* with `//`;
        // every one of these block-comment bodies used to produce a
        // finding.
        let code = "\
fn f() {
    /* thread::sleep(d) was here before the retry rework */
    /* if x == 0.0 { legacy sentinel } */
    let y = 1; /* SystemTime::now() read removed in PR 2 */
}
";
        assert!(
            scan_file_content("crates/minlp/src/bb.rs", code).is_empty(),
            "block-comment bodies must not produce findings"
        );
    }

    #[test]
    fn pinned_trailing_line_comment_cannot_create_findings() {
        // A trailing `//` comment after real code was scanned as code.
        let code =
            "let y = compute(); // thread::sleep-free since PR 3, x == 0.0 checked upstream\n";
        assert!(
            scan_file_content("crates/nlsq/src/multistart.rs", code).is_empty(),
            "trailing comments must not produce findings"
        );
    }

    #[test]
    fn pinned_string_literals_cannot_create_findings() {
        // Rule substrings inside normal and raw strings: the old scanner
        // flagged all three lines.
        let code = "\
fn f() {
    let msg = \"retry after thread::sleep backoff\";
    let probe = r#\"drain.lock() held too long\"#;
    let cmp = \"x == 0.0\";
    log(msg, probe, cmp);
}
";
        assert!(
            scan_file_content("crates/nlsq/src/multistart.rs", code).is_empty(),
            "string bodies must not produce findings"
        );
    }

    #[test]
    fn pinned_raw_string_cannot_open_a_lock_region() {
        // `drain.lock()` inside a raw string used to open the critical-
        // section region, flagging the innocent lock that follows.
        let code = "\
fn f() {
    let doc = r#\"drain.lock()\"#;
    let other = cache.lock();
    use_both(doc, other);
}
";
        assert!(
            scan_file_content("crates/nlsq/src/multistart.rs", code).is_empty(),
            "a raw-string anchor must not open a region"
        );
    }

    #[test]
    fn pinned_comment_brace_cannot_mask_a_nested_lock() {
        // The masked-finding twin: a `}` inside a comment used to
        // unbalance the depth tracker, closing the drain region early so
        // the real nested acquisition on the next line went unreported.
        let code = "\
fn f() {
    let mut d = drain.lock();
    /* } */
    let peek = other.lock();
    d.push(1);
}
";
        let f = scan_file_content("crates/nlsq/src/multistart.rs", code);
        assert_eq!(f.len(), 1, "the nested lock must be reported: {f:?}");
        assert_eq!(f[0].rule, "lock-in-drain");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn pinned_string_brace_cannot_mask_a_nested_lock() {
        let code = "\
fn push(&self) {
    let mut state = queue.lock().unwrap_or_else(|e| e.into_inner());
    state.tag(\"}\");
    let desk = front.lock();
}
";
        let f = scan_file_content("crates/service/src/queue.rs", code);
        assert_eq!(f.len(), 1, "the nested lock must be reported: {f:?}");
        assert_eq!(f[0].rule, "lock-in-queue");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn pinned_string_float_cannot_trip_float_eq() {
        // A float literal inside a string operand used to satisfy the
        // window check: `name == "v1.5"` is a string comparison.
        let code = "if name == \"v1.5\" { mark(); }\n";
        assert!(
            scan_file_content("crates/hslb/src/fit.rs", code).is_empty(),
            "string contents must not classify an operand as float"
        );
    }
}
