//! A hand-rolled, std-only Rust token lexer for the source audit.
//!
//! Level 2 started life as a line scanner: `line.contains(".lock(")` and
//! friends. That holds up until a rule substring lands inside a block
//! comment or a string literal (false finding), or a comment containing a
//! stray `}` unbalances the brace-depth tracker and closes a critical-
//! section region early (masked finding). Both classes are pinned as
//! regression fixtures in `source.rs`.
//!
//! This lexer removes the ambiguity at the source: it understands line
//! and (nested) block comments, normal/byte strings with escapes, raw and
//! raw-byte strings (`r"…"`, `r#"…"#`, `br##"…"##`), character literals
//! vs. lifetimes, and numeric literals (so `float-eq` can classify
//! operands without substring guessing). Comments never produce tokens;
//! string/char literals produce a single token whose text is the literal
//! body, so rules can opt out of matching inside them. `<<`/`>>` are
//! deliberately emitted as two `<`/`>` punct tokens so nested generics
//! (`Vec<Vec<u8>>`) close cleanly for the lock-declaration parser in
//! `locks.rs`.
//!
//! The lexer is heuristic where full fidelity is not needed for the
//! rules (e.g. `1.` without a following digit lexes as `1` then `.`),
//! but it is exact on the constructs the audit depends on: what is a
//! comment, what is a string, where a line starts, and how deep the
//! braces are.

/// Token classes the audit rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `drain`, `HashMap`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (`1`, `0x1f`, `2.5e-3`, `1_000.0f64`).
    Num,
    /// String-ish literal: normal, byte, raw, raw-byte. `text` is the
    /// body without quotes/prefix.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation. Multi-char operators (`::`, `==`, `!=`, `->`, …) are
    /// one token; `<<`/`>>` are split so generics nest.
    Punct,
}

/// One token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: Kind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    pub fn is(&self, kind: Kind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }
    pub fn ident(&self, text: &str) -> bool {
        self.is(Kind::Ident, text)
    }
    pub fn punct(&self, text: &str) -> bool {
        self.is(Kind::Punct, text)
    }
    /// True for a numeric literal with float syntax: a fractional part,
    /// an exponent, or an explicit `f32`/`f64` suffix.
    pub fn is_float(&self) -> bool {
        if self.kind != Kind::Num {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
            return false;
        }
        // An exponent is a digit, then `e`/`E`, then a digit or sign —
        // not the `e` in an integer suffix like `1usize`.
        let b = t.as_bytes();
        let has_exp = (1..b.len().saturating_sub(1)).any(|i| {
            (b[i] == b'e' || b[i] == b'E')
                && b[i - 1].is_ascii_digit()
                && (b[i + 1].is_ascii_digit() || b[i + 1] == b'+' || b[i + 1] == b'-')
        });
        t.contains('.') || t.ends_with("f32") || t.ends_with("f64") || has_exp
    }
}

/// Multi-char operators, longest first. `<<` / `>>` are intentionally
/// absent (see module docs); `<<=` / `>>=` stay so compound shifts do
/// not shed a spurious `<=` / `>=`.
const OPS: [&str; 22] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex `src` into tokens. Never fails: unterminated constructs consume
/// to end of input (the audit scans a workspace that already compiles,
/// so this is a non-issue in practice and harmless on fixtures).
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1usize;

    macro_rules! push {
        ($kind:expr, $text:expr, $line:expr) => {
            toks.push(Tok {
                kind: $kind,
                text: $text,
                line: $line,
            })
        };
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!`).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, nested.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw / raw-byte strings: r"…", r#"…"#, br##"…"##.
        if (c == b'r' && raw_string_follows(b, i + 1))
            || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'r' && raw_string_follows(b, i + 2))
        {
            let start_line = line;
            i += if c == b'r' { 1 } else { 2 };
            let mut hashes = 0;
            while i < b.len() && b[i] == b'#' {
                hashes += 1;
                i += 1;
            }
            i += 1; // opening quote
            let body_start = i;
            let mut body_end = b.len();
            while i < b.len() {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'"' && closing_hashes(b, i + 1, hashes) {
                    body_end = i;
                    i += 1 + hashes;
                    break;
                } else {
                    i += 1;
                }
            }
            push!(
                Kind::Str,
                String::from_utf8_lossy(&b[body_start..body_end]).into_owned(),
                start_line
            );
            continue;
        }
        // Normal / byte strings.
        if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"') {
            let start_line = line;
            i += if c == b'b' { 2 } else { 1 };
            let body_start = i;
            let mut body_end = b.len();
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    if b[i + 1] == b'\n' {
                        line += 1;
                    }
                    i += 2;
                } else if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'"' {
                    body_end = i;
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            push!(
                Kind::Str,
                String::from_utf8_lossy(&b[body_start..body_end]).into_owned(),
                start_line
            );
            continue;
        }
        // Byte char literal b'…'.
        if c == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' {
            let (text, next) = scan_char_body(b, i + 2, &mut line);
            push!(Kind::Char, text, line);
            i = next;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            // `'` + ident-chars not closed by `'` is a lifetime.
            if i + 1 < b.len() && is_ident_start(b[i + 1]) && b[i + 1] != b'\\' {
                let mut j = i + 1;
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                if j < b.len() && b[j] == b'\'' && j == i + 2 {
                    // 'x' — single ident char closed by a quote: char.
                    push!(
                        Kind::Char,
                        String::from_utf8_lossy(&b[i + 1..j]).into_owned(),
                        line
                    );
                    i = j + 1;
                    continue;
                }
                push!(
                    Kind::Lifetime,
                    String::from_utf8_lossy(&b[i + 1..j]).into_owned(),
                    line
                );
                i = j;
                continue;
            }
            let (text, next) = scan_char_body(b, i + 1, &mut line);
            push!(Kind::Char, text, line);
            i = next;
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < b.len() && is_ident_cont(b[j]) {
                j += 1;
            }
            push!(
                Kind::Ident,
                String::from_utf8_lossy(&b[i..j]).into_owned(),
                line
            );
            i = j;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            if c == b'0' && j < b.len() && matches!(b[j], b'x' | b'b' | b'o') {
                j += 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
            } else {
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                    j += 1;
                }
                // Fractional part only when followed by a digit, so `1..2`
                // and `x.0`-style field access stay separate tokens.
                if j + 1 < b.len() && b[j] == b'.' && b[j + 1].is_ascii_digit() {
                    j += 1;
                    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                        j += 1;
                    }
                }
                // Exponent.
                if j < b.len() && matches!(b[j], b'e' | b'E') {
                    let mut k = j + 1;
                    if k < b.len() && matches!(b[k], b'+' | b'-') {
                        k += 1;
                    }
                    if k < b.len() && b[k].is_ascii_digit() {
                        j = k;
                        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                            j += 1;
                        }
                    }
                }
                // Type suffix (f64, u32, usize, …).
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
            }
            push!(
                Kind::Num,
                String::from_utf8_lossy(&b[i..j]).into_owned(),
                line
            );
            i = j;
            continue;
        }
        // Multi-char operators, longest match first.
        let rest = &src[i..];
        if let Some(op) = OPS.iter().find(|op| rest.starts_with(**op)) {
            push!(Kind::Punct, (*op).to_string(), line);
            i += op.len();
            continue;
        }
        // Single-char punct.
        push!(Kind::Punct, (c as char).to_string(), line);
        i += 1;
    }
    toks
}

/// After a raw-string prefix (`r` / `br` consumed): zero or more `#`
/// then a `"`.
fn raw_string_follows(b: &[u8], mut i: usize) -> bool {
    while i < b.len() && b[i] == b'#' {
        i += 1;
    }
    i < b.len() && b[i] == b'"'
}

fn closing_hashes(b: &[u8], i: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| i + k < b.len() && b[i + k] == b'#')
}

/// Scan a (byte-)char literal body starting just after the opening `'`;
/// returns (body text, index just past the closing `'`).
fn scan_char_body(b: &[u8], mut i: usize, line: &mut usize) -> (String, usize) {
    let start = i;
    while i < b.len() {
        if b[i] == b'\\' && i + 1 < b.len() {
            i += 2;
        } else if b[i] == b'\'' {
            let text = String::from_utf8_lossy(&b[start..i]).into_owned();
            return (text, i + 1);
        } else {
            if b[i] == b'\n' {
                *line += 1;
            }
            i += 1;
        }
    }
    (String::from_utf8_lossy(&b[start..]).into_owned(), i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_produce_no_tokens() {
        assert!(lex("// line\n/* block */\n/// doc\n//! inner\n").is_empty());
        // Nested block comments.
        assert!(lex("/* a /* b */ c */").is_empty());
        // Code after a block comment survives.
        let t = texts("/* x */ fn f() {}");
        assert_eq!(t[0], (Kind::Ident, "fn".to_string()));
    }

    #[test]
    fn strings_are_single_tokens() {
        let t = texts(r#"let s = "a.lock() // not code";"#);
        assert_eq!(
            t.iter().filter(|(k, _)| *k == Kind::Str).count(),
            1,
            "{t:?}"
        );
        assert!(t
            .iter()
            .any(|(k, x)| *k == Kind::Str && x.contains(".lock()")));
        // Escaped quote does not end the string.
        let t = texts(r#""a\"b""#);
        assert_eq!(t, vec![(Kind::Str, "a\\\"b".to_string())]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let t = texts(r###"let s = r#"drain.lock() "quoted""#;"###);
        assert!(t
            .iter()
            .any(|(k, x)| *k == Kind::Str && x.contains("drain.lock()")));
        let t = texts("let b = br##\"x\"# y\"##;");
        assert!(t
            .iter()
            .any(|(k, x)| *k == Kind::Str && x.contains("x\"# y")));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let t = texts("let c = 'x'; let n = '\\n'; fn f<'a>(x: &'a str) {}");
        assert_eq!(t.iter().filter(|(k, _)| *k == Kind::Char).count(), 2);
        assert_eq!(
            t.iter()
                .filter(|(k, x)| *k == Kind::Lifetime && x == "a")
                .count(),
            2
        );
        let t = texts("'static");
        assert_eq!(t, vec![(Kind::Lifetime, "static".to_string())]);
    }

    #[test]
    fn nested_generics_close_cleanly() {
        let t = texts("Vec<Vec<u8>>");
        let gt: Vec<_> = t
            .iter()
            .filter(|(k, x)| *k == Kind::Punct && x == ">")
            .collect();
        assert_eq!(gt.len(), 2, "`>>` must split for generics: {t:?}");
        // But compound shift-assign stays one token.
        let t = texts("x >>= 1;");
        assert!(t.iter().any(|(k, x)| *k == Kind::Punct && x == ">>="));
    }

    #[test]
    fn float_classification() {
        let is_float = |s: &str| lex(s).first().map(Tok::is_float) == Some(true);
        assert!(is_float("1.5"));
        assert!(is_float("1_000.25"));
        assert!(is_float("2e9"));
        assert!(is_float("2.5e-3"));
        assert!(is_float("1f64"));
        assert!(!is_float("1"));
        assert!(!is_float("0x1f"));
        assert!(!is_float("1usize"));
        // `1..2` is Num, Punct(..), Num — not a float.
        let t = texts("1..2");
        assert_eq!(
            t,
            vec![
                (Kind::Num, "1".to_string()),
                (Kind::Punct, "..".to_string()),
                (Kind::Num, "2".to_string()),
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        let t = texts("a == b != c <= d => e :: f -> g");
        let ops: Vec<_> = t
            .iter()
            .filter(|(k, _)| *k == Kind::Punct)
            .map(|(_, x)| x.as_str())
            .collect();
        assert_eq!(ops, vec!["==", "!=", "<=", "=>", "::", "->"]);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n\"two\nlines\"\nb\n/* c\nd */\ne";
        let t = lex(src);
        let find = |name: &str| t.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("two\nlines"), Some(2));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("e"), Some(7));
    }
}
