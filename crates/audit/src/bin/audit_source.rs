//! `audit-source`: the Level 2 + Level 3 workspace source audit.
//!
//! Level 2 lexes the workspace's own `src/` trees and enforces the
//! project rules described in [`hslb_audit::source`]; Level 3 builds the
//! cross-crate lock acquisition graph of [`hslb_audit::locks`] and runs
//! its cycle / rank / blocking / unranked checks. Both route findings
//! through the shared allowlist and exit nonzero when any survive.
//! Output is deterministic and sorted so CI diffs are stable.
//!
//! ```text
//! audit-source [--root DIR] [--allowlist FILE] [--json FILE]
//!              [--check-allow] [--list-rules]
//! ```
//!
//! `--json FILE` writes the machine-readable dump: the findings, the
//! lock graph (nodes with ranks and sites, edges with their sites), and
//! an `audit.source` telemetry summary point (files scanned, findings,
//! allowlisted, lock nodes/edges) in the event-sink format used by the
//! BENCH artifacts. `--check-allow` additionally fails when an allowlist
//! entry suppressed nothing this scan — entries rot across refactors.

#![forbid(unsafe_code)]

use hslb_audit::locks::{analyze_sources, LockAnalysis};
use hslb_audit::source::{scan_sources, workspace_sources, Allowlist, ScanOutcome, RULES};
use hslb_telemetry::json::Value;
use hslb_telemetry::Telemetry;
use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut check_allow = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--allowlist" => {
                allowlist_path = Some(PathBuf::from(
                    args.next().ok_or("--allowlist needs a file")?,
                ));
            }
            "--json" => {
                json_path = Some(PathBuf::from(args.next().ok_or("--json needs a file")?));
            }
            "--check-allow" => check_allow = true,
            "--list-rules" => {
                for (id, desc) in RULES {
                    println!("{id}: {desc}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!(
                    "usage: audit-source [--root DIR] [--allowlist FILE] [--json FILE] \
                     [--check-allow] [--list-rules]"
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    // Default allowlist: scripts/audit.allow under the root, if present.
    let allow = match allowlist_path.or_else(|| {
        let p = root.join("scripts/audit.allow");
        p.is_file().then_some(p)
    }) {
        Some(p) => {
            let content = std::fs::read_to_string(&p)
                .map_err(|e| format!("cannot read allowlist {}: {e}", p.display()))?;
            Allowlist::parse(&content)?
        }
        None => Allowlist::default(),
    };

    // One file-set load feeds both levels.
    let sources = workspace_sources(&root).map_err(|e| format!("scan failed: {e}"))?;
    let mut outcome = scan_sources(&sources, &allow);
    let locks = analyze_sources(&sources);
    for f in locks.findings.clone() {
        outcome.absorb(&allow, f);
    }
    outcome.sort();

    for f in &outcome.findings {
        println!("{f}");
    }
    let stale = outcome.stale_entries(&allow);
    if check_allow {
        for (i, e) in &stale {
            println!(
                "stale allowlist entry {} ({} | {} | {}): suppressed nothing this scan",
                i + 1,
                e.rule,
                e.path_suffix,
                e.substring
            );
        }
    }
    println!(
        "audit-source: {} files scanned, {} finding(s), {} allowlisted, \
         lock graph {} node(s) / {} edge(s){}",
        outcome.files_scanned,
        outcome.findings.len(),
        outcome.allowlisted,
        locks.graph.nodes.len(),
        locks.graph.edges.len(),
        if check_allow {
            format!(", {} stale allowlist entr(ies)", stale.len())
        } else {
            String::new()
        }
    );

    if let Some(path) = &json_path {
        let doc = json_dump(&outcome, &locks);
        std::fs::write(path, doc.to_pretty() + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    let failed = !outcome.findings.is_empty() || (check_allow && !stale.is_empty());
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// The machine-readable dump: findings + lock graph + an `audit.source`
/// telemetry summary point in the event-sink snapshot format.
fn json_dump(outcome: &ScanOutcome, locks: &LockAnalysis) -> Value {
    let findings = Value::Arr(
        outcome
            .findings
            .iter()
            .map(|f| {
                Value::Obj(vec![
                    ("rule".into(), Value::Str(f.rule.to_string())),
                    ("path".into(), Value::Str(f.path.clone())),
                    ("line".into(), Value::Num(f.line as f64)),
                    ("message".into(), Value::Str(f.message.clone())),
                ])
            })
            .collect(),
    );
    let nodes = Value::Obj(
        locks
            .graph
            .nodes
            .iter()
            .map(|(id, n)| {
                (
                    id.clone(),
                    Value::Obj(vec![
                        (
                            "rank".into(),
                            n.rank.map(|r| Value::Num(r as f64)).unwrap_or(Value::Null),
                        ),
                        (
                            "rank_name".into(),
                            n.rank_name.clone().map(Value::Str).unwrap_or(Value::Null),
                        ),
                        (
                            "sites".into(),
                            Value::Arr(
                                n.sites
                                    .iter()
                                    .map(|(p, l)| Value::Str(format!("{p}:{l}")))
                                    .collect(),
                            ),
                        ),
                    ]),
                )
            })
            .collect(),
    );
    let edges = Value::Arr(
        locks
            .graph
            .edges
            .iter()
            .map(|e| {
                Value::Obj(vec![
                    ("from".into(), Value::Str(e.from.clone())),
                    ("to".into(), Value::Str(e.to.clone())),
                    ("site".into(), Value::Str(format!("{}:{}", e.path, e.line))),
                    (
                        "via".into(),
                        e.via.clone().map(Value::Str).unwrap_or(Value::Null),
                    ),
                ])
            })
            .collect(),
    );

    // The summary point rides the same snapshot schema as the service
    // BENCH artifacts, so dashboards ingest both uniformly.
    let tel = Telemetry::new();
    tel.point(
        "audit.source",
        &[
            ("files_scanned", outcome.files_scanned as f64),
            ("findings", outcome.findings.len() as f64),
            ("allowlisted", outcome.allowlisted as f64),
            ("lock_nodes", locks.graph.nodes.len() as f64),
            ("lock_edges", locks.graph.edges.len() as f64),
        ],
        &[("level", "2+3")],
    );
    let mut snapshot =
        hslb_telemetry::json::parse(&tel.snapshot().to_json()).unwrap_or(Value::Null);
    zero_timestamps(&mut snapshot);

    Value::Obj(vec![
        ("findings".into(), findings),
        (
            "lock_graph".into(),
            Value::Obj(vec![("nodes".into(), nodes), ("edges".into(), edges)]),
        ),
        ("telemetry".into(), snapshot),
    ])
}

/// Zero every `t_ms` field so the dump is byte-stable across runs: the
/// artifact is committed (AUDIT_lockgraph.json) and diffed by check.sh,
/// and wall-clock capture times are the only nondeterministic content.
fn zero_timestamps(v: &mut Value) {
    match v {
        Value::Obj(kv) => {
            for (k, val) in kv {
                if k == "t_ms" {
                    *val = Value::Num(0.0);
                } else {
                    zero_timestamps(val);
                }
            }
        }
        Value::Arr(items) => items.iter_mut().for_each(zero_timestamps),
        _ => {}
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("audit-source: {e}");
            ExitCode::from(2)
        }
    }
}
