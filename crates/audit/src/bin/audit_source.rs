//! `audit-source`: the Level 2 workspace source audit.
//!
//! Scans the workspace's own `src/` trees for the project rules described
//! in [`hslb_audit::source`] and exits nonzero when any finding survives
//! the allowlist. Output is deterministic and sorted so CI diffs are
//! stable.
//!
//! ```text
//! audit-source [--root DIR] [--allowlist FILE] [--list-rules]
//! ```

#![forbid(unsafe_code)]

use hslb_audit::source::{scan_workspace, Allowlist, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--allowlist" => {
                allowlist_path = Some(PathBuf::from(
                    args.next().ok_or("--allowlist needs a file")?,
                ));
            }
            "--list-rules" => {
                for (id, desc) in RULES {
                    println!("{id}: {desc}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!("usage: audit-source [--root DIR] [--allowlist FILE] [--list-rules]");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    // Default allowlist: scripts/audit.allow under the root, if present.
    let allow = match allowlist_path.or_else(|| {
        let p = root.join("scripts/audit.allow");
        p.is_file().then_some(p)
    }) {
        Some(p) => {
            let content = std::fs::read_to_string(&p)
                .map_err(|e| format!("cannot read allowlist {}: {e}", p.display()))?;
            Allowlist::parse(&content)?
        }
        None => Allowlist::default(),
    };

    let outcome = scan_workspace(&root, &allow).map_err(|e| format!("scan failed: {e}"))?;
    for f in &outcome.findings {
        println!("{f}");
    }
    println!(
        "audit-source: {} files scanned, {} finding(s), {} allowlisted",
        outcome.files_scanned,
        outcome.findings.len(),
        outcome.allowlisted
    );
    Ok(if outcome.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("audit-source: {e}");
            ExitCode::from(2)
        }
    }
}
